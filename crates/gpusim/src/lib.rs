//! # megasw-gpusim — simulated heterogeneous GPU platforms
//!
//! The PPoPP'14 evaluation ran on real CUDA boards; this workspace has none,
//! so this crate supplies the *hardware substrate* as a simulator with two
//! faces:
//!
//! * a **timing model** — [`DeviceSpec`] (SMs, clock, per-SM cell rate,
//!   memory) and [`LinkSpec`] (latency + bandwidth) parameterize how long a
//!   wavefront kernel launch or a border transfer takes. The
//!   [`catalog`] calibrates 2012–2013 boards so a single flagship sustains
//!   the GCUPS range CUDAlign reported on that hardware;
//! * a **deterministic schedule engine** — [`Schedule`] plays the role of
//!   CUDA streams: each resource executes its tasks FIFO, a task starts when
//!   its dependencies have finished *and* its resource is free, and every
//!   task leaves a [`TraceSpan`] for utilization/occupancy analysis.
//!
//! `megasw-multigpu` drives both faces with the *same* block-level dataflow
//! it executes for real on CPU threads, so the simulated GCUPS numbers
//! describe exactly the schedule that was verified bit-for-bit against the
//! sequential reference.
//!
//! Everything here is exact integer arithmetic on nanoseconds
//! ([`SimTime`]): runs are reproducible to the bit across machines.

pub mod catalog;
pub mod device;
pub mod link;
pub mod platform;
pub mod spec;
pub mod stream;
pub mod time;
pub mod trace;

pub use device::{ClockDrift, KernelModel};
pub use link::LinkSpec;
pub use platform::{Platform, PlatformKind};
pub use spec::DeviceSpec;
pub use stream::{ResourceId, Schedule, TaskId};
pub use time::SimTime;
pub use trace::{SpanKind, TraceSpan};
