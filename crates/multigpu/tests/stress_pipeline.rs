//! Stress tests for the threaded pipeline: deep chains, extreme
//! configurations, and sustained ring traffic. These guard the
//! synchronization design (no deadlocks, no lost borders) under shapes the
//! unit tests don't reach.

use megasw_gpusim::{catalog, Platform};
use megasw_multigpu::checkpoint::RecoveryPolicy;
use megasw_multigpu::pipeline::{FaultPlan, PipelineRun, Semantics};
use megasw_multigpu::{CheckpointCadence, PartitionPolicy, RunConfig};
use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};
use megasw_sw::traceback::anchored_best;

#[path = "../../../tests/util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &megasw_sw::ScoreScheme) -> megasw_sw::BestCell {
    megasw_sw::kernel::scalar().best(a, b, scheme)
}

fn pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 13).apply(&a);
    (a, b)
}

#[test]
fn sixteen_device_chain() {
    // Far more devices than any real 2013 host: the chain logic must not
    // care. One block column per device at the extreme.
    let (a, b) = pair(4_000, 1);
    let p = Platform::homogeneous(catalog::gtx680(), 16);
    let cfg = RunConfig::paper_default()
        .with_block(64)
        .with_buffer_capacity(2);
    let report = PipelineRun::new(a.codes(), b.codes(), &p)
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    assert_eq!(report.devices.len(), 16);
    // Every interior ring carried exactly rows borders.
    let rows = (a.len().div_ceil(cfg.block_h)) as u64;
    for d in &report.devices[..15] {
        let rs = d.ring_out.as_ref().unwrap();
        assert_eq!(rs.pushed, rows);
        assert_eq!(rs.popped, rows);
    }
}

#[test]
fn block_height_one_maximizes_ring_traffic() {
    // One border per matrix row: thousands of ring operations per device
    // pair under a capacity-1 ring — the tightest synchronization the
    // design admits.
    let (a, b) = pair(1_500, 2);
    let mut cfg = RunConfig::paper_default().with_buffer_capacity(1);
    cfg.block_h = 1;
    cfg.block_w = 97;
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    let rs = report.devices[0].ring_out.as_ref().unwrap();
    assert_eq!(rs.pushed, a.len() as u64);
    assert!(rs.max_occupancy <= 1);
}

#[test]
fn extreme_skew_partitions() {
    // 1000 : 1 : 1000 weights — the middle device owns a single block
    // column and becomes a pure relay bottleneck.
    let (a, b) = pair(2_500, 3);
    let cfg = RunConfig::paper_default()
        .with_block(32)
        .with_partition(PartitionPolicy::Explicit(vec![1000.0, 1.0, 1000.0]));
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    assert_eq!(report.devices.len(), 3);
    assert_eq!(report.devices[1].slab_width, 32);
}

#[test]
fn wide_matrix_tall_matrix() {
    // Degenerate aspect ratios: a 50 × 20 000 ribbon and its transpose.
    let scheme = megasw_sw::ScoreScheme::cudalign();
    let ribbon = ChromosomeGenerator::new(GenerateConfig::uniform(20_000, 4)).generate();
    let sliver = ChromosomeGenerator::new(GenerateConfig::uniform(50, 5)).generate();
    let cfg = RunConfig::paper_default().with_block(256);
    for (a, b) in [(&sliver, &ribbon), (&ribbon, &sliver)] {
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &scheme));
    }
}

#[test]
fn anchored_pipeline_under_stress_shapes() {
    let (a, b) = pair(2_000, 6);
    let scheme = megasw_sw::ScoreScheme::cudalign();
    for (bh, bw, cap) in [(1usize, 64usize, 1usize), (500, 17, 2), (64, 2_000, 3)] {
        let mut cfg = RunConfig::paper_default().with_buffer_capacity(cap);
        cfg.block_h = bh;
        cfg.block_w = bw;
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .semantics(Semantics::Anchored)
            .run()
            .unwrap();
        assert_eq!(
            report.best,
            anchored_best(a.codes(), b.codes(), &scheme),
            "bh={bh} bw={bw} cap={cap}"
        );
    }
}

#[test]
fn recovery_with_capacity_one_rings_terminates_and_stays_exact() {
    // The worst synchronization shape (capacity-1 rings, tiny blocks)
    // combined with a mid-matrix device death and a rewind: the recovery
    // driver must neither deadlock on the poisoned rings of the dead
    // attempt nor perturb the score. The watchdog turns a hang into a
    // failure.
    let (a, b) = pair(2_000, 8);
    let want = {
        let cfg = RunConfig::paper_default().with_block(32);
        gotoh_best(a.codes(), b.codes(), &cfg.scheme)
    };
    let report = with_deadline(
        "capacity-1 recovery pipeline",
        std::time::Duration::from_secs(60),
        move || {
            let cfg = RunConfig::paper_default()
                .with_block(32)
                .with_buffer_capacity(1)
                .with_checkpoint(CheckpointCadence::EveryRows(4));
            PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .faults(FaultPlan {
                    device: 1,
                    fail_at_block_row: 30,
                })
                .recover(RecoveryPolicy {
                    max_device_failures: 1,
                })
                .run()
                .unwrap()
        },
    );
    assert_eq!(report.best, want);
    assert_eq!(report.recovery.as_ref().unwrap().recoveries, 1);
}

#[test]
fn repeated_runs_under_contention() {
    // Many back-to-back runs on the same platform: per-run rings must be
    // fully independent (no leakage of closed/poisoned state).
    let (a, b) = pair(800, 7);
    let cfg = RunConfig::paper_default().with_block(48);
    let want = gotoh_best(a.codes(), b.codes(), &cfg.scheme);
    for i in 0..20 {
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "iteration {i}");
    }
}
