//! Platform-level integration on the discrete-event backend: the simulated
//! performance picture must have the paper's shape across environments.

use megasw::gpusim::trace::render_gantt;
use megasw::multigpu::desrun::{gcups_versus_devices, run_des, run_des_bulk};
use megasw::prelude::*;

const MBP: usize = 1_000_000;

#[test]
fn env1_and_env2_reach_paper_shape() {
    let cfg = RunConfig::paper_default();

    // Env1: two homogeneous GTX 680s ≈ 95+ GCUPS sustained.
    let env1 = run_des(4 * MBP, 4 * MBP, &Platform::env1(), &cfg).report;
    let g1 = env1.gcups_sim.unwrap();
    assert!((88.0..100.0).contains(&g1), "Env1 = {g1} GCUPS");

    // Env2: the 140-GCUPS headline with 3 heterogeneous boards.
    let env2 = run_des(8 * MBP, 8 * MBP, &Platform::env2(), &cfg).report;
    let g2 = env2.gcups_sim.unwrap();
    assert!(
        (134.0..147.0).contains(&g2),
        "Env2 = {g2} GCUPS (paper: 140.36)"
    );
}

#[test]
fn scaling_efficiency_stays_high_for_megabase_inputs() {
    let cfg = RunConfig::paper_default();
    let p = Platform::homogeneous(catalog::gtx680(), 8);
    let sweep = gcups_versus_devices(4 * MBP, 4 * MBP, &p, &cfg);
    let single = sweep[0].1;
    for &(g, gcups) in &sweep {
        let efficiency = gcups / (single * g as f64);
        assert!(
            efficiency > 0.9,
            "{g} GPUs: {gcups} GCUPS, efficiency {efficiency}"
        );
    }
}

#[test]
fn buffer_capacity_sweep_has_a_knee() {
    let cfg = RunConfig::paper_default();
    let p = Platform::env1();
    let gcups_at = |cap: usize| {
        run_des(2 * MBP, 2 * MBP, &p, &cfg.clone().with_buffer_capacity(cap))
            .report
            .gcups_sim
            .unwrap()
    };
    let g1 = gcups_at(1);
    let g4 = gcups_at(4);
    let g16 = gcups_at(16);
    let g128 = gcups_at(128);
    assert!(g4 >= g1);
    assert!(g16 >= g4 * 0.999);
    // Beyond the knee the curve is flat.
    assert!((g128 - g16).abs() / g16 < 0.01, "g16 {g16} vs g128 {g128}");
}

#[test]
fn proportional_split_recovers_what_equal_split_loses() {
    let cfg = RunConfig::paper_default();
    let p = Platform::env2();
    let prop = run_des(4 * MBP, 4 * MBP, &p, &cfg).report;
    let equal = run_des(
        4 * MBP,
        4 * MBP,
        &p,
        &cfg.clone().with_partition(PartitionPolicy::Equal),
    )
    .report;

    let g_prop = prop.gcups_sim.unwrap();
    let g_equal = equal.gcups_sim.unwrap();
    assert!(g_prop > g_equal, "{g_prop} vs {g_equal}");

    // Under the equal split, the strongest board idles: its utilization is
    // visibly below the proportional run's.
    let titan_equal = equal.devices[0].sim_utilization.unwrap();
    let titan_prop = prop.devices[0].sim_utilization.unwrap();
    assert!(
        titan_prop > titan_equal + 0.1,
        "titan utilization: prop {titan_prop} vs equal {titan_equal}"
    );
}

#[test]
fn bulk_synchronous_baseline_loses_the_multi_gpu_benefit() {
    let cfg = RunConfig::paper_default();
    for platform in [Platform::env1(), Platform::env2()] {
        let fine = run_des(2 * MBP, 2 * MBP, &platform, &cfg)
            .report
            .gcups_sim
            .unwrap();
        let bulk = run_des_bulk(2 * MBP, 2 * MBP, &platform, &cfg)
            .report
            .gcups_sim
            .unwrap();
        // Bulk-synchronous serializes the devices: it cannot beat the best
        // single board by much, while fine-grain overlap scales.
        assert!(
            fine > 1.5 * bulk,
            "{}: fine {fine} vs bulk {bulk}",
            platform.name
        );
    }
}

#[test]
fn trace_renders_a_gantt_chart() {
    let cfg = RunConfig::paper_default();
    let run = run_des(MBP / 2, MBP / 2, &Platform::env2(), &cfg);
    let chart = render_gantt(
        run.schedule.spans(),
        &run.schedule.resource_list(),
        run.schedule.makespan(),
        100,
    );
    // One row per resource: 3 compute streams + 2 links.
    assert_eq!(chart.lines().count(), 5);
    assert!(chart.contains('#'), "kernel spans missing:\n{chart}");
    assert!(chart.contains('>'), "copy spans missing:\n{chart}");
}

#[test]
fn simulated_and_threaded_backends_share_the_partition_geometry() {
    // Same config ⇒ identical slab boundaries in both backends.
    let (m, n) = (40_000, 50_000);
    let a = ChromosomeGenerator::new(GenerateConfig::uniform(m, 3)).generate();
    let b = ChromosomeGenerator::new(GenerateConfig::uniform(n, 4)).generate();
    let cfg = RunConfig::paper_default().with_block(512);
    let p = Platform::env2();

    let threaded = PipelineRun::new(a.codes(), b.codes(), &p)
        .config(cfg.clone())
        .run()
        .unwrap();
    let sim = run_des(m, n, &p, &cfg).report;

    assert_eq!(threaded.devices.len(), sim.devices.len());
    for (t, s) in threaded.devices.iter().zip(&sim.devices) {
        assert_eq!(t.slab_j0, s.slab_j0);
        assert_eq!(t.slab_width, s.slab_width);
        assert_eq!(t.name, s.name);
    }
}

#[test]
fn weak_device_chain_is_bottlenecked_by_aggregate_not_by_chain_position() {
    // A weak board slows the pipeline by its share, wherever it sits.
    let cfg = RunConfig::paper_default();
    let weak_first = Platform::custom(
        "weak-first",
        vec![
            catalog::gtx560ti(),
            catalog::gtx_titan(),
            catalog::gtx_titan(),
        ],
    );
    let weak_last = Platform::custom(
        "weak-last",
        vec![
            catalog::gtx_titan(),
            catalog::gtx_titan(),
            catalog::gtx560ti(),
        ],
    );
    let g_first = run_des(2 * MBP, 2 * MBP, &weak_first, &cfg)
        .report
        .gcups_sim
        .unwrap();
    let g_last = run_des(2 * MBP, 2 * MBP, &weak_last, &cfg)
        .report
        .gcups_sim
        .unwrap();
    let ratio = g_first / g_last;
    assert!(
        (0.93..1.07).contains(&ratio),
        "chain position changed throughput: {g_first} vs {g_last}"
    );
}
