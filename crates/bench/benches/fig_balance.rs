//! F4/F5 — load-balance and overlap ablations on the threaded runtime:
//! equal vs proportional vs inverted partitioning on a heterogeneous-shaped
//! split. (On the host all threads run at CPU speed, so "proportional"
//! deliberately *mis*-balances the CPU run — what this bench shows is the
//! cost of slab-size skew in the real pipeline, the same mechanism the
//! simulated F4 quantifies with truly heterogeneous device speeds.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::prelude::*;
use megasw_bench::cached_pair;
use std::time::Duration;

fn bench_partition_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_partition_policy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair(8_000, 501);
    let cells = (a.len() * b.len()) as u64;
    let platform = Platform::env2();
    let policies = [
        ("equal", PartitionPolicy::Equal),
        ("proportional", PartitionPolicy::Proportional),
        ("skewed_4_1_1", PartitionPolicy::Explicit(vec![4.0, 1.0, 1.0])),
    ];
    for (name, policy) in policies {
        let cfg = RunConfig::paper_default()
            .with_block(256)
            .with_partition(policy);
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::new("policy", name), &cfg, |bench, cfg| {
            bench.iter(|| {
                run_pipeline(a.codes(), b.codes(), &platform, cfg)
                    .expect("pipeline run failed")
                    .best
            })
        });
    }
    group.finish();
}

fn bench_device_count_overlap(c: &mut Criterion) {
    // F5 on the host: 1 device (no comms at all) vs 3 devices (fine-grain
    // rings): the delta is the real synchronization cost of the pipeline.
    let mut group = c.benchmark_group("f5_overlap_cost");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair(8_000, 502);
    let cells = (a.len() * b.len()) as u64;
    for gpus in [1usize, 3] {
        let platform = Platform::env2().take(gpus);
        let cfg = RunConfig::paper_default().with_block(256);
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(
            BenchmarkId::new("devices", gpus),
            &platform,
            |bench, platform| {
                bench.iter(|| {
                    run_pipeline(a.codes(), b.codes(), platform, &cfg)
                        .expect("pipeline run failed")
                        .best
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition_policies, bench_device_count_overlap);
criterion_main!(benches);
