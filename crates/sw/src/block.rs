//! The border-to-border block kernel.
//!
//! This is the workhorse of the whole workspace: compute a `bh × bw` tile
//! of the Smith-Waterman matrix given its incoming top and left borders,
//! and emit its outgoing bottom and right borders plus the best cell found
//! inside the tile. A simulated GPU "executes" exactly this function; the
//! multi-GPU pipeline streams the right borders of one device's last block
//! column into the left borders of the next device's first block column.
//!
//! Memory is `O(bw)` — only one rolling row of `H`/`F` is kept, plus the
//! output column — so tiles of any height fit in cache-sized working sets.

use crate::border::{ColBorder, RowBorder};
use crate::cell::{BestCell, NEG_INF};
use crate::scoring::ScoreScheme;

/// Inputs to the tile kernel ([`crate::kernel::Kernel::block`]).
///
/// The tile covers DP rows `row_offset .. row_offset + a_rows.len()` and
/// columns `col_offset .. col_offset + b_cols.len()` (1-based, inclusive of
/// the offsets themselves).
#[derive(Debug, Clone, Copy)]
pub struct BlockInput<'x> {
    /// Base codes of the rows this tile covers: `a[row_offset-1 ..]`.
    pub a_rows: &'x [u8],
    /// Base codes of the columns this tile covers: `b[col_offset-1 ..]`.
    pub b_cols: &'x [u8],
    /// Incoming top border (row `row_offset − 1`), width `b_cols.len()`.
    pub top: &'x RowBorder,
    /// Incoming left border (column `col_offset − 1`), height `a_rows.len()`.
    pub left: &'x ColBorder,
    /// 1-based DP row of the tile's first row.
    pub row_offset: usize,
    /// 1-based DP column of the tile's first column.
    pub col_offset: usize,
}

/// Outputs of the tile kernel ([`crate::kernel::Kernel::block`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockOutput {
    /// Outgoing bottom border (row `row_offset + bh − 1`): the top border of
    /// the tile below.
    pub bottom: RowBorder,
    /// Outgoing right border (column `col_offset + bw − 1`): the left border
    /// of the tile to the right.
    pub right: ColBorder,
    /// Best cell inside the tile, in global 1-based coordinates.
    pub best: BestCell,
    /// Number of DP cells computed (`bh × bw`).
    pub cells: u64,
}

/// Workspace-internal scalar tile kernel, local semantics — what
/// [`crate::kernel::ScalarKernel`] and the sequential executors run. Reach
/// it through the trait: `kernel::scalar().block(input, scheme)`.
///
/// # Panics
///
/// Debug-asserts that border lengths match the tile dimensions and that the
/// top and left borders agree on the shared corner element.
#[inline]
pub(crate) fn scalar_block(input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
    compute_block_impl::<true>(input, scheme)
}

/// Workspace-internal scalar tile kernel, **anchored** semantics: identical
/// recurrences **without the zero floor**, so every alignment extends a
/// path from the matrix origin (whose gap-cost boundary values the caller
/// supplies via [`RowBorder::anchored`] / [`ColBorder::anchored`]).
///
/// This is the kernel of CUDAlign's stage 2: run over *reversed* prefixes
/// it locates the start point of an optimal local alignment that ends at
/// the stage-1 best cell. `best` tracks the maximum `H` anywhere in the
/// tile, seeded with the origin's score 0 (which always exists globally).
/// Reach it through the trait: `kernel::scalar().block_anchored(input,
/// scheme)`.
#[inline]
pub(crate) fn scalar_block_anchored(input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
    compute_block_impl::<false>(input, scheme)
}

/// Fast-skip for a pruned `bh × bw` tile: emit the substitute borders
/// (`H = 0`, `E = F = −∞`) without touching the DP matrix.
///
/// The substitute underestimates every true border value (local `H ≥ 0`
/// everywhere, and the DP recurrences are monotone in their inputs), which
/// is what keeps pruning exact — see [`crate::prune`]. The output reports
/// **zero computed cells** and no best candidate; callers accounting for
/// matrix coverage must count the skipped `bh · bw` cells themselves.
pub fn skip_block(bh: usize, bw: usize) -> BlockOutput {
    BlockOutput {
        bottom: RowBorder::zero(bw),
        right: ColBorder::zero(bh),
        best: BestCell::ZERO,
        cells: 0,
    }
}

#[inline(always)]
pub(crate) fn compute_block_impl<const LOCAL: bool>(
    input: BlockInput<'_>,
    scheme: &ScoreScheme,
) -> BlockOutput {
    let bh = input.a_rows.len();
    let bw = input.b_cols.len();
    debug_assert_eq!(input.top.width(), bw, "top border width mismatch");
    debug_assert_eq!(input.left.height(), bh, "left border height mismatch");
    debug_assert_eq!(
        input.top.h[0], input.left.h[0],
        "top and left borders disagree on the corner element"
    );
    debug_assert!(input.row_offset >= 1 && input.col_offset >= 1);

    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    // Rolling row state, border convention (index 0 = corner column).
    let mut h_row = input.top.h.clone();
    let mut f_row = input.top.f.clone();

    // Output right border, filled one row at a time.
    let mut right = ColBorder {
        h: Vec::with_capacity(bh + 1),
        e: Vec::with_capacity(bh + 1),
    };
    right
        .h
        .push(*input.top.h.last().expect("top border non-empty"));
    right.e.push(NEG_INF);

    let mut best = BestCell::ZERO;

    for k in 1..=bh {
        let a_code = input.a_rows[k - 1];
        let i = input.row_offset + k - 1; // global DP row

        // Seed from the left border.
        let mut h_diag = input.left.h[k - 1]; // H[i-1][j0-1]
        let mut h_left = input.left.h[k]; //     H[i]  [j0-1]
        let mut e = input.left.e[k]; //          E[i]  [j0-1]

        // Zip-based traversal elides the bounds checks in the inner loop.
        let cells = input
            .b_cols
            .iter()
            .zip(h_row[1..].iter_mut().zip(f_row[1..].iter_mut()));
        for (l, (&b_code, (h_cell, f_cell))) in cells.enumerate() {
            let h_up = *h_cell; // H[i-1][j] — not yet overwritten
            let f = (*f_cell - ext).max(h_up - open_ext);
            e = (e - ext).max(h_left - open_ext);
            let mut h = (h_diag + scheme.substitution(a_code, b_code)).max(e).max(f);
            if LOCAL && h < 0 {
                h = 0;
            }
            // Row-major scan order: strictly-greater is sufficient for the
            // deterministic (score, i, j) tie-break.
            if h > best.score {
                best.consider(h, i, input.col_offset + l);
            }
            h_diag = h_up;
            h_left = h;
            *h_cell = h;
            *f_cell = f;
        }

        // Maintain the border convention: index 0 of the rolling row must be
        // the corner of the *next* row down, i.e. the left border at row i.
        h_row[0] = input.left.h[k];

        right.h.push(h_left);
        right.e.push(e);
    }

    f_row[0] = NEG_INF; // the corner F lane is never read downstream

    BlockOutput {
        bottom: RowBorder { h: h_row, f: f_row },
        right,
        best,
        cells: bh as u64 * bw as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::full_matrix;
    use megasw_seq::{ChromosomeGenerator, GenerateConfig};

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    /// Compute the whole matrix as ONE block and compare against reference.
    fn whole_matrix_as_block(a: &[u8], b: &[u8]) {
        let scheme = ScoreScheme::cudalign();
        let fm = full_matrix(a, b, &scheme);

        let top = RowBorder::zero(b.len());
        let left = ColBorder::zero(a.len());
        let out = scalar_block(
            BlockInput {
                a_rows: a,
                b_cols: b,
                top: &top,
                left: &left,
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );

        assert_eq!(out.best, fm.best, "best cell mismatch");
        assert_eq!(out.cells, (a.len() * b.len()) as u64);
        // Bottom border H must equal the last matrix row.
        assert_eq!(out.bottom.h, fm.row_border_h(a.len(), 1, b.len() + 1));
        // Right border H must equal the last matrix column.
        assert_eq!(out.right.h, fm.col_border_h(b.len(), 1, a.len() + 1));
    }

    #[test]
    fn whole_matrix_equals_reference_small() {
        whole_matrix_as_block(&codes("ACGT"), &codes("ACGT"));
        whole_matrix_as_block(&codes("ACGTTGCA"), &codes("TGCAACGT"));
        whole_matrix_as_block(&codes("AAAA"), &codes("TTTT"));
        whole_matrix_as_block(&codes("ACGTNNNACGT"), &codes("ACGTACGT"));
    }

    #[test]
    fn whole_matrix_equals_reference_random() {
        for seed in 0..5 {
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(60, seed)).generate();
            let b = ChromosomeGenerator::new(GenerateConfig::uniform(75, seed + 100)).generate();
            whole_matrix_as_block(a.codes(), b.codes());
        }
    }

    /// Split the matrix into 2×2 tiles and verify border composition gives
    /// identical borders and best to the reference.
    #[test]
    fn two_by_two_composition_matches_reference() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("ACGTTGCAGGCT"); // 12 rows
        let b = codes("TGCAACGTTACG"); // 12 cols
        let fm = full_matrix(&a, &b, &scheme);

        let split_i = 7; // rows [1..=7] then [8..=12]
        let split_j = 5; // cols [1..=5] then [6..=12]

        // Tile (0,0)
        let t00 = scalar_block(
            BlockInput {
                a_rows: &a[..split_i],
                b_cols: &b[..split_j],
                top: &RowBorder::zero(split_j),
                left: &ColBorder::zero(split_i),
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );
        // Tile (0,1): left border comes from t00.right; the top border is
        // still matrix row 0, hence all-zero.
        let t01 = scalar_block(
            BlockInput {
                a_rows: &a[..split_i],
                b_cols: &b[split_j..],
                top: &RowBorder::zero(b.len() - split_j),
                left: &t00.right,
                row_offset: 1,
                col_offset: split_j + 1,
            },
            &scheme,
        );
        // Tile (1,0): top border comes from t00.bottom.
        let t10 = scalar_block(
            BlockInput {
                a_rows: &a[split_i..],
                b_cols: &b[..split_j],
                top: &t00.bottom,
                left: &ColBorder::zero(a.len() - split_i),
                row_offset: split_i + 1,
                col_offset: 1,
            },
            &scheme,
        );
        // Tile (1,1): top from t01.bottom, left from t10.right.
        let t11 = scalar_block(
            BlockInput {
                a_rows: &a[split_i..],
                b_cols: &b[split_j..],
                top: &t01.bottom,
                left: &t10.right,
                row_offset: split_i + 1,
                col_offset: split_j + 1,
            },
            &scheme,
        );

        let best = t00.best.merge(t01.best).merge(t10.best).merge(t11.best);
        assert_eq!(best, fm.best);

        // Final bottom-right borders must match the reference matrix edges.
        assert_eq!(
            t11.bottom.h,
            fm.row_border_h(a.len(), split_j + 1, b.len() + 1)
        );
        assert_eq!(
            t11.right.h,
            fm.col_border_h(b.len(), split_i + 1, a.len() + 1)
        );
        assert_eq!(t10.bottom.h, fm.row_border_h(a.len(), 1, split_j + 1));
        assert_eq!(t01.right.h, fm.col_border_h(b.len(), 1, split_i + 1));
    }

    #[test]
    fn single_cell_block() {
        let scheme = ScoreScheme::cudalign();
        let out = scalar_block(
            BlockInput {
                a_rows: &[0],
                b_cols: &[0],
                top: &RowBorder::zero(1),
                left: &ColBorder::zero(1),
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );
        assert_eq!(out.best, BestCell::new(1, 1, 1));
        assert_eq!(out.bottom.h, vec![0, 1]);
        assert_eq!(out.right.h, vec![0, 1]);
        assert_eq!(out.cells, 1);
    }

    #[test]
    fn zero_height_block_passes_top_border_through() {
        let scheme = ScoreScheme::cudalign();
        let top = RowBorder::zero(4);
        let out = scalar_block(
            BlockInput {
                a_rows: &[],
                b_cols: &codes("ACGT"),
                top: &top,
                left: &ColBorder::zero(0),
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );
        assert_eq!(out.bottom, top);
        assert_eq!(out.best, BestCell::ZERO);
        assert_eq!(out.cells, 0);
    }

    #[test]
    fn anchored_whole_matrix_equals_anchored_scan() {
        use crate::traceback::anchored_best;
        let scheme = ScoreScheme::cudalign();
        for (a, b) in [
            ("ACGTACGT", "ACGTACGT"),
            ("ACGTTGCAGGCT", "TGCAACGTTACG"),
            ("AAAA", "TTTT"),
            ("ACGTN", "NACGT"),
        ] {
            let (a, b) = (codes(a), codes(b));
            let out = scalar_block_anchored(
                BlockInput {
                    a_rows: &a,
                    b_cols: &b,
                    top: &RowBorder::anchored(b.len(), 1, &scheme),
                    left: &ColBorder::anchored(a.len(), 1, &scheme),
                    row_offset: 1,
                    col_offset: 1,
                },
                &scheme,
            );
            assert_eq!(out.best, anchored_best(&a, &b, &scheme), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn anchored_composition_matches_whole() {
        let scheme = ScoreScheme::lenient();
        let a = codes("ACGTTGCAGGCTAA");
        let b = codes("TGCAACGTTACGG");
        let whole = scalar_block_anchored(
            BlockInput {
                a_rows: &a,
                b_cols: &b,
                top: &RowBorder::anchored(b.len(), 1, &scheme),
                left: &ColBorder::anchored(a.len(), 1, &scheme),
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );
        let (si, sj) = (6usize, 5usize);
        let t00 = scalar_block_anchored(
            BlockInput {
                a_rows: &a[..si],
                b_cols: &b[..sj],
                top: &RowBorder::anchored(sj, 1, &scheme),
                left: &ColBorder::anchored(si, 1, &scheme),
                row_offset: 1,
                col_offset: 1,
            },
            &scheme,
        );
        let t01 = scalar_block_anchored(
            BlockInput {
                a_rows: &a[..si],
                b_cols: &b[sj..],
                top: &RowBorder::anchored(b.len() - sj, sj + 1, &scheme),
                left: &t00.right,
                row_offset: 1,
                col_offset: sj + 1,
            },
            &scheme,
        );
        let t10 = scalar_block_anchored(
            BlockInput {
                a_rows: &a[si..],
                b_cols: &b[..sj],
                top: &t00.bottom,
                left: &ColBorder::anchored(a.len() - si, si + 1, &scheme),
                row_offset: si + 1,
                col_offset: 1,
            },
            &scheme,
        );
        let t11 = scalar_block_anchored(
            BlockInput {
                a_rows: &a[si..],
                b_cols: &b[sj..],
                top: &t01.bottom,
                left: &t10.right,
                row_offset: si + 1,
                col_offset: sj + 1,
            },
            &scheme,
        );
        let stitched = t00.best.merge(t01.best).merge(t10.best).merge(t11.best);
        assert_eq!(stitched, whole.best);
        let mut right_h = t01.right.h.clone();
        right_h.extend_from_slice(&t11.right.h[1..]);
        assert_eq!(right_h, whole.right.h);
    }

    #[test]
    fn best_cell_coordinates_are_global() {
        let scheme = ScoreScheme::cudalign();
        // Matching pair at local (1,1) in a tile whose offsets are (100, 200).
        let fmx = full_matrix(&codes("A"), &codes("A"), &scheme);
        assert_eq!(fmx.best.score, 1);
        let out = scalar_block(
            BlockInput {
                a_rows: &codes("A"),
                b_cols: &codes("A"),
                top: &RowBorder::zero(1),
                left: &ColBorder::zero(1),
                row_offset: 100,
                col_offset: 200,
            },
            &scheme,
        );
        assert_eq!(out.best, BestCell::new(1, 100, 200));
    }
}
