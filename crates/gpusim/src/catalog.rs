//! Calibrated catalog of 2012–2013 era boards.
//!
//! `cells_per_cycle_per_sm` is back-solved from the sustained GCUPS that
//! CUDAlign-class Smith-Waterman kernels reported on (or interpolated
//! between) these boards in the 2011–2014 literature:
//!
//! | board          | SMs | clock MHz | target GCUPS |
//! |----------------|-----|-----------|--------------|
//! | GTX 560 Ti     | 8   | 822       | ≈ 25         |
//! | GTX 580        | 16  | 772       | ≈ 33         |
//! | Tesla M2090    | 16  | 650       | ≈ 38         |
//! | Tesla K20      | 13  | 706       | ≈ 45         |
//! | GTX 680        | 8   | 1006      | ≈ 50         |
//! | GTX Titan      | 14  | 837       | ≈ 65         |
//!
//! Absolute values are calibration targets, not measurements — what the
//! reproduction preserves is the *relative* heterogeneity (roughly 1 : 1.3 :
//! 1.5 : 1.8 : 2 : 2.6 across the catalog) and the resulting load-balancing
//! behaviour. The paper's exact boards are not recoverable from the
//! abstract; `env2()`'s trio is chosen so its aggregate peak (≈160 GCUPS)
//! yields the paper's headline ≈140 GCUPS at the pipeline efficiencies the
//! model produces.

use crate::link::LinkSpec;
use crate::spec::DeviceSpec;

/// Solve `cells_per_cycle_per_sm` for a GCUPS target.
fn calibrated(
    name: &str,
    sms: u32,
    clock_mhz: u32,
    target_gcups: f64,
    mem_mib: u64,
    link: LinkSpec,
) -> DeviceSpec {
    let per_sm = target_gcups * 1e9 / (sms as f64 * clock_mhz as f64 * 1e6);
    DeviceSpec {
        name: name.to_string(),
        sms,
        clock_mhz,
        cells_per_cycle_per_sm: per_sm,
        mem_mib,
        link,
        launch_overhead_ns: 5_000,
    }
}

/// GeForce GTX 560 Ti — the weakest board in the catalog (≈25 GCUPS).
pub fn gtx560ti() -> DeviceSpec {
    calibrated(
        "GeForce GTX 560 Ti",
        8,
        822,
        25.0,
        1024,
        LinkSpec::pcie2_x16(),
    )
}

/// GeForce GTX 580 (≈33 GCUPS).
pub fn gtx580() -> DeviceSpec {
    calibrated(
        "GeForce GTX 580",
        16,
        772,
        33.0,
        1536,
        LinkSpec::pcie2_x16(),
    )
}

/// Tesla M2090 (≈38 GCUPS).
pub fn m2090() -> DeviceSpec {
    calibrated("Tesla M2090", 16, 650, 38.0, 6144, LinkSpec::pcie2_x16())
}

/// Tesla K20 (≈45 GCUPS).
pub fn k20() -> DeviceSpec {
    calibrated("Tesla K20", 13, 706, 45.0, 5120, LinkSpec::pcie2_x16())
}

/// GeForce GTX 680 (≈50 GCUPS).
pub fn gtx680() -> DeviceSpec {
    calibrated(
        "GeForce GTX 680",
        8,
        1006,
        50.0,
        2048,
        LinkSpec::pcie3_x16(),
    )
}

/// GeForce GTX Titan (≈65 GCUPS).
pub fn gtx_titan() -> DeviceSpec {
    calibrated(
        "GeForce GTX Titan",
        14,
        837,
        65.0,
        6144,
        LinkSpec::pcie3_x16(),
    )
}

/// Every board in the catalog, weakest first.
pub fn all() -> Vec<DeviceSpec> {
    vec![gtx560ti(), gtx580(), m2090(), k20(), gtx680(), gtx_titan()]
}

/// Look a board up by (case-insensitive substring of) its name.
pub fn by_name(name: &str) -> Option<DeviceSpec> {
    let needle = name.to_ascii_lowercase();
    all()
        .into_iter()
        .find(|d| d.name.to_ascii_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_targets() {
        for (spec, target) in [
            (gtx560ti(), 25.0),
            (gtx580(), 33.0),
            (m2090(), 38.0),
            (k20(), 45.0),
            (gtx680(), 50.0),
            (gtx_titan(), 65.0),
        ] {
            let gcups = spec.peak_gcups();
            assert!(
                (gcups - target).abs() < 1e-6,
                "{}: {} GCUPS vs target {}",
                spec.name,
                gcups,
                target
            );
        }
    }

    #[test]
    fn catalog_ordered_weakest_first() {
        let boards = all();
        for pair in boards.windows(2) {
            assert!(pair[0].peak_gcups() < pair[1].peak_gcups());
        }
    }

    #[test]
    fn lookup_by_substring() {
        assert_eq!(by_name("titan").unwrap().name, "GeForce GTX Titan");
        assert_eq!(by_name("680").unwrap().name, "GeForce GTX 680");
        assert!(by_name("voodoo").is_none());
    }

    #[test]
    fn heterogeneity_spread_matches_design() {
        // Strongest : weakest ≈ 2.6 — wide enough that equal partitioning
        // visibly hurts, which is what F4 demonstrates.
        let spread = gtx_titan().peak_gcups() / gtx560ti().peak_gcups();
        assert!((2.0..3.5).contains(&spread), "spread = {spread}");
    }
}
