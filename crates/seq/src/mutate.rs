//! Evolutionary divergence channel.
//!
//! The paper compares *homologous* chromosomes — human vs chimpanzee copies
//! descended from the same ancestral sequence, ≈98.8% identical in aligned
//! regions, with indels accounting for most of the remaining divergence.
//! [`DivergenceModel::apply`] turns a generated "ancestor" chromosome into a
//! derived homolog by drawing substitutions, short indels, segmental
//! insertions/deletions and inversions, so that the resulting pair exercises
//! the same SW score structure as the real data: one dominant near-diagonal
//! alignment band with local disruptions.

use crate::dna::DnaSeq;
use crate::rng::ChaCha8Rng;

/// Parameters of the divergence channel.
#[derive(Debug, Clone)]
pub struct DivergenceModel {
    /// RNG seed for the mutation draw.
    pub seed: u64,
    /// Per-base substitution probability (human–chimp ≈ 0.012).
    pub snp_rate: f64,
    /// Per-base probability of starting a short indel (≈ 0.0008).
    pub short_indel_rate: f64,
    /// Geometric-distribution parameter for short indel length (mean ≈ 1/p).
    pub short_indel_p: f64,
    /// Number of large segmental events (kilobase insertions/deletions).
    pub segmental_events: usize,
    /// Mean length of a segmental event.
    pub segmental_len: usize,
    /// Number of inversions.
    pub inversions: usize,
    /// Mean inversion length.
    pub inversion_len: usize,
}

impl DivergenceModel {
    /// Human–chimpanzee-like divergence (≈1.2% SNPs + indels ≈3% by length).
    pub fn human_chimp(seed: u64) -> Self {
        DivergenceModel {
            seed,
            snp_rate: 0.012,
            short_indel_rate: 0.0008,
            short_indel_p: 0.35,
            segmental_events: 4,
            segmental_len: 8_000,
            inversions: 1,
            inversion_len: 20_000,
        }
    }

    /// Human–chimp divergence with segmental/inversion event lengths scaled
    /// to the ancestor's length, so the same *proportional* rearrangement
    /// load applies whether the input is 20 KBP or 50 MBP. At
    /// `ancestor_len ≥ 1 MBP` this equals [`DivergenceModel::human_chimp`].
    pub fn human_chimp_scaled(seed: u64, ancestor_len: usize) -> Self {
        let scale = (ancestor_len as f64 / 1_000_000.0).min(1.0);
        let base = Self::human_chimp(seed);
        DivergenceModel {
            segmental_len: ((base.segmental_len as f64 * scale) as usize).max(40),
            inversion_len: ((base.inversion_len as f64 * scale) as usize).max(60),
            ..base
        }
    }

    /// Human–chimp-like divergence scaled for kilobase test sequences: the
    /// same event mix as [`DivergenceModel::human_chimp`] with segmental
    /// events two orders of magnitude shorter, so small inputs keep their
    /// approximate length instead of being swallowed by one multi-kilobase
    /// deletion.
    pub fn test_scale(seed: u64) -> Self {
        DivergenceModel {
            seed,
            snp_rate: 0.012,
            short_indel_rate: 0.0008,
            short_indel_p: 0.35,
            segmental_events: 2,
            segmental_len: 60,
            inversions: 1,
            inversion_len: 80,
        }
    }

    /// Substitutions only (no length changes) — keeps coordinates aligned,
    /// which is convenient for tests that need a known identity level.
    pub fn snp_only(seed: u64, snp_rate: f64) -> Self {
        DivergenceModel {
            seed,
            snp_rate,
            short_indel_rate: 0.0,
            short_indel_p: 0.5,
            segmental_events: 0,
            segmental_len: 0,
            inversions: 0,
            inversion_len: 0,
        }
    }

    /// No mutation at all (identity channel).
    pub fn identity(seed: u64) -> Self {
        Self::snp_only(seed, 0.0)
    }

    /// Apply the channel to `ancestor`, returning the derived homolog and a
    /// summary of the events drawn.
    pub fn apply(&self, ancestor: &DnaSeq) -> (DnaSeq, DivergenceSummary) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut summary = DivergenceSummary::default();
        let src = ancestor.codes();
        let mut out: Vec<u8> = Vec::with_capacity(src.len() + src.len() / 16);

        // Pass 1: per-base channel (substitutions + short indels).
        let mut i = 0usize;
        while i < src.len() {
            let base = src[i];
            let roll: f64 = rng.gen();
            if roll < self.short_indel_rate {
                // Insertion or deletion with equal probability.
                let len = sample_geometric(&mut rng, self.short_indel_p).max(1);
                if rng.gen::<bool>() {
                    // Insertion of `len` random bases before this base.
                    for _ in 0..len {
                        out.push(rng.gen_range(0..4u8));
                    }
                    summary.insertions += 1;
                    summary.inserted_bases += len;
                    // The current base is still emitted below.
                    out.push(mutate_base(&mut rng, base, self.snp_rate, &mut summary));
                    i += 1;
                } else {
                    // Deletion of `len` bases starting here.
                    let del = len.min(src.len() - i);
                    summary.deletions += 1;
                    summary.deleted_bases += del;
                    i += del;
                }
            } else {
                out.push(mutate_base(&mut rng, base, self.snp_rate, &mut summary));
                i += 1;
            }
        }

        // Pass 2: segmental events.
        for _ in 0..self.segmental_events {
            if out.is_empty() || self.segmental_len == 0 {
                break;
            }
            let len = (self.segmental_len / 2 + rng.gen_range(0..=self.segmental_len)).max(1);
            if rng.gen::<bool>() {
                // Segmental deletion.
                let len = len.min(out.len());
                let start = rng.gen_range(0..=out.len() - len);
                out.drain(start..start + len);
                summary.segmental_deletions += 1;
                summary.deleted_bases += len;
            } else {
                // Segmental duplication: copy an existing window elsewhere
                // (more realistic than random insertion — duplications create
                // the off-diagonal similarity real aligners see).
                let len = len.min(out.len());
                let src_start = rng.gen_range(0..=out.len() - len);
                let dup: Vec<u8> = out[src_start..src_start + len].to_vec();
                let dst = rng.gen_range(0..=out.len());
                out.splice(dst..dst, dup);
                summary.segmental_duplications += 1;
                summary.inserted_bases += len;
            }
        }

        // Pass 3: inversions (reverse-complement a window in place).
        for _ in 0..self.inversions {
            if out.len() < 2 || self.inversion_len == 0 {
                break;
            }
            let len = (self.inversion_len / 2 + rng.gen_range(0..=self.inversion_len))
                .max(2)
                .min(out.len());
            let start = rng.gen_range(0..=out.len() - len);
            let window: Vec<u8> = out[start..start + len]
                .iter()
                .rev()
                .map(|&c| crate::alphabet::complement_code(c))
                .collect();
            out[start..start + len].copy_from_slice(&window);
            summary.inversions += 1;
            summary.inverted_bases += len;
        }

        (
            DnaSeq::from_codes(out).expect("mutation emits only valid codes"),
            summary,
        )
    }
}

/// Substitute with probability `rate`; N passes through untouched.
fn mutate_base(rng: &mut ChaCha8Rng, base: u8, rate: f64, summary: &mut DivergenceSummary) -> u8 {
    if base >= 4 || rate == 0.0 || rng.gen::<f64>() >= rate {
        return base;
    }
    summary.substitutions += 1;
    // Draw one of the three *other* bases.
    let offset = rng.gen_range(1..4u8);
    (base + offset) % 4
}

/// Geometric sample: number of Bernoulli(p) failures before first success,
/// plus one. Mean = 1/p.
fn sample_geometric(rng: &mut ChaCha8Rng, p: f64) -> usize {
    let p = p.clamp(1e-6, 1.0);
    let mut n = 1;
    while rng.gen::<f64>() > p && n < 10_000 {
        n += 1;
    }
    n
}

/// Counts of the mutation events applied by [`DivergenceModel::apply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DivergenceSummary {
    pub substitutions: usize,
    pub insertions: usize,
    pub inserted_bases: usize,
    pub deletions: usize,
    pub deleted_bases: usize,
    pub segmental_deletions: usize,
    pub segmental_duplications: usize,
    pub inversions: usize,
    pub inverted_bases: usize,
}

impl DivergenceSummary {
    /// Approximate fraction of positions affected by point substitutions,
    /// relative to `ancestor_len`.
    pub fn snp_fraction(&self, ancestor_len: usize) -> f64 {
        if ancestor_len == 0 {
            0.0
        } else {
            self.substitutions as f64 / ancestor_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ChromosomeGenerator, GenerateConfig};

    fn ancestor(len: usize) -> DnaSeq {
        ChromosomeGenerator::new(GenerateConfig::uniform(len, 77)).generate()
    }

    #[test]
    fn identity_channel_is_identity() {
        let a = ancestor(20_000);
        let (b, s) = DivergenceModel::identity(1).apply(&a);
        assert_eq!(a, b);
        assert_eq!(s, DivergenceSummary::default());
    }

    #[test]
    fn snp_only_preserves_length() {
        let a = ancestor(50_000);
        let (b, s) = DivergenceModel::snp_only(3, 0.02).apply(&a);
        assert_eq!(a.len(), b.len());
        let frac = s.snp_fraction(a.len());
        assert!((frac - 0.02).abs() < 0.005, "snp fraction = {frac}");
        assert_eq!(s.insertions + s.deletions, 0);
    }

    #[test]
    fn snp_only_changes_exactly_substituted_positions() {
        let a = ancestor(30_000);
        let (b, s) = DivergenceModel::snp_only(5, 0.01).apply(&a);
        let diff = a
            .codes()
            .iter()
            .zip(b.codes())
            .filter(|(x, y)| x != y)
            .count();
        assert_eq!(diff, s.substitutions);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = ancestor(40_000);
        let m = DivergenceModel::human_chimp(9);
        let (b1, s1) = m.apply(&a);
        let (b2, s2) = m.apply(&a);
        assert_eq!(b1, b2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn human_chimp_divergence_in_expected_range() {
        let a = ancestor(200_000);
        let (b, s) = DivergenceModel::human_chimp(13).apply(&a);
        // Length should stay within a few percent of the ancestor.
        let ratio = b.len() as f64 / a.len() as f64;
        assert!((0.85..=1.15).contains(&ratio), "length ratio = {ratio}");
        let frac = s.snp_fraction(a.len());
        assert!((0.008..=0.016).contains(&frac), "snp fraction = {frac}");
        assert!(s.insertions > 0 && s.deletions > 0);
    }

    #[test]
    fn n_bases_pass_through_unsubstituted() {
        let a = DnaSeq::from_codes(vec![4; 5_000]).unwrap();
        let (b, s) = DivergenceModel::snp_only(21, 0.5).apply(&a);
        assert_eq!(s.substitutions, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_ancestor_is_fine() {
        let a = DnaSeq::new();
        let (b, _) = DivergenceModel::human_chimp(2).apply(&a);
        assert!(b.is_empty());
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_geometric(&mut rng, 0.25)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.25, "mean = {mean}");
    }
}
