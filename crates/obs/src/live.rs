//! In-flight run telemetry: lock-free live counters plus a sampler.
//!
//! PR 1's observability is entirely post-hoc — the metrics registry is
//! built after the workers have joined — so a multi-hour megabase run is a
//! black box while it executes. [`LiveTelemetry`] closes that gap: the
//! pipeline workers bump **relaxed atomic counters** (cells computed,
//! block-rows done, outgoing-ring occupancy, kernel busy time) once per
//! block-row, and anyone holding a clone of the handle can take a
//! consistent-enough [`LiveSnapshot`] at any moment without stopping the
//! run. A [`ProgressSampler`] thread does exactly that at a configurable
//! interval and renders the `--progress` TTY line.
//!
//! Why atomics here when the post-run [`MetricsRegistry`]
//! (`crate::metrics`) needs no locking at all: the registry is built *once*
//! from data the run has already finished producing, so it is lock-free by
//! construction; live counters are written by N worker threads while being
//! read by the sampler, which is only safe through atomic operations.
//! Relaxed ordering suffices — every counter is a monotone statistic, and a
//! sampler that observes `rows_done` one row stale renders a progress line
//! that is one row stale, nothing worse.
//!
//! The discrete-event twin drives the same handle with **simulated time**:
//! construct with [`LiveTelemetry::with_manual_clock`] and advance via
//! [`LiveTelemetry::set_now_ns`] at simulated-time boundaries; GCUPS then
//! reads in simulated seconds, exactly like the rest of the DES reporting.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-device live counters. All relaxed atomics; see the module docs.
#[derive(Debug, Default)]
struct DeviceLive {
    /// DP cells computed so far.
    cells: AtomicU64,
    /// Block-rows finished so far.
    rows_done: AtomicU64,
    /// Block-rows this device will compute in total.
    rows_total: AtomicU64,
    /// Nanoseconds spent inside kernels so far.
    busy_ns: AtomicU64,
    /// Current occupancy of the device's *outgoing* border ring.
    ring_occupancy: AtomicU64,
    /// Pruning watermark this device currently holds (monotone; only
    /// written when the run prunes).
    watermark: AtomicI64,
    /// Tiles this device has skipped via the pruning bound so far.
    tiles_pruned: AtomicU64,
    /// DP cells covered by the skipped tiles.
    cells_skipped: AtomicU64,
    /// Nanoseconds blocked on the predecessor's border ring (`pop`).
    wait_input_ns: AtomicU64,
    /// Nanoseconds blocked on the successor's border ring (`push`).
    wait_output_ns: AtomicU64,
    /// Nanoseconds spent depositing checkpoint waves.
    checkpoint_ns: AtomicU64,
    /// Nanoseconds spent inside the prune-skip fast path.
    prune_skip_ns: AtomicU64,
}

/// One fine-grained stall phase a worker can attribute wall-clock time to
/// via [`LiveTelemetry::on_phase_ns`]. Compute time keeps flowing through
/// [`LiveTelemetry::on_row_done`]'s `busy_ns` argument; these four cover
/// the time a device is *not* computing (or is computing a degenerate
/// skipped tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallPhase {
    /// Blocked popping a border column from the predecessor.
    WaitInput,
    /// Blocked pushing a border column to the successor.
    WaitOutput,
    /// Depositing a checkpoint wave.
    Checkpoint,
    /// Skipping a pruned tile (degenerate compute).
    PruneSkip,
}

/// How the telemetry measures "now".
#[derive(Debug)]
enum Clock {
    /// Wall clock, anchored at handle creation (threaded backend).
    Wall(Instant),
    /// Externally driven nanoseconds (DES backend: simulated time).
    Manual(AtomicU64),
}

/// Shared, lock-free in-flight counters for one run.
///
/// Clone the [`Arc`] freely: workers write, samplers read, nobody blocks.
#[derive(Debug)]
pub struct LiveTelemetry {
    total_cells: u64,
    devices: Vec<DeviceLive>,
    clock: Clock,
    /// Run-level count of completed recoveries (device blacklisted,
    /// columns repartitioned, pipeline resumed from a checkpoint wave).
    recoveries: AtomicU64,
    /// Set the first time any worker reports a pruning update; gates the
    /// pruning segment of the progress line so pruning-free runs pay no
    /// visual noise.
    pruning_active: AtomicBool,
    /// Completed pairs in a many-pair batch run (0 for single-pair runs,
    /// which never call [`LiveTelemetry::on_pair_done`]).
    pairs_done: AtomicU64,
    /// Total pairs a batch run will align; gates the pair segment of the
    /// progress line the same way `pruning_active` gates pruning.
    pairs_total: AtomicU64,
}

/// One device's portion of a [`LiveSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSnapshot {
    pub cells: u64,
    pub rows_done: u64,
    pub rows_total: u64,
    pub busy_ns: u64,
    pub ring_occupancy: u64,
    /// Pruning watermark this device held at the snapshot (0 when the run
    /// does not prune).
    pub watermark: i64,
    /// Tiles skipped so far via the pruning bound.
    pub tiles_pruned: u64,
    /// DP cells covered by skipped tiles.
    pub cells_skipped: u64,
    /// Nanoseconds blocked on the incoming border ring so far.
    pub wait_input_ns: u64,
    /// Nanoseconds blocked on the outgoing border ring so far.
    pub wait_output_ns: u64,
    /// Nanoseconds spent depositing checkpoints so far.
    pub checkpoint_ns: u64,
    /// Nanoseconds spent in the prune-skip fast path so far.
    pub prune_skip_ns: u64,
}

impl DeviceSnapshot {
    /// Fraction of this device's own slab finished, in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            self.rows_done as f64 / self.rows_total as f64
        }
    }

    /// Total attributed non-compute nanoseconds so far.
    pub fn stall_ns(&self) -> u64 {
        self.wait_input_ns + self.wait_output_ns + self.checkpoint_ns + self.prune_skip_ns
    }

    /// The stall phase this device has spent the most time in so far, as a
    /// short label plus its nanoseconds — `None` until any stall time has
    /// been attributed. Drives the `--progress` per-device stall column.
    pub fn dominant_stall(&self) -> Option<(&'static str, u64)> {
        let phases = [
            ("in", self.wait_input_ns),
            ("out", self.wait_output_ns),
            ("ckpt", self.checkpoint_ns),
            ("prune", self.prune_skip_ns),
        ];
        phases
            .into_iter()
            .filter(|&(_, ns)| ns > 0)
            .max_by_key(|&(_, ns)| ns)
    }
}

/// A point-in-time view of a run's live counters.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSnapshot {
    /// Nanoseconds since the run epoch (wall or simulated).
    pub now_ns: u64,
    /// Total DP cells the run will compute.
    pub total_cells: u64,
    /// Recoveries completed so far (0 for a fault-free run).
    pub recoveries: u64,
    /// True once any worker reported a pruning update this run.
    pub pruning: bool,
    /// Pairs finished so far in a batch run (0 outside batch mode).
    pub pairs_done: u64,
    /// Pairs the batch run will align in total (0 outside batch mode;
    /// gates the `pairs` segment of the progress line).
    pub pairs_total: u64,
    pub devices: Vec<DeviceSnapshot>,
}

impl LiveSnapshot {
    /// Cells computed so far, across all devices.
    pub fn cells_done(&self) -> u64 {
        self.devices.iter().map(|d| d.cells).sum()
    }

    /// Tiles pruned so far, across all devices.
    pub fn tiles_pruned(&self) -> u64 {
        self.devices.iter().map(|d| d.tiles_pruned).sum()
    }

    /// DP cells skipped so far, across all devices.
    pub fn cells_skipped(&self) -> u64 {
        self.devices.iter().map(|d| d.cells_skipped).sum()
    }

    /// Overall fraction done, in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            (self.cells_done() as f64 / self.total_cells as f64).min(1.0)
        }
    }

    /// Cumulative GCUPS since the run epoch.
    pub fn gcups_cumulative(&self) -> f64 {
        gcups(self.cells_done(), self.now_ns)
    }

    /// Instantaneous GCUPS over the window since `prev` (cumulative GCUPS
    /// when no previous snapshot exists or time has not advanced).
    pub fn gcups_since(&self, prev: Option<&LiveSnapshot>) -> f64 {
        match prev {
            Some(p) if self.now_ns > p.now_ns => gcups(
                self.cells_done().saturating_sub(p.cells_done()),
                self.now_ns - p.now_ns,
            ),
            _ => self.gcups_cumulative(),
        }
    }

    /// Per-device progress imbalance: the spread (max − min) of
    /// `fraction_done` across devices that have work assigned
    /// (`rows_total > 0`), in `[0, 1]`. Zero when fewer than two devices
    /// participate. A wavefront pipeline in steady state keeps this near
    /// `1 / rows_total` per chain hop; a badly partitioned run lets it
    /// grow.
    pub fn imbalance(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut active = 0usize;
        for d in &self.devices {
            if d.rows_total == 0 {
                continue;
            }
            active += 1;
            let f = d.fraction_done();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        if active < 2 {
            0.0
        } else {
            (hi - lo).max(0.0)
        }
    }
}

fn gcups(cells: u64, ns: u64) -> f64 {
    if ns == 0 {
        0.0
    } else {
        cells as f64 / ns as f64 // cells/ns == giga-cells/s
    }
}

impl LiveTelemetry {
    /// Wall-clock telemetry for a run of `total_cells` over `num_devices`
    /// devices. The epoch is "now".
    pub fn new(num_devices: usize, total_cells: u64) -> Arc<LiveTelemetry> {
        Arc::new(LiveTelemetry {
            total_cells,
            devices: (0..num_devices).map(|_| DeviceLive::default()).collect(),
            clock: Clock::Wall(Instant::now()),
            recoveries: AtomicU64::new(0),
            pruning_active: AtomicBool::new(false),
            pairs_done: AtomicU64::new(0),
            pairs_total: AtomicU64::new(0),
        })
    }

    /// Simulated-time telemetry: "now" is whatever the last
    /// [`LiveTelemetry::set_now_ns`] said (starts at 0).
    pub fn with_manual_clock(num_devices: usize, total_cells: u64) -> Arc<LiveTelemetry> {
        Arc::new(LiveTelemetry {
            total_cells,
            devices: (0..num_devices).map(|_| DeviceLive::default()).collect(),
            clock: Clock::Manual(AtomicU64::new(0)),
            recoveries: AtomicU64::new(0),
            pruning_active: AtomicBool::new(false),
            pairs_done: AtomicU64::new(0),
            pairs_total: AtomicU64::new(0),
        })
    }

    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    pub fn total_cells(&self) -> u64 {
        self.total_cells
    }

    /// Nanoseconds since the run epoch on this handle's clock.
    pub fn now_ns(&self) -> u64 {
        match &self.clock {
            Clock::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(ns) => ns.load(Ordering::Relaxed),
        }
    }

    /// Advance a manual (simulated-time) clock; monotone, so a stale writer
    /// cannot move time backwards. No-op on wall clocks.
    pub fn set_now_ns(&self, now_ns: u64) {
        if let Clock::Manual(ns) = &self.clock {
            ns.fetch_max(now_ns, Ordering::Relaxed);
        }
    }

    /// Declare how many block-rows device `device` will compute.
    pub fn set_rows_total(&self, device: usize, rows: u64) {
        if let Some(d) = self.devices.get(device) {
            d.rows_total.store(rows, Ordering::Relaxed);
        }
    }

    /// One finished block-row on `device`: `cells` more DP cells, `busy_ns`
    /// more kernel time. The single per-row write the workers pay.
    pub fn on_row_done(&self, device: usize, cells: u64, busy_ns: u64) {
        if let Some(d) = self.devices.get(device) {
            d.cells.fetch_add(cells, Ordering::Relaxed);
            d.rows_done.fetch_add(1, Ordering::Relaxed);
            d.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        }
    }

    /// A gauge the device's outgoing ring keeps at its current occupancy
    /// (see `CircularBuffer::attach_occupancy_gauge` in `megasw-multigpu`).
    pub fn ring_gauge(self: &Arc<Self>, device: usize) -> Option<RingGauge> {
        if device < self.devices.len() {
            Some(RingGauge {
                live: Arc::clone(self),
                device,
            })
        } else {
            None
        }
    }

    /// Attribute `ns` of wall-clock time on `device` to stall `phase`.
    /// Workers call this at most a few times per block-row, right next to
    /// the `on_row_done` write, so the cost stays one relaxed RMW per
    /// phase per row.
    pub fn on_phase_ns(&self, device: usize, phase: StallPhase, ns: u64) {
        if let Some(d) = self.devices.get(device) {
            let ctr = match phase {
                StallPhase::WaitInput => &d.wait_input_ns,
                StallPhase::WaitOutput => &d.wait_output_ns,
                StallPhase::Checkpoint => &d.checkpoint_ns,
                StallPhase::PruneSkip => &d.prune_skip_ns,
            };
            ctr.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// One completed recovery: a device was blacklisted and the run
    /// resumed on the survivors.
    pub fn on_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Declare how many pairs a batch run will align. Turning this on (any
    /// nonzero total) adds the `pairs` segment to the progress line.
    pub fn set_pairs_total(&self, pairs: u64) {
        self.pairs_total.store(pairs, Ordering::Relaxed);
    }

    /// One finished pair in a batch run.
    pub fn on_pair_done(&self) {
        self.pairs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-row pruning update from `device`: its current watermark and
    /// cumulative pruned-tile / skipped-cell counts. Watermark writes use
    /// `fetch_max`, so the published gauge is monotone even under races
    /// between a worker and a stale resumed attempt.
    pub fn on_prune_update(
        &self,
        device: usize,
        watermark: i32,
        tiles_pruned: u64,
        cells_skipped: u64,
    ) {
        self.pruning_active.store(true, Ordering::Relaxed);
        if let Some(d) = self.devices.get(device) {
            d.watermark.fetch_max(watermark as i64, Ordering::Relaxed);
            d.tiles_pruned.store(tiles_pruned, Ordering::Relaxed);
            d.cells_skipped.store(cells_skipped, Ordering::Relaxed);
        }
    }

    /// Current counters, read without blocking any worker.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            now_ns: self.now_ns(),
            total_cells: self.total_cells,
            recoveries: self.recoveries.load(Ordering::Relaxed),
            pruning: self.pruning_active.load(Ordering::Relaxed),
            pairs_done: self.pairs_done.load(Ordering::Relaxed),
            pairs_total: self.pairs_total.load(Ordering::Relaxed),
            devices: self
                .devices
                .iter()
                .map(|d| DeviceSnapshot {
                    cells: d.cells.load(Ordering::Relaxed),
                    rows_done: d.rows_done.load(Ordering::Relaxed),
                    rows_total: d.rows_total.load(Ordering::Relaxed),
                    busy_ns: d.busy_ns.load(Ordering::Relaxed),
                    ring_occupancy: d.ring_occupancy.load(Ordering::Relaxed),
                    watermark: d.watermark.load(Ordering::Relaxed),
                    tiles_pruned: d.tiles_pruned.load(Ordering::Relaxed),
                    cells_skipped: d.cells_skipped.load(Ordering::Relaxed),
                    wait_input_ns: d.wait_input_ns.load(Ordering::Relaxed),
                    wait_output_ns: d.wait_output_ns.load(Ordering::Relaxed),
                    checkpoint_ns: d.checkpoint_ns.load(Ordering::Relaxed),
                    prune_skip_ns: d.prune_skip_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Write handle for one device's ring-occupancy gauge.
#[derive(Debug, Clone)]
pub struct RingGauge {
    live: Arc<LiveTelemetry>,
    device: usize,
}

impl RingGauge {
    /// Set the gauge to the ring's current occupancy.
    pub fn set(&self, occupancy: usize) {
        if let Some(d) = self.live.devices.get(self.device) {
            d.ring_occupancy.store(occupancy as u64, Ordering::Relaxed);
        }
    }
}

/// Render one progress line from a snapshot (and the previous one, for the
/// instantaneous rate). Pure, so the TTY plumbing stays trivial to test.
///
/// Anatomy: `overall% | instantaneous GCUPS | cumulative GCUPS | imbalance
/// | per-device slab progress`.
pub fn render_progress_line(cur: &LiveSnapshot, prev: Option<&LiveSnapshot>) -> String {
    let mut line = format!(
        "{:5.1}% | {:7.3} GCUPS now | {:7.3} GCUPS avg | imbalance {:4.1}%",
        100.0 * cur.fraction_done(),
        cur.gcups_since(prev),
        cur.gcups_cumulative(),
        100.0 * cur.imbalance(),
    );
    if cur.pairs_total > 0 {
        line.push_str(&format!(" | pairs {}/{}", cur.pairs_done, cur.pairs_total));
    }
    if cur.recoveries > 0 {
        line.push_str(&format!(" | rec {}", cur.recoveries));
    }
    if cur.pruning {
        line.push_str(&format!(" | pruned {}", cur.tiles_pruned()));
    }
    for (i, d) in cur.devices.iter().enumerate() {
        line.push_str(&format!(
            " | d{i} {:3.0}% occ {}",
            100.0 * d.fraction_done(),
            d.ring_occupancy
        ));
        // Per-device stall column: dominant stall phase and its share of
        // the elapsed wall clock (omitted until any stall is attributed).
        if let Some((label, ns)) = d.dominant_stall() {
            let pct = if cur.now_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / cur.now_ns as f64
            };
            line.push_str(&format!(" st:{label} {pct:2.0}%"));
        }
    }
    line
}

/// A background thread that snapshots a [`LiveTelemetry`] at a fixed
/// interval and hands each (previous, current) pair to a sink — the CLI's
/// sink writes the `--progress` line to stderr.
pub struct ProgressSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressSampler {
    /// Start sampling `live` every `interval`, feeding `sink`. The sink
    /// also runs once on shutdown with the final snapshot, so a finished
    /// run always reports 100%.
    pub fn spawn(
        live: Arc<LiveTelemetry>,
        interval: Duration,
        mut sink: impl FnMut(&LiveSnapshot, Option<&LiveSnapshot>) + Send + 'static,
    ) -> ProgressSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut prev: Option<LiveSnapshot> = None;
            while !stop2.load(Ordering::Relaxed) {
                let cur = live.snapshot();
                sink(&cur, prev.as_ref());
                prev = Some(cur);
                // Sleep in small slices so stop() returns promptly even at
                // long sampling intervals.
                let mut remaining = interval;
                while !stop2.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
            let cur = live.snapshot();
            sink(&cur, prev.as_ref());
        });
        ProgressSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sampler and wait for its final sample.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let live = LiveTelemetry::new(2, 1_000);
        live.set_rows_total(0, 10);
        live.set_rows_total(1, 10);
        live.on_row_done(0, 100, 5);
        live.on_row_done(0, 100, 5);
        live.on_row_done(1, 50, 2);
        let s = live.snapshot();
        assert_eq!(s.cells_done(), 250);
        assert_eq!(s.devices[0].rows_done, 2);
        assert_eq!(s.devices[0].busy_ns, 10);
        assert_eq!(s.devices[1].cells, 50);
        assert!((s.fraction_done() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_device_is_ignored() {
        let live = LiveTelemetry::new(1, 100);
        live.on_row_done(7, 100, 1); // silently dropped
        assert_eq!(live.snapshot().cells_done(), 0);
        assert!(live.ring_gauge(7).is_none());
    }

    #[test]
    fn manual_clock_drives_simulated_gcups() {
        let live = LiveTelemetry::with_manual_clock(1, 4_000);
        live.set_rows_total(0, 4);
        live.on_row_done(0, 2_000, 1_000);
        live.set_now_ns(1_000);
        let s = live.snapshot();
        assert_eq!(s.now_ns, 1_000);
        // 2000 cells in 1000 ns = 2 giga-cells/s.
        assert!((s.gcups_cumulative() - 2.0).abs() < 1e-12);
        // Clock is monotone: stale writers cannot rewind it.
        live.set_now_ns(500);
        assert_eq!(live.snapshot().now_ns, 1_000);
    }

    #[test]
    fn instantaneous_rate_uses_the_window() {
        let live = LiveTelemetry::with_manual_clock(1, 10_000);
        live.on_row_done(0, 1_000, 0);
        live.set_now_ns(1_000);
        let first = live.snapshot();
        live.on_row_done(0, 3_000, 0);
        live.set_now_ns(2_000);
        let second = live.snapshot();
        // Window: 3000 cells over 1000 ns = 3.0; cumulative: 4000/2000 = 2.0.
        assert!((second.gcups_since(Some(&first)) - 3.0).abs() < 1e-12);
        assert!((second.gcups_cumulative() - 2.0).abs() < 1e-12);
        // Degenerate window falls back to cumulative.
        assert_eq!(second.gcups_since(Some(&second)), second.gcups_cumulative());
    }

    #[test]
    fn imbalance_is_the_progress_spread() {
        let live = LiveTelemetry::new(3, 300);
        for (d, rows) in [(0usize, 10u64), (1, 10), (2, 10)] {
            live.set_rows_total(d, rows);
        }
        for _ in 0..8 {
            live.on_row_done(0, 10, 1);
        }
        for _ in 0..6 {
            live.on_row_done(1, 10, 1);
        }
        for _ in 0..5 {
            live.on_row_done(2, 10, 1);
        }
        let s = live.snapshot();
        assert!((s.imbalance() - 0.3).abs() < 1e-12);
        // Single-device runs have no imbalance by definition.
        let solo = LiveTelemetry::new(1, 100);
        solo.set_rows_total(0, 4);
        solo.on_row_done(0, 25, 1);
        assert_eq!(solo.snapshot().imbalance(), 0.0);
    }

    #[test]
    fn ring_gauge_tracks_occupancy() {
        let live = LiveTelemetry::new(2, 100);
        let gauge = live.ring_gauge(0).unwrap();
        gauge.set(3);
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 3);
        gauge.set(0);
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 0);
    }

    #[test]
    fn progress_line_contains_the_advertised_fields() {
        let live = LiveTelemetry::with_manual_clock(2, 1_000);
        live.set_rows_total(0, 2);
        live.set_rows_total(1, 2);
        live.on_row_done(0, 400, 10);
        live.on_row_done(1, 100, 10);
        live.set_now_ns(1_000);
        let s = live.snapshot();
        let line = render_progress_line(&s, None);
        assert!(line.contains("50.0%"), "{line}");
        assert!(line.contains("GCUPS now"), "{line}");
        assert!(line.contains("GCUPS avg"), "{line}");
        assert!(line.contains("imbalance"), "{line}");
        assert!(line.contains("d0"), "{line}");
        assert!(line.contains("d1"), "{line}");
        // Fault-free runs do not pay a recovery column…
        assert!(!line.contains("rec"), "{line}");
        // …but a recovered run surfaces the count.
        live.on_recovery();
        live.on_recovery();
        let s = live.snapshot();
        assert_eq!(s.recoveries, 2);
        let line = render_progress_line(&s, None);
        assert!(line.contains("| rec 2"), "{line}");
    }

    #[test]
    fn prune_updates_gate_the_progress_segment_and_stay_monotone() {
        let live = LiveTelemetry::new(2, 1_000);
        // Pruning-free snapshots render no pruning segment.
        let s = live.snapshot();
        assert!(!s.pruning);
        assert!(!render_progress_line(&s, None).contains("pruned"));
        live.on_prune_update(0, 5, 2, 128);
        live.on_prune_update(1, 9, 1, 64);
        // A stale (lower) watermark write cannot rewind the gauge.
        live.on_prune_update(1, 4, 3, 96);
        let s = live.snapshot();
        assert!(s.pruning);
        assert_eq!(s.devices[0].watermark, 5);
        assert_eq!(s.devices[1].watermark, 9);
        assert_eq!(s.devices[1].tiles_pruned, 3);
        assert_eq!(s.tiles_pruned(), 5);
        assert_eq!(s.cells_skipped(), 128 + 96);
        assert!(render_progress_line(&s, None).contains("| pruned 5"));
    }

    #[test]
    fn phase_attribution_accumulates_and_renders_a_stall_column() {
        let live = LiveTelemetry::with_manual_clock(2, 1_000);
        live.set_rows_total(0, 2);
        live.set_rows_total(1, 2);
        // No stall attributed yet: no stall column in the line.
        live.set_now_ns(1_000);
        let line = render_progress_line(&live.snapshot(), None);
        assert!(!line.contains("st:"), "{line}");
        live.on_phase_ns(0, StallPhase::WaitInput, 300);
        live.on_phase_ns(0, StallPhase::WaitInput, 100);
        live.on_phase_ns(0, StallPhase::Checkpoint, 50);
        live.on_phase_ns(1, StallPhase::WaitOutput, 200);
        live.on_phase_ns(9, StallPhase::PruneSkip, 999); // out of range: dropped
        let s = live.snapshot();
        assert_eq!(s.devices[0].wait_input_ns, 400);
        assert_eq!(s.devices[0].checkpoint_ns, 50);
        assert_eq!(s.devices[0].stall_ns(), 450);
        assert_eq!(s.devices[1].wait_output_ns, 200);
        assert_eq!(s.devices[0].dominant_stall(), Some(("in", 400)));
        assert_eq!(s.devices[1].dominant_stall(), Some(("out", 200)));
        let line = render_progress_line(&s, None);
        // 400 of 1000 ns waiting on input for d0; 200 of 1000 ns on output
        // for d1.
        assert!(line.contains("st:in 40%"), "{line}");
        assert!(line.contains("st:out 20%"), "{line}");
    }

    #[test]
    fn sampler_samples_and_reports_the_final_state() {
        let live = LiveTelemetry::new(1, 100);
        live.set_rows_total(0, 1);
        let seen: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let sampler = ProgressSampler::spawn(
            Arc::clone(&live),
            Duration::from_millis(5),
            move |cur, _prev| seen2.lock().unwrap().push(cur.fraction_done()),
        );
        std::thread::sleep(Duration::from_millis(15));
        live.on_row_done(0, 100, 1);
        sampler.stop();
        let seen = seen.lock().unwrap();
        assert!(seen.len() >= 2, "expected several samples, got {seen:?}");
        // The shutdown sample observes the completed run.
        assert_eq!(*seen.last().unwrap(), 1.0);
    }
}
