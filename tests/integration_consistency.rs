//! Consistency sweep: the multi-GPU pipeline's result must be invariant to
//! every knob that only changes *how* the matrix is computed — block
//! geometry, buffer capacity, partition policy, device count, device order.

use megasw::prelude::*;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 5).apply(&a);
    (a, b)
}

#[test]
fn invariant_to_block_geometry() {
    let (a, b) = pair(2_500, 1);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    for (bh, bw) in [
        (16, 16),
        (64, 32),
        (33, 97),
        (256, 256),
        (2_500, 50),
        (50, 4_000),
    ] {
        let mut cfg = RunConfig::paper_default();
        cfg.block_h = bh;
        cfg.block_w = bw;
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "block {bh}×{bw}");
    }
}

#[test]
fn invariant_to_buffer_capacity() {
    let (a, b) = pair(2_500, 2);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    for cap in [1, 2, 3, 8, 64, 1024] {
        let cfg = RunConfig::paper_default()
            .with_block(64)
            .with_buffer_capacity(cap);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "capacity {cap}");
        // Ring occupancy never exceeds the configured capacity.
        for d in &report.devices {
            if let Some(rs) = &d.ring_out {
                assert!(rs.max_occupancy <= cap, "capacity {cap}: {rs:?}");
            }
        }
    }
}

#[test]
fn invariant_to_partition_policy() {
    let (a, b) = pair(2_500, 3);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    for policy in [
        PartitionPolicy::Equal,
        PartitionPolicy::Proportional,
        PartitionPolicy::Explicit(vec![1.0, 5.0, 2.0]),
        PartitionPolicy::Explicit(vec![100.0, 1.0, 1.0]),
    ] {
        let cfg = RunConfig::paper_default()
            .with_block(64)
            .with_partition(policy.clone());
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "policy {policy:?}");
    }
}

#[test]
fn invariant_to_device_count() {
    let (a, b) = pair(3_000, 4);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    let base = Platform::homogeneous(catalog::m2090(), 6);
    for g in 1..=6 {
        let cfg = RunConfig::paper_default().with_block(64);
        let report = PipelineRun::new(a.codes(), b.codes(), &base.take(g))
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "{g} devices");
        assert_eq!(report.devices.len(), g);
    }
}

#[test]
fn invariant_to_device_order() {
    // Chain order changes the slab assignment but never the result.
    let (a, b) = pair(2_000, 5);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    let cfg = RunConfig::paper_default().with_block(64);
    let forward = Platform::custom(
        "fwd",
        vec![catalog::gtx_titan(), catalog::gtx680(), catalog::k20()],
    );
    let backward = Platform::custom(
        "bwd",
        vec![catalog::k20(), catalog::gtx680(), catalog::gtx_titan()],
    );
    let r1 = PipelineRun::new(a.codes(), b.codes(), &forward)
        .config(cfg.clone())
        .run()
        .unwrap();
    let r2 = PipelineRun::new(a.codes(), b.codes(), &backward)
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(r1.best, want);
    assert_eq!(r2.best, want);
    // Proportional splits differ with order…
    assert_ne!(
        r1.devices[0].slab_width, r2.devices[0].slab_width,
        "expected different first-slab widths for reversed chains"
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let (a, b) = pair(1_500, 6);
    let cfg = RunConfig::paper_default().with_block(64);
    let r1 = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    let r2 = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(r1.best, r2.best);
    assert_eq!(r1.total_bytes_transferred(), r2.total_bytes_transferred());
}

#[test]
fn adversarial_sequences_stay_consistent() {
    let scheme = ScoreScheme::cudalign();
    let cfg = RunConfig::paper_default().with_block(32);
    let cases: Vec<(DnaSeq, DnaSeq)> = vec![
        // Homopolymers: maximal tie-break stress.
        (
            DnaSeq::from_codes(vec![0; 900]).unwrap(),
            DnaSeq::from_codes(vec![0; 700]).unwrap(),
        ),
        // Disjoint alphabets: best score 0.
        (
            DnaSeq::from_codes(vec![0; 500]).unwrap(),
            DnaSeq::from_codes(vec![3; 500]).unwrap(),
        ),
        // All-N against all-N.
        (
            DnaSeq::from_codes(vec![4; 300]).unwrap(),
            DnaSeq::from_codes(vec![4; 300]).unwrap(),
        ),
        // Tandem repeat against its own unit.
        (
            DnaSeq::from_str_unwrap(&"ACGT".repeat(250)),
            DnaSeq::from_str_unwrap("ACGT"),
        ),
    ];
    for (i, (a, b)) in cases.iter().enumerate() {
        let want = gotoh_best(a.codes(), b.codes(), &scheme);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "case {i}");
    }
}
