//! Sequence statistics used by tests, the benchmark harness and Table 1.

use crate::dna::DnaSeq;

/// Composition and structure summary of one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStats {
    pub len: usize,
    pub counts: [usize; 5],
    pub gc_fraction: f64,
    /// Number of maximal runs of `N`.
    pub n_runs: usize,
    /// Length of the longest homopolymer run (same concrete base repeated).
    pub longest_homopolymer: usize,
}

/// Compute [`SeqStats`] in a single pass.
pub fn seq_stats(seq: &DnaSeq) -> SeqStats {
    let mut counts = [0usize; 5];
    let mut n_runs = 0usize;
    let mut longest_homopolymer = 0usize;
    let mut run_len = 0usize;
    let mut prev: Option<u8> = None;

    for &c in seq.codes() {
        counts[c as usize] += 1;
        if c == 4 {
            if prev != Some(4) {
                n_runs += 1;
            }
            run_len = 0;
        } else if prev == Some(c) {
            run_len += 1;
            longest_homopolymer = longest_homopolymer.max(run_len);
        } else {
            run_len = 1;
            longest_homopolymer = longest_homopolymer.max(1);
        }
        prev = Some(c);
    }

    let concrete = counts[0] + counts[1] + counts[2] + counts[3];
    let gc_fraction = if concrete == 0 {
        0.0
    } else {
        (counts[1] + counts[2]) as f64 / concrete as f64
    };

    SeqStats {
        len: seq.len(),
        counts,
        gc_fraction,
        n_runs,
        longest_homopolymer,
    }
}

/// Fraction of positions where `a` and `b` carry the same concrete base,
/// over the overlapping prefix. This is an *ungapped* identity — a cheap
/// proxy used to sanity-check divergence models (a gapped identity would
/// require the alignment this workspace exists to compute).
pub fn ungapped_identity(a: &DnaSeq, b: &DnaSeq) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let same = a.codes()[..n]
        .iter()
        .zip(&b.codes()[..n])
        .filter(|(x, y)| x == y && **x < 4)
        .count();
    same as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ChromosomeGenerator, GenerateConfig};
    use crate::mutate::DivergenceModel;

    #[test]
    fn stats_of_known_string() {
        let s = DnaSeq::from_str_unwrap("AAACCGTNNNTA");
        let st = seq_stats(&s);
        assert_eq!(st.len, 12);
        assert_eq!(st.counts, [4, 2, 1, 2, 3]); // A=4 (AAA + final A), C=2, G=1, T=2, N=3
        assert_eq!(st.n_runs, 1);
        assert_eq!(st.longest_homopolymer, 3);
        assert!((st.gc_fraction - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn n_runs_counted_as_maximal_runs() {
        let s = DnaSeq::from_str_unwrap("NNANNNAN");
        assert_eq!(seq_stats(&s).n_runs, 3);
    }

    #[test]
    fn empty_sequence() {
        let st = seq_stats(&DnaSeq::new());
        assert_eq!(st.len, 0);
        assert_eq!(st.n_runs, 0);
        assert_eq!(st.longest_homopolymer, 0);
        assert_eq!(st.gc_fraction, 0.0);
    }

    #[test]
    fn identity_of_identical_sequences_is_one() {
        let s = DnaSeq::from_str_unwrap("ACGTACGT");
        assert!((ungapped_identity(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_counts_only_concrete_matches() {
        let a = DnaSeq::from_str_unwrap("NNAA");
        let b = DnaSeq::from_str_unwrap("NNAT");
        // Positions: N-N (not counted), N-N, A-A (match), A-T.
        assert!((ungapped_identity(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snp_channel_identity_close_to_expected() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(100_000, 31)).generate();
        let (b, _) = DivergenceModel::snp_only(7, 0.05).apply(&a);
        let id = ungapped_identity(&a, &b);
        assert!((id - 0.95).abs() < 0.01, "identity = {id}");
    }
}
