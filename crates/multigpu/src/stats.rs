//! Run reports and unified stall accounting.
//!
//! Both backends produce the same [`RunReport`]: the threaded pipeline
//! fills the wall-clock side (`wall_time`, `gcups_wall`, per-device
//! `wall_busy` + `stall`), the discrete-event simulator fills the simulated
//! side (`sim_time`, `gcups_sim`, `sim_busy` + `stall`). The
//! [`StallBreakdown`] is shared: its fields are nanoseconds ([`SimTime`]),
//! and for every device the identity
//! `startup + input_stalls + drain == total_time − busy_time`
//! holds by construction on either backend.

use crate::circbuf::RingStats;
use crate::config::PruneMode;
use megasw_gpusim::SimTime;
use megasw_obs::{MetricsRegistry, ObsSpan};
use megasw_sw::{BestCell, KernelSelection};
use std::time::Duration;

/// Where one device's idle time went. Works in nanoseconds, so it applies
/// to both the simulated and the wall-clock backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Idle before the first kernel (pipeline fill).
    pub startup: SimTime,
    /// Idle between kernels waiting for the left neighbour's borders.
    pub input_stalls: SimTime,
    /// Idle after the last kernel (pipeline drain).
    pub drain: SimTime,
}

impl StallBreakdown {
    /// Total idle time.
    pub fn total(&self) -> SimTime {
        self.startup + self.input_stalls + self.drain
    }

    /// Build the breakdown from one device's kernel-activity envelope:
    /// the run's total duration, the first kernel's start, the last
    /// kernel's end, and the summed kernel busy time (all nanoseconds since
    /// the same epoch). By construction
    /// `total() == total_ns − busy_ns` whenever
    /// `first_start ≤ last_end ≤ total_ns` and `busy ≤ last_end − first_start`.
    pub fn from_envelope(
        total_ns: u64,
        first_start_ns: u64,
        last_end_ns: u64,
        busy_ns: u64,
    ) -> Self {
        StallBreakdown {
            startup: SimTime(first_start_ns),
            input_stalls: SimTime(
                (last_end_ns.saturating_sub(first_start_ns)).saturating_sub(busy_ns),
            ),
            drain: SimTime(total_ns.saturating_sub(last_end_ns)),
        }
    }
}

impl std::fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "startup {} + input {} + drain {} = {}",
            self.startup,
            self.input_stalls,
            self.drain,
            self.total()
        )
    }
}

/// Fine-grained per-device wall-clock attribution: where every nanosecond
/// of a device's makespan went. Complements the coarse [`StallBreakdown`]
/// envelope (which only splits *idle* time) with measured phases, and is
/// produced by both backends.
///
/// The defining property: the seven fields **sum to the device's makespan
/// exactly** — [`StallAttribution::from_measured`] computes `other_ns` as
/// the unattributed remainder, so nothing is double-counted and nothing
/// is lost. `prune_skip_ns` and `simd_rescue_ns` are carved *out of* the
/// coarse busy time (they happen inside the per-tile timing window), so
/// `compute_ns` here is strictly "productive full-tile kernel time".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallAttribution {
    /// Productive kernel time: full tiles computed, minus the rescue and
    /// prune-skip slices below.
    pub compute_ns: u64,
    /// Blocked popping border columns from the predecessor ring.
    pub wait_input_ns: u64,
    /// Blocked pushing border columns to the successor ring.
    pub wait_output_ns: u64,
    /// Depositing checkpoint waves into the host-side store.
    pub checkpoint_ns: u64,
    /// Inside the prune-skip fast path (degenerate tiles).
    pub prune_skip_ns: u64,
    /// Re-running tiles on the scalar kernel after a SIMD rescue.
    pub simd_rescue_ns: u64,
    /// Everything unmeasured: thread startup, drain, row bookkeeping.
    pub other_ns: u64,
}

impl StallAttribution {
    /// Build from a device's measured phase clocks. `busy_ns` is the
    /// coarse per-tile kernel time (the same number behind
    /// `DeviceReport::wall_busy` / `sim_busy`), which *contains* the
    /// prune-skip and rescue slices; they are subtracted out so the seven
    /// phases stay disjoint. `other_ns` picks up the remainder, making
    /// [`StallAttribution::total_ns`] equal `wall_ns` by construction
    /// (all subtraction saturates, so clock jitter can shrink `other_ns`
    /// to zero but never underflow).
    #[allow(clippy::too_many_arguments)]
    pub fn from_measured(
        wall_ns: u64,
        busy_ns: u64,
        wait_input_ns: u64,
        wait_output_ns: u64,
        checkpoint_ns: u64,
        prune_skip_ns: u64,
        simd_rescue_ns: u64,
    ) -> Self {
        let compute_ns = busy_ns
            .saturating_sub(prune_skip_ns)
            .saturating_sub(simd_rescue_ns);
        let measured = compute_ns
            + wait_input_ns
            + wait_output_ns
            + checkpoint_ns
            + prune_skip_ns
            + simd_rescue_ns;
        StallAttribution {
            compute_ns,
            wait_input_ns,
            wait_output_ns,
            checkpoint_ns,
            prune_skip_ns,
            simd_rescue_ns,
            other_ns: wall_ns.saturating_sub(measured),
        }
    }

    /// Sum of all seven phases — the device's makespan when built via
    /// [`StallAttribution::from_measured`] with consistent clocks.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns
            + self.wait_input_ns
            + self.wait_output_ns
            + self.checkpoint_ns
            + self.prune_skip_ns
            + self.simd_rescue_ns
            + self.other_ns
    }

    /// The non-compute share of the makespan, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            (total - self.compute_ns) as f64 / total as f64
        }
    }

    /// `(name, nanoseconds)` pairs for all seven phases, in display
    /// order. Names are stable wire identifiers (`compute`,
    /// `wait_input`, …) shared by metrics, JSON and the trace exporter.
    pub fn phases(&self) -> [(&'static str, u64); 7] {
        [
            ("compute", self.compute_ns),
            ("wait_input", self.wait_input_ns),
            ("wait_output", self.wait_output_ns),
            ("checkpoint", self.checkpoint_ns),
            ("prune_skip", self.prune_skip_ns),
            ("simd_rescue", self.simd_rescue_ns),
            ("other", self.other_ns),
        ]
    }
}

impl std::fmt::Display for StallAttribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_ns().max(1);
        let mut first = true;
        for (name, ns) in self.phases() {
            if ns == 0 && name != "compute" {
                continue;
            }
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            write!(f, "{name} {:.1}%", 100.0 * ns as f64 / total as f64)?;
        }
        Ok(())
    }
}

/// Per-device section of a [`RunReport`].
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Index in the platform chain.
    pub device: usize,
    /// Board name.
    pub name: String,
    /// First matrix column of this device's slab (1-based).
    pub slab_j0: usize,
    /// Slab width in columns.
    pub slab_width: usize,
    /// DP cells this device computed.
    pub cells: u128,
    /// Bytes this device sent to its right-hand neighbour.
    pub bytes_sent: u64,
    /// Outgoing-ring statistics (None for the last device).
    pub ring_out: Option<RingStats>,
    /// Wall-clock time this device's worker spent inside kernels (None for
    /// simulated runs).
    pub wall_busy: Option<Duration>,
    /// Simulated busy time on the compute stream (None for wall-clock runs).
    pub sim_busy: Option<SimTime>,
    /// Simulated utilization: busy / makespan.
    pub sim_utilization: Option<f64>,
    /// Idle-time breakdown (both backends fill this).
    pub stall: Option<StallBreakdown>,
    /// Fine-grained phase attribution whose phases sum to this device's
    /// makespan (both backends fill this; the DES maps its simulated
    /// stalls onto the same phases).
    pub attribution: Option<StallAttribution>,
}

/// Fault-recovery accounting for one run (present whenever the run was
/// executed with a [`RecoveryPolicy`](crate::checkpoint::RecoveryPolicy),
/// even if no fault fired — all-zero in that case).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Completed recoveries: device blacklisted, columns repartitioned,
    /// run resumed from a checkpoint wave.
    pub recoveries: u64,
    /// DP cells whose work was lost to rewinds (computed in a failed
    /// attempt but not covered by the checkpoint resumed from).
    pub rewound_cells: u128,
    /// Border-segment checkpoints deposited in the host-side store.
    pub checkpoints_taken: u64,
    /// Platform indices of the devices that failed, in failure order.
    pub failed_devices: Vec<usize>,
    /// Block-row each recovery resumed from, in failure order.
    pub resumed_from_rows: Vec<usize>,
}

/// Checkpoint-boundary rebalance accounting for one run (present whenever
/// the run executed with
/// [`RebalanceMode::On`](crate::config::RebalanceMode) — all-zero when the
/// controller never found a migration worth applying).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RebalanceReport {
    /// Applied migrations: segment boundaries where the controller changed
    /// at least one slab width and handed off the border wave.
    pub migrations: u64,
    /// Total block-columns moved between devices across all migrations
    /// (sum over migrations of half the total absolute width change,
    /// in matrix columns).
    pub moved_columns: u64,
    /// Segment boundaries at which the controller evaluated a re-split
    /// (applied or not).
    pub evaluations: u64,
    /// Block-row of each applied migration, in order.
    pub applied_at_rows: Vec<usize>,
}

/// Block-pruning accounting for one run (present whenever the run executed
/// with [`PruneMode::Local`] or [`PruneMode::Distributed`]; `None` when
/// pruning was off or forced off by anchored semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruningReport {
    /// The mode the run actually executed with.
    pub mode: PruneMode,
    /// Tiles skipped via the pruning bound.
    pub tiles_pruned: u64,
    /// Tiles considered (pruned + computed) across all devices.
    pub tiles_total: u64,
    /// DP cells covered by skipped tiles (never computed).
    pub cells_skipped: u128,
    /// How far the slowest device's final watermark lagged the true best
    /// score (`best.score − min worker watermark`); 0 means every device
    /// finished fully informed.
    pub watermark_lag: i64,
}

impl PruningReport {
    /// Fraction of tiles skipped (0 when no tiles were considered).
    pub fn pruned_fraction(&self) -> f64 {
        if self.tiles_total == 0 {
            0.0
        } else {
            self.tiles_pruned as f64 / self.tiles_total as f64
        }
    }
}

/// The result of one multi-GPU run (threaded, simulated, or both).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Best Smith-Waterman cell (score + end position), bit-identical to
    /// the sequential reference.
    pub best: BestCell,
    /// Total DP cells (`m · n`).
    pub total_cells: u128,
    /// Wall-clock duration of the threaded run (None for pure simulation).
    pub wall_time: Option<Duration>,
    /// Wall-clock GCUPS of the threaded run on this host's CPU.
    pub gcups_wall: Option<f64>,
    /// Simulated makespan (None for pure threaded runs).
    pub sim_time: Option<SimTime>,
    /// Simulated GCUPS — the paper-comparable number.
    pub gcups_sim: Option<f64>,
    /// Per-device details, in chain order. After a recovery these describe
    /// the final (surviving) chain and the cells each survivor computed in
    /// the final attempt.
    pub devices: Vec<DeviceReport>,
    /// Block-pruning accounting; `None` unless the run executed with
    /// pruning enabled.
    pub pruning: Option<PruningReport>,
    /// Fault-recovery accounting; `None` unless the run was executed with
    /// a recovery policy.
    pub recovery: Option<RecoveryReport>,
    /// Checkpoint-boundary rebalance accounting; `None` unless the run was
    /// executed with rebalancing enabled.
    pub rebalance: Option<RebalanceReport>,
    /// Which DP engine the run was dispatched to: the requested
    /// [`KernelDispatch`](megasw_sw::KernelDispatch) plus the engine that
    /// actually executed tiles (threaded backend) or was modeled (DES
    /// backend).
    pub kernel: KernelSelection,
    /// SIMD→scalar rescue re-runs the run's tiles triggered (0 on the
    /// scalar engine and for simulated runs).
    pub simd_rescues: u64,
}

impl RunReport {
    /// GCUPS from a cell count and duration (0 for zero durations).
    pub fn gcups(cells: u128, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            cells as f64 / seconds / 1e9
        }
    }

    /// Pipeline efficiency versus an aggregate peak: `gcups_sim / peak`.
    pub fn sim_efficiency(&self, aggregate_peak_gcups: f64) -> Option<f64> {
        self.gcups_sim.map(|g| g / aggregate_peak_gcups)
    }

    /// Total bytes moved between devices.
    pub fn total_bytes_transferred(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_sent).sum()
    }

    /// Build the per-run metrics registry: GCUPS, transfer and ring
    /// counters, occupancy and utilization histograms, and the summed
    /// stall accounting.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.describe("cells.total", "Total DP cells in the comparison matrix");
        m.describe(
            "kernel.simd_rescues",
            "Tiles re-run on the scalar kernel after a SIMD saturation rescue",
        );
        m.describe(
            "stall.startup_ns",
            "Idle nanoseconds before each device's first kernel (pipeline fill)",
        );
        m.describe(
            "stall.input_ns",
            "Idle nanoseconds between kernels waiting on the left neighbour",
        );
        m.describe(
            "stall.drain_ns",
            "Idle nanoseconds after each device's last kernel (pipeline drain)",
        );
        m.incr(
            "cells.total",
            u64::try_from(self.total_cells).unwrap_or(u64::MAX),
        );
        m.incr("bytes.transferred", self.total_bytes_transferred());
        m.incr("kernel.simd_rescues", self.simd_rescues);
        if let Some(g) = self.gcups_wall {
            m.observe("gcups.wall", g);
        }
        if let Some(g) = self.gcups_sim {
            m.observe("gcups.sim", g);
        }
        if let Some(pr) = &self.pruning {
            m.incr("pruning.tiles_pruned", pr.tiles_pruned);
            m.incr("pruning.tiles_total", pr.tiles_total);
            m.incr(
                "pruning.cells_skipped",
                u64::try_from(pr.cells_skipped).unwrap_or(u64::MAX),
            );
            m.incr(
                "pruning.watermark_lag",
                u64::try_from(pr.watermark_lag.max(0)).unwrap_or(u64::MAX),
            );
            m.observe("pruning.pruned_fraction", pr.pruned_fraction());
        }
        if let Some(rec) = &self.recovery {
            m.incr("recoveries_total", rec.recoveries);
            m.incr(
                "rewound_cells",
                u64::try_from(rec.rewound_cells).unwrap_or(u64::MAX),
            );
            m.incr("checkpoints_taken", rec.checkpoints_taken);
        }
        if let Some(rb) = &self.rebalance {
            m.describe(
                "rebalance.migrations_total",
                "Applied slab migrations at checkpoint boundaries",
            );
            m.describe(
                "rebalance.moved_columns",
                "Matrix columns moved between devices by rebalance migrations",
            );
            m.describe(
                "rebalance.evaluations",
                "Segment boundaries where a re-split was evaluated",
            );
            m.incr("rebalance.migrations_total", rb.migrations);
            m.incr("rebalance.moved_columns", rb.moved_columns);
            m.incr("rebalance.evaluations", rb.evaluations);
        }
        for d in &self.devices {
            m.observe(
                "device.cells_fraction",
                d.cells as f64 / self.total_cells.max(1) as f64,
            );
            if let Some(u) = d.sim_utilization {
                m.observe("device.utilization", u);
            }
            if let Some(rs) = &d.ring_out {
                m.incr("ring.pushed", rs.pushed);
                m.incr("ring.popped", rs.popped);
                m.incr("ring.producer_blocks", rs.producer_blocks);
                m.incr("ring.consumer_blocks", rs.consumer_blocks);
                m.incr("ring.producer_wait_ns", rs.producer_wait.as_nanos() as u64);
                m.incr("ring.consumer_wait_ns", rs.consumer_wait.as_nanos() as u64);
                m.observe("ring.max_occupancy", rs.max_occupancy as f64);
            }
            if let Some(bd) = &d.stall {
                m.incr("stall.startup_ns", bd.startup.as_nanos());
                m.incr("stall.input_ns", bd.input_stalls.as_nanos());
                m.incr("stall.drain_ns", bd.drain.as_nanos());
            }
            if let Some(attr) = &d.attribution {
                for (phase, ns) in attr.phases() {
                    // Per-device counters plus the run-wide aggregate,
                    // under a shared `attr.` prefix so a dashboard can
                    // stack them.
                    m.incr(&format!("attr.d{}.{phase}_ns", d.device), ns);
                    m.incr(&format!("attr.{phase}_ns"), ns);
                }
                m.observe("attr.stall_fraction", attr.stall_fraction());
            }
        }
        if self.devices.iter().any(|d| d.attribution.is_some()) {
            m.describe(
                "attr.compute_ns",
                "Productive kernel nanoseconds across devices (full tiles, \
                 rescue and prune-skip carved out)",
            );
            m.describe(
                "attr.wait_input_ns",
                "Nanoseconds blocked popping border columns from the predecessor ring",
            );
            m.describe(
                "attr.wait_output_ns",
                "Nanoseconds blocked pushing border columns to the successor ring",
            );
            m.describe(
                "attr.checkpoint_ns",
                "Nanoseconds depositing checkpoint waves",
            );
            m.describe(
                "attr.prune_skip_ns",
                "Nanoseconds in the prune-skip fast path",
            );
            m.describe(
                "attr.simd_rescue_ns",
                "Nanoseconds re-running tiles on the scalar kernel after SIMD rescues",
            );
            m.describe(
                "attr.other_ns",
                "Unattributed nanoseconds (startup, drain, row bookkeeping)",
            );
        }
        m
    }

    /// [`RunReport::metrics`] plus one `span.<kind>.duration_ns` histogram
    /// per span kind observed by a recorder — this is where the percentile
    /// story earns its keep: p99 kernel duration and p99 ring-pop wait are
    /// the tail-latency numbers a min/max/mean summary hides.
    pub fn metrics_with_spans(&self, spans: &[ObsSpan]) -> MetricsRegistry {
        let mut m = self.metrics();
        for span in spans {
            m.observe(
                &format!("span.{}.duration_ns", span.kind.name()),
                span.end_ns.saturating_sub(span.start_ns) as f64,
            );
        }
        m
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "best score {} at ({}, {}) over {} cells [kernel {}]",
            self.best.score, self.best.i, self.best.j, self.total_cells, self.kernel
        )?;
        if let (Some(t), Some(g)) = (self.sim_time, self.gcups_sim) {
            writeln!(f, "  simulated: {t}  ({g:.2} GCUPS)")?;
        }
        if let (Some(t), Some(g)) = (self.wall_time, self.gcups_wall) {
            writeln!(f, "  wall:      {t:.3?}  ({g:.3} GCUPS on host CPU)")?;
        }
        if let Some(pr) = &self.pruning {
            writeln!(
                f,
                "  pruning:   {} — {}/{} tiles pruned ({:.1}%), {} cells skipped, watermark lag {}",
                pr.mode,
                pr.tiles_pruned,
                pr.tiles_total,
                100.0 * pr.pruned_fraction(),
                pr.cells_skipped,
                pr.watermark_lag
            )?;
        }
        if let Some(rec) = &self.recovery {
            writeln!(
                f,
                "  recovery:  {} recoveries, {} cells rewound, {} checkpoints (failed devices {:?}, resumed from rows {:?})",
                rec.recoveries,
                rec.rewound_cells,
                rec.checkpoints_taken,
                rec.failed_devices,
                rec.resumed_from_rows
            )?;
        }
        if let Some(rb) = &self.rebalance {
            writeln!(
                f,
                "  rebalance: {} migrations, {} columns moved, {} evaluations (applied at rows {:?})",
                rb.migrations, rb.moved_columns, rb.evaluations, rb.applied_at_rows
            )?;
        }
        for d in &self.devices {
            write!(
                f,
                "  gpu{} {:<22} cols {:>9}..{:<9} ({:>5.1}%)",
                d.device,
                d.name,
                d.slab_j0,
                d.slab_j0 + d.slab_width,
                100.0 * d.cells as f64 / self.total_cells.max(1) as f64
            )?;
            if let Some(u) = d.sim_utilization {
                write!(f, "  util {:>5.1}%", u * 100.0)?;
            }
            if let Some(rs) = &d.ring_out {
                write!(
                    f,
                    "  ring: {} sent, max occ {}, blocked {}p/{}c",
                    rs.pushed, rs.max_occupancy, rs.producer_blocks, rs.consumer_blocks
                )?;
            }
            if let Some(bd) = &d.stall {
                write!(f, "  stall: {bd}")?;
            }
            writeln!(f)?;
            if let Some(attr) = &d.attribution {
                writeln!(f, "       attribution: {attr}")?;
            }
        }
        if self.simd_rescues > 0 {
            writeln!(f, "  simd rescues: {}", self.simd_rescues)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        assert_eq!(RunReport::gcups(2_000_000_000, 2.0), 1.0);
        assert_eq!(RunReport::gcups(1_000, 0.0), 0.0);
    }

    #[test]
    fn stall_envelope_identity() {
        // total 100, kernels within [10, 80], busy 50 → idle = 50.
        let bd = StallBreakdown::from_envelope(100, 10, 80, 50);
        assert_eq!(bd.startup, SimTime(10));
        assert_eq!(bd.input_stalls, SimTime(20));
        assert_eq!(bd.drain, SimTime(20));
        assert_eq!(bd.total(), SimTime(100 - 50));
    }

    #[test]
    fn stall_envelope_saturates_instead_of_underflowing() {
        let bd = StallBreakdown::from_envelope(50, 10, 60, 100);
        assert_eq!(bd.input_stalls, SimTime::ZERO);
        assert_eq!(bd.drain, SimTime::ZERO);
    }

    fn report() -> RunReport {
        RunReport {
            best: BestCell::new(42, 7, 9),
            total_cells: 1_000_000,
            wall_time: Some(Duration::from_millis(10)),
            gcups_wall: Some(0.1),
            sim_time: Some(SimTime::from_millis(2)),
            gcups_sim: Some(0.5),
            devices: vec![DeviceReport {
                device: 0,
                name: "TestBoard".into(),
                slab_j0: 1,
                slab_width: 1_000,
                cells: 1_000_000,
                bytes_sent: 512,
                ring_out: Some(RingStats {
                    pushed: 3,
                    popped: 3,
                    max_occupancy: 2,
                    producer_blocks: 1,
                    consumer_blocks: 0,
                    producer_wait: Duration::from_micros(5),
                    consumer_wait: Duration::ZERO,
                }),
                wall_busy: Some(Duration::from_millis(7)),
                sim_busy: Some(SimTime::from_millis(1)),
                sim_utilization: Some(0.5),
                stall: Some(StallBreakdown::from_envelope(
                    10_000_000, 1_000_000, 8_000_000, 5_000_000,
                )),
                attribution: Some(StallAttribution::from_measured(
                    10_000_000, 5_000_000, 2_000_000, 500_000, 200_000, 100_000, 50_000,
                )),
            }],
            pruning: Some(PruningReport {
                mode: PruneMode::Distributed,
                tiles_pruned: 25,
                tiles_total: 100,
                cells_skipped: 250_000,
                watermark_lag: 3,
            }),
            recovery: Some(RecoveryReport {
                recoveries: 1,
                rewound_cells: 12_345,
                checkpoints_taken: 4,
                failed_devices: vec![1],
                resumed_from_rows: vec![8],
            }),
            rebalance: Some(RebalanceReport {
                migrations: 2,
                moved_columns: 96,
                evaluations: 5,
                applied_at_rows: vec![16, 48],
            }),
            kernel: KernelSelection::default(),
            simd_rescues: 2,
        }
    }

    #[test]
    fn attribution_phases_sum_to_the_makespan() {
        let attr = StallAttribution::from_measured(
            10_000_000, 5_000_000, 2_000_000, 500_000, 200_000, 100_000, 50_000,
        );
        // prune_skip + simd_rescue are carved out of busy.
        assert_eq!(attr.compute_ns, 5_000_000 - 100_000 - 50_000);
        assert_eq!(attr.total_ns(), 10_000_000);
        let expected_stall = 10_000_000 - attr.compute_ns;
        assert!(
            (attr.stall_fraction() - expected_stall as f64 / 10_000_000.0).abs() < 1e-12,
            "{}",
            attr.stall_fraction()
        );
        // Over-measured phases saturate instead of underflowing; the sum
        // then equals the measured time, never less than the phases.
        let noisy = StallAttribution::from_measured(100, 300, 50, 0, 0, 0, 0);
        assert_eq!(noisy.other_ns, 0);
        assert_eq!(noisy.total_ns(), 350);
    }

    #[test]
    fn attribution_metrics_have_per_device_and_aggregate_series() {
        let m = report().metrics();
        let attr = report().devices[0].attribution.unwrap();
        assert_eq!(m.counter("attr.d0.compute_ns"), Some(attr.compute_ns));
        assert_eq!(m.counter("attr.d0.wait_input_ns"), Some(2_000_000));
        assert_eq!(m.counter("attr.wait_input_ns"), Some(2_000_000));
        assert_eq!(m.counter("attr.simd_rescue_ns"), Some(50_000));
        assert_eq!(m.counter("attr.other_ns"), Some(attr.other_ns));
        assert_eq!(m.counter("kernel.simd_rescues"), Some(2));
        assert!(m.help("attr.compute_ns").is_some());
        assert_eq!(m.histogram("attr.stall_fraction").unwrap().count, 1);
        // The aggregate phase counters sum to the summed makespans.
        let agg: u64 = attr
            .phases()
            .iter()
            .map(|(p, _)| m.counter(&format!("attr.{p}_ns")).unwrap())
            .sum();
        assert_eq!(agg, attr.total_ns());
        // Attribution-free reports emit no attr series.
        let mut bare = report();
        bare.devices[0].attribution = None;
        assert_eq!(bare.metrics().counter("attr.compute_ns"), None);
    }

    #[test]
    fn efficiency_and_totals() {
        let r = report();
        assert!((r.sim_efficiency(1.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(r.total_bytes_transferred(), 512);
    }

    #[test]
    fn display_contains_key_facts() {
        let text = report().to_string();
        assert!(text.contains("best score 42"));
        assert!(text.contains("[kernel auto("));
        assert!(text.contains("GCUPS"));
        assert!(text.contains("TestBoard"));
        assert!(text.contains("stall:"));
        assert!(text.contains("attribution: compute"));
        assert!(text.contains("simd rescues: 2"));
        assert!(text.contains("recovery:  1 recoveries"));
        assert!(text.contains("12345 cells rewound"));
        assert!(text.contains("pruning:   distributed — 25/100 tiles pruned (25.0%)"));
        // A pruning-free run prints no pruning line at all.
        let mut bare = report();
        bare.pruning = None;
        assert!(!bare.to_string().contains("pruning:"));
    }

    #[test]
    fn rebalance_metrics_and_display() {
        let r = report();
        let m = r.metrics();
        assert_eq!(m.counter("rebalance.migrations_total"), Some(2));
        assert_eq!(m.counter("rebalance.moved_columns"), Some(96));
        assert_eq!(m.counter("rebalance.evaluations"), Some(5));
        assert!(m.help("rebalance.migrations_total").is_some());
        let text = r.to_string();
        assert!(text.contains("rebalance: 2 migrations, 96 columns moved, 5 evaluations"));
        assert!(text.contains("applied at rows [16, 48]"));
        // Rebalance off → no counters, no display line.
        let mut bare = report();
        bare.rebalance = None;
        assert_eq!(bare.metrics().counter("rebalance.migrations_total"), None);
        assert!(!bare.to_string().contains("rebalance:"));
    }

    #[test]
    fn pruning_metrics_and_fraction() {
        let r = report();
        let pr = r.pruning.as_ref().unwrap();
        assert!((pr.pruned_fraction() - 0.25).abs() < 1e-12);
        let m = r.metrics();
        assert_eq!(m.counter("pruning.tiles_pruned"), Some(25));
        assert_eq!(m.counter("pruning.tiles_total"), Some(100));
        assert_eq!(m.counter("pruning.cells_skipped"), Some(250_000));
        assert_eq!(m.counter("pruning.watermark_lag"), Some(3));
        assert_eq!(m.histogram("pruning.pruned_fraction").unwrap().count, 1);
        // Pruning off → no pruning metrics.
        let mut bare = report();
        bare.pruning = None;
        assert_eq!(bare.metrics().counter("pruning.tiles_pruned"), None);
        // Zero tiles_total does not divide by zero.
        let zero = PruningReport {
            mode: PruneMode::Local,
            tiles_pruned: 0,
            tiles_total: 0,
            cells_skipped: 0,
            watermark_lag: 0,
        };
        assert_eq!(zero.pruned_fraction(), 0.0);
    }

    #[test]
    fn metrics_with_spans_adds_duration_histograms() {
        use megasw_obs::ObsKind;
        let spans: Vec<ObsSpan> = (0..10)
            .map(|i| ObsSpan {
                kind: if i % 2 == 0 {
                    ObsKind::Kernel
                } else {
                    ObsKind::RingPopWait
                },
                device: Some(0),
                block_row: Some(i as u32),
                start_ns: i * 100,
                end_ns: i * 100 + 50 + i,
            })
            .collect();
        let m = report().metrics_with_spans(&spans);
        let k = m.histogram("span.kernel.duration_ns").unwrap();
        assert_eq!(k.count, 5);
        assert!(k.p99() >= k.p50());
        let w = m.histogram("span.ring_pop_wait.duration_ns").unwrap();
        assert_eq!(w.count, 5);
        // The base metrics are still present.
        assert_eq!(m.counter("bytes.transferred"), Some(512));
    }

    #[test]
    fn metrics_cover_gcups_rings_and_stalls() {
        let m = report().metrics();
        assert_eq!(m.counter("bytes.transferred"), Some(512));
        assert_eq!(m.counter("recoveries_total"), Some(1));
        assert_eq!(m.counter("rewound_cells"), Some(12_345));
        assert_eq!(m.counter("checkpoints_taken"), Some(4));
        // A policy-free run emits no recovery counters at all.
        let mut bare = report();
        bare.recovery = None;
        assert_eq!(bare.metrics().counter("recoveries_total"), None);
        assert_eq!(m.counter("ring.pushed"), Some(3));
        assert_eq!(m.counter("ring.producer_wait_ns"), Some(5_000));
        assert_eq!(m.counter("stall.startup_ns"), Some(1_000_000));
        assert_eq!(m.histogram("gcups.wall").unwrap().count, 1);
        assert_eq!(m.histogram("ring.max_occupancy").unwrap().max, 2.0);
        assert_eq!(m.histogram("device.utilization").unwrap().count, 1);
    }
}
