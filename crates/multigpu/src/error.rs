//! The workspace-wide error type.
//!
//! Public entry points ([`crate::pipeline::PipelineRun`], the CLI) return
//! [`MegaswError`], one enum folding every failure the stack can produce:
//! pipeline faults, ring failures, and I/O errors from trace export. Inner
//! errors are preserved and reachable through
//! [`std::error::Error::source`], so callers can both `?`-propagate with a
//! readable chain and downcast for programmatic handling.
//!
//! The internal engine keeps returning the narrow
//! [`crate::pipeline::PipelineError`]; the deprecated wrappers expose it
//! unchanged so existing match arms keep compiling.

use crate::circbuf::RingError;
use crate::pipeline::PipelineError;
use std::fmt;

/// Any failure from a megasw run.
#[derive(Debug)]
pub enum MegaswError {
    /// The threaded pipeline failed (bad config, device fault, poisoned
    /// ring).
    Pipeline(PipelineError),
    /// A circular-buffer operation failed outside the pipeline's own
    /// handling.
    Ring(RingError),
    /// Writing a trace or metrics artifact failed.
    Io(std::io::Error),
}

impl fmt::Display for MegaswError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MegaswError::Pipeline(e) => write!(f, "pipeline failed: {e}"),
            MegaswError::Ring(e) => write!(f, "border ring failed: {e}"),
            MegaswError::Io(e) => write!(f, "observability I/O failed: {e}"),
        }
    }
}

impl std::error::Error for MegaswError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MegaswError::Pipeline(e) => Some(e),
            MegaswError::Ring(e) => Some(e),
            MegaswError::Io(e) => Some(e),
        }
    }
}

impl From<PipelineError> for MegaswError {
    fn from(e: PipelineError) -> Self {
        MegaswError::Pipeline(e)
    }
}

impl From<RingError> for MegaswError {
    fn from(e: RingError) -> Self {
        MegaswError::Ring(e)
    }
}

impl From<std::io::Error> for MegaswError {
    fn from(e: std::io::Error) -> Self {
        MegaswError::Io(e)
    }
}

impl MegaswError {
    /// The underlying [`PipelineError`], if that is what this is.
    pub fn as_pipeline(&self) -> Option<&PipelineError> {
        match self {
            MegaswError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_prefixes_and_chains() {
        let err = MegaswError::from(PipelineError::DeviceFault {
            device: 1,
            block_row: 5,
        });
        assert!(err.to_string().contains("pipeline failed"));
        assert!(err.to_string().contains("device 1"));
        let src = err.source().expect("source preserved");
        assert!(src.to_string().contains("block-row 5"));
        assert!(src.downcast_ref::<PipelineError>().is_some());
    }

    #[test]
    fn ring_and_io_variants_chain_too() {
        let ring = MegaswError::from(RingError::Poisoned);
        assert!(ring.source().unwrap().downcast_ref::<RingError>().is_some());
        let io = MegaswError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("I/O"));
        assert!(io.source().is_some());
    }

    #[test]
    fn as_pipeline_accessor() {
        let err = MegaswError::from(PipelineError::RingPoisoned { device: 2 });
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::RingPoisoned { device: 2 })
        ));
        assert!(MegaswError::from(RingError::Closed).as_pipeline().is_none());
    }
}
