//! Typed spans and the run-wide recorder.
//!
//! A span is one timed interval of work or waiting, attributed to a device
//! lane and (where meaningful) a block-row. Timestamps are nanoseconds since
//! the run epoch; the *meaning* of a nanosecond is the backend's business —
//! wall-clock for the threaded pipeline, simulated time for the DES — and
//! everything downstream (metrics, Chrome export, tests) is agnostic.

use std::str::FromStr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsKind {
    /// One block-row × column-tile kernel launch (the DP compute itself).
    Kernel,
    /// Producer side of the border ring: the push, including any time
    /// blocked on a full ring.
    RingPush,
    /// Consumer side of the border ring: time spent *waiting* for the left
    /// neighbour's border segment.
    RingPopWait,
    /// Border column transfer between devices (DES models it as a bus
    /// transfer; the threaded backend folds it into push/pop).
    BorderXfer,
    /// Host-side traceback / alignment reconstruction (stage 3).
    Traceback,
    /// Coordinator-side recovery work: blacklisting a failed device,
    /// repartitioning its columns and rewinding to a checkpoint wave.
    Recovery,
    /// Coordinator-side rebalance work at a checkpoint boundary: sampling
    /// per-device throughput, predicting the re-split and handing off the
    /// border wave.
    Rebalance,
}

impl ObsKind {
    /// Short lowercase name, used as the Chrome trace category.
    pub fn name(self) -> &'static str {
        match self {
            ObsKind::Kernel => "kernel",
            ObsKind::RingPush => "ring_push",
            ObsKind::RingPopWait => "ring_pop_wait",
            ObsKind::BorderXfer => "border_xfer",
            ObsKind::Traceback => "traceback",
            ObsKind::Recovery => "recovery",
            ObsKind::Rebalance => "rebalance",
        }
    }
}

/// One timed interval, attributed to a device lane and block-row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsSpan {
    pub kind: ObsKind,
    /// Device lane, or `None` for host-side work (traceback).
    pub device: Option<u32>,
    /// Block-row the work belongs to, when meaningful.
    pub block_row: Option<u32>,
    /// Nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Nanoseconds since the run epoch; `end_ns >= start_ns`.
    pub end_ns: u64,
}

impl ObsSpan {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// How much the recorder keeps.
///
/// Ordered: each level records a superset of the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// Record nothing; every `record` call is a cheap no-op.
    Off,
    /// Kernel and traceback spans only — the compute picture.
    Kernels,
    /// Everything, including ring waits and border transfers — the full
    /// stall picture.
    #[default]
    Full,
}

impl ObsLevel {
    /// Does this level keep spans of `kind`?
    pub fn keeps(self, kind: ObsKind) -> bool {
        match self {
            ObsLevel::Off => false,
            ObsLevel::Kernels => matches!(
                kind,
                ObsKind::Kernel | ObsKind::Traceback | ObsKind::Recovery | ObsKind::Rebalance
            ),
            ObsLevel::Full => true,
        }
    }
}

impl FromStr for ObsLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ObsLevel::Off),
            "kernels" => Ok(ObsLevel::Kernels),
            "full" => Ok(ObsLevel::Full),
            other => Err(format!(
                "unknown obs level `{other}` (expected off|kernels|full)"
            )),
        }
    }
}

/// Thread-safe span collector shared by every worker of a run.
///
/// Cloning shares the underlying buffer. When the level filters a kind out,
/// `record` returns without locking, so a disabled recorder costs one branch
/// per call site.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: ObsLevel,
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Mutex<Vec<ObsSpan>>,
}

impl Recorder {
    /// A recorder whose epoch is "now"; wall-clock backends measure against
    /// it via [`Recorder::now_ns`]. Simulated-time backends ignore the epoch
    /// and record explicit timestamps.
    pub fn new(level: ObsLevel) -> Recorder {
        Recorder {
            level,
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recorder that keeps nothing.
    pub fn disabled() -> Recorder {
        Recorder::new(ObsLevel::Off)
    }

    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Is any span kind being kept at all?
    pub fn is_enabled(&self) -> bool {
        self.level != ObsLevel::Off
    }

    /// Should a call site bother timing spans of `kind`?
    pub fn keeps(&self, kind: ObsKind) -> bool {
        self.level.keeps(kind)
    }

    /// Nanoseconds of wall-clock time since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Record a span (no-op if the level filters its kind).
    pub fn record(&self, span: ObsSpan) {
        if !self.level.keeps(span.kind) {
            return;
        }
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(span);
    }

    /// Record a wall-clock span that started at `start_ns` (from
    /// [`Recorder::now_ns`]) and ends now.
    pub fn record_since(
        &self,
        kind: ObsKind,
        device: Option<u32>,
        block_row: Option<u32>,
        start_ns: u64,
    ) {
        if !self.level.keeps(kind) {
            return;
        }
        let end_ns = self.now_ns();
        self.record(ObsSpan {
            kind,
            device,
            block_row,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Snapshot of all recorded spans, sorted by (lane, start time) so
    /// per-lane timestamps are monotonic.
    pub fn spans(&self) -> Vec<ObsSpan> {
        let mut spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        spans.sort_by_key(|s| (s.device.map_or(u64::MAX, u64::from), s.start_ns, s.end_ns));
        spans
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_filtering() {
        assert!(ObsLevel::Off < ObsLevel::Kernels);
        assert!(ObsLevel::Kernels < ObsLevel::Full);
        assert!(!ObsLevel::Off.keeps(ObsKind::Kernel));
        assert!(ObsLevel::Kernels.keeps(ObsKind::Kernel));
        assert!(ObsLevel::Kernels.keeps(ObsKind::Traceback));
        assert!(!ObsLevel::Kernels.keeps(ObsKind::RingPopWait));
        assert!(ObsLevel::Full.keeps(ObsKind::RingPopWait));
    }

    #[test]
    fn level_parses() {
        assert_eq!("off".parse::<ObsLevel>().unwrap(), ObsLevel::Off);
        assert_eq!("kernels".parse::<ObsLevel>().unwrap(), ObsLevel::Kernels);
        assert_eq!("full".parse::<ObsLevel>().unwrap(), ObsLevel::Full);
        assert!("verbose".parse::<ObsLevel>().is_err());
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let rec = Recorder::disabled();
        rec.record(ObsSpan {
            kind: ObsKind::Kernel,
            device: Some(0),
            block_row: Some(0),
            start_ns: 0,
            end_ns: 10,
        });
        assert!(rec.is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn kernels_level_drops_ring_spans() {
        let rec = Recorder::new(ObsLevel::Kernels);
        for kind in [ObsKind::Kernel, ObsKind::RingPush, ObsKind::Traceback] {
            rec.record(ObsSpan {
                kind,
                device: Some(0),
                block_row: None,
                start_ns: 0,
                end_ns: 1,
            });
        }
        let kinds: Vec<ObsKind> = rec.spans().iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![ObsKind::Kernel, ObsKind::Traceback]);
    }

    #[test]
    fn spans_sorted_per_lane() {
        let rec = Recorder::new(ObsLevel::Full);
        let cases: [(Option<u32>, u64); 4] =
            [(Some(1), 50), (Some(0), 30), (None, 5), (Some(0), 10)];
        for (dev, start) in cases {
            rec.record(ObsSpan {
                kind: ObsKind::Kernel,
                device: dev,
                block_row: None,
                start_ns: start,
                end_ns: start + 1,
            });
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 4);
        // Device lanes first (0 then 1), host lane last.
        assert_eq!(spans[0].device, Some(0));
        assert_eq!(spans[0].start_ns, 10);
        assert_eq!(spans[1].device, Some(0));
        assert_eq!(spans[1].start_ns, 30);
        assert_eq!(spans[2].device, Some(1));
        assert_eq!(spans[3].device, None);
    }

    #[test]
    fn record_since_measures_wall_time() {
        let rec = Recorder::new(ObsLevel::Full);
        let t0 = rec.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.record_since(ObsKind::Kernel, Some(0), Some(3), t0);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].duration_ns() >= 1_000_000);
        assert_eq!(spans[0].block_row, Some(3));
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = Recorder::new(ObsLevel::Full);
        let clone = rec.clone();
        clone.record(ObsSpan {
            kind: ObsKind::Kernel,
            device: Some(0),
            block_row: None,
            start_ns: 0,
            end_ns: 1,
        });
        assert_eq!(rec.len(), 1);
    }
}
