//! Score and best-cell types.

/// Dynamic-programming score. `i32` comfortably covers chromosome-scale
/// local alignments with the CUDAlign scheme (scores are bounded by
/// `min(m, n) · match_score`, well under 2³¹ for any real chromosome).
pub type Score = i32;

/// "Minus infinity" for E/F lanes, chosen so that adding gap penalties can
/// never underflow `i32`.
pub const NEG_INF: Score = i32::MIN / 4;

/// The best cell seen so far: its score and 1-based matrix coordinates.
///
/// `BestCell` has a total order used to merge partial results from blocks,
/// slabs and devices: higher score wins; ties break to the smaller `i`, then
/// the smaller `j`. Because the order is total, the merged result is
/// independent of the order in which partitions report — a property the
/// tests rely on to prove multi-GPU runs equal the sequential reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BestCell {
    pub score: Score,
    /// 1-based row (position in sequence `a`) where the alignment ends.
    pub i: usize,
    /// 1-based column (position in sequence `b`) where the alignment ends.
    pub j: usize,
}

impl BestCell {
    /// The "no alignment" element: score 0 at the origin. It is the identity
    /// of [`BestCell::merge`] for any legal SW result (scores are ≥ 0).
    pub const ZERO: BestCell = BestCell {
        score: 0,
        i: 0,
        j: 0,
    };

    /// Create a best cell.
    pub fn new(score: Score, i: usize, j: usize) -> Self {
        BestCell { score, i, j }
    }

    /// True if `self` beats `other` under the deterministic order.
    #[inline]
    pub fn beats(&self, other: &BestCell) -> bool {
        match self.score.cmp(&other.score) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.i.cmp(&other.i) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.j < other.j,
            },
        }
    }

    /// Merge two partial results, keeping the winner.
    #[inline]
    pub fn merge(self, other: BestCell) -> BestCell {
        if other.beats(&self) {
            other
        } else {
            self
        }
    }

    /// Consider a candidate cell in place.
    #[inline(always)]
    pub fn consider(&mut self, score: Score, i: usize, j: usize) {
        let cand = BestCell { score, i, j };
        if cand.beats(self) {
            *self = cand;
        }
    }
}

impl Default for BestCell {
    fn default() -> Self {
        BestCell::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inf_is_add_safe() {
        // Adding any realistic penalty must not wrap.
        let x = NEG_INF + (-1_000_000_000);
        assert!(x < 0);
        let y = NEG_INF + NEG_INF;
        assert!(y < 0);
    }

    #[test]
    fn higher_score_wins() {
        let a = BestCell::new(10, 5, 5);
        let b = BestCell::new(11, 9, 9);
        assert!(b.beats(&a));
        assert_eq!(a.merge(b), b);
        assert_eq!(b.merge(a), b);
    }

    #[test]
    fn ties_break_to_smaller_i_then_j() {
        let a = BestCell::new(10, 3, 9);
        let b = BestCell::new(10, 4, 1);
        assert!(a.beats(&b));
        let c = BestCell::new(10, 3, 2);
        assert!(c.beats(&a));
        assert_eq!(a.merge(b).merge(c), c);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let cells = [
            BestCell::new(5, 1, 1),
            BestCell::new(5, 1, 2),
            BestCell::new(7, 9, 9),
            BestCell::new(7, 2, 30),
            BestCell::ZERO,
        ];
        for &x in &cells {
            for &y in &cells {
                assert_eq!(x.merge(y), y.merge(x));
                for &z in &cells {
                    assert_eq!(x.merge(y).merge(z), x.merge(y.merge(z)));
                }
            }
        }
    }

    #[test]
    fn zero_is_identity_for_non_negative_scores() {
        let a = BestCell::new(3, 2, 2);
        assert_eq!(a.merge(BestCell::ZERO), a);
        assert_eq!(BestCell::ZERO.merge(a), a);
    }

    #[test]
    fn consider_updates_in_place() {
        let mut best = BestCell::ZERO;
        best.consider(4, 2, 2);
        assert_eq!(best, BestCell::new(4, 2, 2));
        best.consider(4, 1, 9); // same score, smaller i → wins
        assert_eq!(best, BestCell::new(4, 1, 9));
        best.consider(3, 0, 0); // lower score → ignored
        assert_eq!(best, BestCell::new(4, 1, 9));
    }
}
