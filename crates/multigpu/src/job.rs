//! The unified job abstraction: one spec type, one report type, every
//! execution surface.
//!
//! Before this module, the workspace had two parallel result surfaces —
//! [`PipelineRun`](crate::pipeline::PipelineRun) → `RunReport` for one
//! pair and [`BatchRun`](crate::batch::BatchRun) → `BatchReport` for many
//! — and each caller (CLI subcommand, bench harness, test) re-derived
//! scores and latency from whichever shape it happened to hold. The
//! resident alignment service needs to queue, execute, cancel and report
//! *either* workload through one pipe, so this module introduces:
//!
//! * [`JobSpec`] — what to run: a single pair or a batch, each carrying
//!   its own config/fault overrides. A future `SeedFilterExtend` variant
//!   (seed-and-extend screening, ROADMAP item 3) is reserved here; it
//!   will slot in without touching the queue or the HTTP surface.
//! * [`JobOutcome`] — how one pair fared, regardless of route. This is
//!   the former `batch::PairOutcome`, renamed and promoted (a deprecated
//!   alias remains in `batch` for one release).
//! * [`JobReport`] — the common aggregate: outcomes, total cells, wall
//!   time, throughput, recovery accounting and latency percentiles. A
//!   single-pair report is simply a one-outcome aggregate, so
//!   `GET /jobs/:id`, `megasw submit` and the chaos harness can treat
//!   every finished job identically.
//!
//! [`JobSpec::execute`] is the one evaluator: it routes to the existing
//! engines (which keep their bit-exactness and recovery guarantees — a
//! job's scores are bit-identical to solo runs) and adapts the result.
//! Device blacklists live inside the engines, so they are scoped to one
//! job: a device lost during job N is offered again to job N+1, and a
//! genuinely dead device simply fails fast again and recovery re-routes
//! around it.

use crate::batch::{percentile, BatchConfig, BatchFault, BatchJob, BatchReport, BatchRun};
use crate::checkpoint::RecoveryPolicy;
use crate::config::RunConfig;
use crate::error::MegaswError;
use crate::pipeline::{FaultSchedule, PipelineRun};
use crate::stats::RunReport;
use megasw_gpusim::Platform;
use megasw_obs::LiveTelemetry;
use megasw_sw::BestCell;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which workload a job carries. Serialized names (`single-pair`,
/// `batch`) are the `kind` strings of the service's JSON protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    SinglePair,
    Batch,
}

impl JobKind {
    pub fn name(self) -> &'static str {
        match self {
            JobKind::SinglePair => "single-pair",
            JobKind::Batch => "batch",
        }
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What to run: the one submission type every surface speaks — CLI
/// subcommands build it from flags, the HTTP endpoint decodes it from a
/// JSON body, tests construct it directly.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// One pair through the fine-grain slab pipeline (the paper's
    /// workload).
    SinglePair {
        /// Caller-facing identifier, echoed in the report.
        id: String,
        /// Coded query sequence (see `megasw_seq::DnaSeq::codes`).
        a: Vec<u8>,
        /// Coded subject sequence.
        b: Vec<u8>,
        /// Per-job config override; `None` uses the executor's base.
        config: Option<RunConfig>,
        /// Deterministic fault injection (chaos tests).
        faults: FaultSchedule,
    },
    /// Many pairs through the inter-task batch engine.
    Batch {
        jobs: Vec<BatchJob>,
        /// Per-job batch config override; `None` wraps the executor's
        /// base [`RunConfig`] in a default [`BatchConfig`].
        config: Option<BatchConfig>,
        faults: Vec<BatchFault>,
    },
    // A `SeedFilterExtend` variant is deliberately reserved for the
    // seed-and-extend screening engine (ROADMAP item 3): it will carry a
    // query set plus filter thresholds and reuse this enum unchanged.
}

impl JobSpec {
    /// A one-pair job with no overrides.
    pub fn single(id: impl Into<String>, a: Vec<u8>, b: Vec<u8>) -> JobSpec {
        JobSpec::SinglePair {
            id: id.into(),
            a,
            b,
            config: None,
            faults: FaultSchedule::default(),
        }
    }

    /// A batch job with no overrides.
    pub fn batch(jobs: Vec<BatchJob>) -> JobSpec {
        JobSpec::Batch {
            jobs,
            config: None,
            faults: Vec::new(),
        }
    }

    pub fn kind(&self) -> JobKind {
        match self {
            JobSpec::SinglePair { .. } => JobKind::SinglePair,
            JobSpec::Batch { .. } => JobKind::Batch,
        }
    }

    /// Display name: the pair id, or `batch(N)`.
    pub fn name(&self) -> String {
        match self {
            JobSpec::SinglePair { id, .. } => id.clone(),
            JobSpec::Batch { jobs, .. } => format!("batch({})", jobs.len()),
        }
    }

    /// Total DP cells this job will compute.
    pub fn total_cells(&self) -> u128 {
        match self {
            JobSpec::SinglePair { a, b, .. } => a.len() as u128 * b.len() as u128,
            JobSpec::Batch { jobs, .. } => jobs.iter().map(BatchJob::cells).sum(),
        }
    }

    /// Number of pairs (outcomes) this job will report.
    pub fn pairs(&self) -> usize {
        match self {
            JobSpec::SinglePair { .. } => 1,
            JobSpec::Batch { jobs, .. } => jobs.len(),
        }
    }

    /// Execute on `platform` with the executor-level defaults: `base` for
    /// jobs without a config override, `recovery` for device-loss
    /// survival, optional live telemetry and an optional cooperative
    /// cancellation token (polled at checkpoint boundaries / between
    /// pairs). Scores are bit-identical to solo runs of the same pairs.
    pub fn execute(
        &self,
        platform: &Platform,
        base: &RunConfig,
        recovery: Option<RecoveryPolicy>,
        live: Option<Arc<LiveTelemetry>>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<JobReport, MegaswError> {
        match self {
            JobSpec::SinglePair {
                id,
                a,
                b,
                config,
                faults,
            } => {
                let cfg = config.clone().unwrap_or_else(|| base.clone());
                let mut run = PipelineRun::new(a, b, platform)
                    .config(cfg)
                    .faults(faults.clone());
                if let Some(policy) = recovery {
                    run = run.recover(policy);
                }
                if let Some(live) = live {
                    run = run.live(live);
                }
                if let Some(token) = cancel {
                    run = run.cancel(token);
                }
                let t = Instant::now();
                let report = run.run()?;
                Ok(JobReport::from_single(
                    id,
                    a.len(),
                    b.len(),
                    &report,
                    t.elapsed(),
                ))
            }
            JobSpec::Batch {
                jobs,
                config,
                faults,
            } => {
                let cfg = config
                    .clone()
                    .unwrap_or_else(|| BatchConfig::default().with_base(base.clone()));
                let mut run = BatchRun::new(jobs, platform)
                    .config(cfg)
                    .faults(faults.clone());
                if let Some(policy) = recovery {
                    run = run.recover(policy);
                }
                if let Some(live) = live {
                    run = run.live(live);
                }
                if let Some(token) = cancel {
                    run = run.cancel(token);
                }
                let report = run.run()?;
                Ok(JobReport::from(&report))
            }
        }
    }
}

/// How one pair fared, whatever route executed it. For batch jobs this is
/// the per-pair record (formerly `batch::PairOutcome`); a single-pair job
/// reports exactly one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Index into the submitted pair list (0 for single-pair jobs).
    pub pair: usize,
    pub id: String,
    pub m: usize,
    pub n: usize,
    pub cells: u128,
    /// Best cell — bit-identical to a solo
    /// [`PipelineRun`](crate::pipeline::PipelineRun) of this pair.
    pub best: BestCell,
    /// Device that ran the pair whole, or `None` for the full-platform
    /// slab-pipeline route.
    pub device: Option<usize>,
    /// True when the pair routed through the full-platform pipeline.
    pub large: bool,
    pub latency: Duration,
    /// In-run checkpoint recoveries (full-platform routes only; dispatched
    /// small-pair device losses surface as batch-level requeues instead).
    pub recoveries: u64,
}

/// The common aggregate every finished job produces — single-pair and
/// batch collapse into one shape, so every consumer (CLI, HTTP, bench,
/// chaos tests) reads the same fields.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub kind: JobKind,
    /// One outcome per submitted pair, in submission order.
    pub outcomes: Vec<JobOutcome>,
    pub total_cells: u128,
    pub wall_time: Duration,
    pub gcups_wall: f64,
    /// Device losses survived (in-run recoveries + requeues).
    pub recoveries: u64,
    /// Pairs requeued after losing their device (batch route only).
    pub requeued: u64,
    /// Platform indices blacklisted while this job ran. Scoped to the
    /// job: the next job starts with the full platform again.
    pub failed_devices: Vec<usize>,
    pub latency_p50: Duration,
    pub latency_p90: Duration,
    pub latency_p99: Duration,
}

impl JobReport {
    /// Highest score across the job's pairs.
    pub fn best_score(&self) -> i32 {
        self.outcomes
            .iter()
            .map(|o| o.best.score)
            .max()
            .unwrap_or(0)
    }

    /// Adapt a single-pair `RunReport`. The one outcome's latency is the
    /// measured wall time, so all three percentiles collapse onto it.
    pub fn from_single(
        id: &str,
        m: usize,
        n: usize,
        report: &RunReport,
        latency: Duration,
    ) -> JobReport {
        let recovery = report.recovery.as_ref();
        let outcome = JobOutcome {
            pair: 0,
            id: id.to_string(),
            m,
            n,
            cells: report.total_cells,
            best: report.best,
            device: None,
            large: true,
            latency,
            recoveries: recovery.map_or(0, |r| r.recoveries),
        };
        JobReport {
            kind: JobKind::SinglePair,
            total_cells: report.total_cells,
            wall_time: report.wall_time.unwrap_or(latency),
            gcups_wall: report.gcups_wall.unwrap_or(0.0),
            recoveries: recovery.map_or(0, |r| r.recoveries),
            requeued: 0,
            failed_devices: recovery.map_or_else(Vec::new, |r| r.failed_devices.clone()),
            latency_p50: latency,
            latency_p90: latency,
            latency_p99: latency,
            outcomes: vec![outcome],
        }
    }
}

impl From<&BatchReport> for JobReport {
    fn from(report: &BatchReport) -> JobReport {
        JobReport {
            kind: JobKind::Batch,
            outcomes: report.pairs.clone(),
            total_cells: report.total_cells,
            wall_time: report.wall_time,
            gcups_wall: report.gcups_wall,
            recoveries: report.recoveries,
            requeued: report.requeued,
            failed_devices: report.failed_devices.clone(),
            latency_p50: report.latency_p50,
            latency_p90: report.latency_p90,
            latency_p99: report.latency_p99,
        }
    }
}

impl std::fmt::Display for JobReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "job[{}]: {} pair(s) · {:.3e} cells · wall {:.3}s · {:.3} GCUPS",
            self.kind,
            self.outcomes.len(),
            self.total_cells as f64,
            self.wall_time.as_secs_f64(),
            self.gcups_wall,
        )?;
        if self.recoveries > 0 || !self.failed_devices.is_empty() {
            writeln!(
                f,
                "  recoveries {} · requeued {} · failed devices {:?}",
                self.recoveries, self.requeued, self.failed_devices,
            )?;
        }
        write!(f, "  best score {}", self.best_score())
    }
}

/// Re-derive latency percentiles from a set of job latencies (the
/// service's stream-level SLOs, as opposed to the per-pair percentiles a
/// batch report carries).
pub fn latency_percentiles(latencies: &mut [Duration]) -> (Duration, Duration, Duration) {
    latencies.sort_unstable();
    (
        percentile(latencies, 50.0),
        percentile(latencies, 90.0),
        percentile(latencies, 99.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(m: usize, n: usize) -> (Vec<u8>, Vec<u8>) {
        (
            (0..m).map(|k| (k % 4) as u8).collect(),
            (0..n).map(|k| ((k + 1) % 4) as u8).collect(),
        )
    }

    #[test]
    fn single_pair_job_matches_solo_run() {
        let (a, b) = seqs(96, 120);
        let platform = Platform::env1();
        let base = RunConfig::test_default();
        let job = JobSpec::single("one", a.clone(), b.clone());
        let report = job.execute(&platform, &base, None, None, None).unwrap();
        let solo = PipelineRun::new(&a, &b, &platform)
            .config(base.clone())
            .run()
            .unwrap();
        assert_eq!(report.kind, JobKind::SinglePair);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].best, solo.best);
        assert_eq!(report.best_score(), solo.best.score);
        assert_eq!(report.total_cells, solo.total_cells);
    }

    #[test]
    fn batch_job_reports_every_pair_through_the_common_type() {
        let pairs: Vec<BatchJob> = (0..5)
            .map(|i| {
                let (a, b) = seqs(40 + 8 * i, 52 + 4 * i);
                BatchJob::new(format!("p{i}"), a, b)
            })
            .collect();
        let platform = Platform::env1();
        let base = RunConfig::test_default();
        let job = JobSpec::Batch {
            jobs: pairs.clone(),
            config: Some(BatchConfig::test_default()),
            faults: Vec::new(),
        };
        assert_eq!(job.pairs(), 5);
        let report = job.execute(&platform, &base, None, None, None).unwrap();
        assert_eq!(report.kind, JobKind::Batch);
        assert_eq!(report.outcomes.len(), 5);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.pair, i);
            let solo = PipelineRun::new(&pairs[i].a, &pairs[i].b, &platform)
                .config(RunConfig::test_default())
                .run()
                .unwrap();
            assert_eq!(o.best, solo.best, "pair {i} diverged from its solo run");
        }
    }

    #[test]
    fn spec_accessors_describe_the_workload() {
        let (a, b) = seqs(10, 20);
        let single = JobSpec::single("s", a.clone(), b.clone());
        assert_eq!(single.kind(), JobKind::SinglePair);
        assert_eq!(single.name(), "s");
        assert_eq!(single.total_cells(), 200);
        let batch = JobSpec::batch(vec![BatchJob::new("x", a, b)]);
        assert_eq!(batch.kind(), JobKind::Batch);
        assert_eq!(batch.name(), "batch(1)");
        assert_eq!(batch.total_cells(), 200);
        assert_eq!(JobKind::Batch.to_string(), "batch");
    }

    #[test]
    fn pre_set_cancellation_token_stops_both_routes() {
        use std::sync::atomic::Ordering;
        let token = Arc::new(AtomicBool::new(false));
        token.store(true, Ordering::Relaxed);
        let (a, b) = seqs(64, 64);
        let platform = Platform::env1();
        let base = RunConfig::test_default();
        for job in [
            JobSpec::single("c", a.clone(), b.clone()),
            JobSpec::batch(vec![BatchJob::new("c", a.clone(), b.clone())]),
        ] {
            let err = job
                .execute(&platform, &base, None, None, Some(Arc::clone(&token)))
                .unwrap_err();
            assert!(
                matches!(
                    err.as_pipeline(),
                    Some(crate::pipeline::PipelineError::Cancelled)
                ),
                "expected Cancelled, got {err}"
            );
        }
    }
}
