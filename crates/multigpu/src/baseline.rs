//! Baselines the evaluation compares against.
//!
//! * [`cpu_serial`] — single-threaded linear-space Gotoh scan (the honest
//!   lower bound every speedup is quoted against);
//! * [`cpu_parallel`] — a multicore wavefront over the block grid with a
//!   persistent worker pool: the "what a CPU node can do" row in the
//!   kernel table;
//! * single-device and equal-split and bulk-synchronous GPU baselines are
//!   expressed through [`crate::desrun`] / [`crate::pipeline`] with the
//!   appropriate [`crate::config::RunConfig`], so they share every code
//!   path with the measured system.

use megasw_sw::block::BlockInput;
use megasw_sw::border::{ColBorder, RowBorder};
use megasw_sw::cell::BestCell;
use megasw_sw::grid::BlockGrid;
use megasw_sw::kernel::scalar;
use megasw_sw::ScoreScheme;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Single-threaded Gotoh scan. Returns the best cell and elapsed time.
pub fn cpu_serial(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> (BestCell, Duration) {
    let t0 = Instant::now();
    // Deliberately the scalar engine: the baseline every speedup (including
    // the SIMD kernels') is quoted against.
    let best = scalar().best(a, b, scheme);
    (best, t0.elapsed())
}

/// Multicore wavefront over the block grid.
///
/// External diagonals are processed in order; tiles of one diagonal are
/// independent and handed to a persistent pool of `threads` workers. Border
/// vectors move by value through channels (taken from / returned to the
/// `tops`/`lefts` stores), so there is no shared mutable state and the
/// result is bit-identical to the sequential executor.
pub fn cpu_parallel(
    a: &[u8],
    b: &[u8],
    scheme: &ScoreScheme,
    block: usize,
    threads: usize,
) -> (BestCell, Duration) {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        return (BestCell::ZERO, Duration::ZERO);
    }
    let grid = BlockGrid::new(m, n, block, block);
    let threads = threads.max(1);
    let t0 = Instant::now();

    struct Task {
        r: usize,
        c: usize,
        top: RowBorder,
        left: ColBorder,
    }
    struct Done {
        r: usize,
        c: usize,
        bottom: RowBorder,
        right: ColBorder,
        best: BestCell,
    }

    // std::sync::mpsc receivers are single-consumer; the worker pool shares
    // one behind a mutex held only for the recv itself.
    let (task_tx, task_rx) = mpsc::channel::<Task>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (done_tx, done_rx) = mpsc::channel::<Done>();

    let best = std::thread::scope(|scope| {
        for _ in 0..threads {
            let task_rx = Arc::clone(&task_rx);
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                let task = {
                    let rx = task_rx.lock().unwrap_or_else(PoisonError::into_inner);
                    rx.recv()
                };
                let Ok(task) = task else { break };
                let (i0, i1) = grid.row_range(task.r);
                let (j0, j1) = grid.col_range(task.c);
                let out = scalar().block(
                    BlockInput {
                        a_rows: &a[i0 - 1..i1 - 1],
                        b_cols: &b[j0 - 1..j1 - 1],
                        top: &task.top,
                        left: &task.left,
                        row_offset: i0,
                        col_offset: j0,
                    },
                    scheme,
                );
                // The pool outlives the last diagonal; a send failure
                // just means the coordinator is done collecting.
                let _ = done_tx.send(Done {
                    r: task.r,
                    c: task.c,
                    bottom: out.bottom,
                    right: out.right,
                    best: out.best,
                });
            });
        }
        drop(done_tx);

        let rows = grid.rows();
        let cols = grid.cols();
        let mut tops: Vec<RowBorder> = (0..cols)
            .map(|c| RowBorder::zero(grid.col_width(c)))
            .collect();
        let mut lefts: Vec<ColBorder> = (0..rows)
            .map(|r| ColBorder::zero(grid.row_height(r)))
            .collect();
        let mut best = BestCell::ZERO;

        for d in 0..grid.external_diagonals() {
            let tiles = grid.diagonal_tiles(d);
            for &(r, c) in &tiles {
                let top = std::mem::replace(&mut tops[c], RowBorder::zero(0));
                let left = std::mem::replace(&mut lefts[r], ColBorder::zero(0));
                task_tx.send(Task { r, c, top, left }).expect("pool alive");
            }
            for _ in 0..tiles.len() {
                let done = done_rx.recv().expect("workers alive");
                best = best.merge(done.best);
                tops[done.c] = done.bottom;
                lefts[done.r] = done.right;
            }
        }
        drop(task_tx); // workers exit
        best
    });

    (best, t0.elapsed())
}

/// GCUPS for a run over `m × n` cells lasting `elapsed`.
pub fn gcups(m: usize, n: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        (m as f64 * n as f64) / secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed + 17).apply(&a);
        (a, b)
    }

    #[test]
    fn parallel_matches_serial() {
        let scheme = ScoreScheme::cudalign();
        let (a, b) = pair(3_000, 1);
        let (serial, _) = cpu_serial(a.codes(), b.codes(), &scheme);
        for threads in [1, 2, 4] {
            let (par, _) = cpu_parallel(a.codes(), b.codes(), &scheme, 256, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_handles_ragged_grids() {
        let scheme = ScoreScheme::cudalign();
        let (a, b) = pair(1_037, 2); // not a multiple of the block size
        let (serial, _) = cpu_serial(a.codes(), b.codes(), &scheme);
        let (par, _) = cpu_parallel(a.codes(), b.codes(), &scheme, 128, 3);
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_empty_inputs() {
        let scheme = ScoreScheme::cudalign();
        let (best, _) = cpu_parallel(&[], &[], &scheme, 64, 4);
        assert_eq!(best, BestCell::ZERO);
    }

    #[test]
    fn gcups_helper() {
        // 10¹² cells in 1 s = 1000 GCUPS.
        assert!((gcups(1_000_000, 1_000_000, Duration::from_secs(1)) - 1_000.0).abs() < 1e-9);
        assert_eq!(gcups(10, 10, Duration::ZERO), 0.0);
    }

    #[test]
    fn parallel_pool_is_not_pathological() {
        // Timing smoke check only: shared CI machines make real speedup
        // assertions flaky, so just require that adding threads does not
        // catastrophically regress (> 2×) versus one thread. The `kernels`
        // bench measures the actual speedup.
        let scheme = ScoreScheme::cudalign();
        let (a, b) = pair(6_000, 3);
        let (_, t1) = cpu_parallel(a.codes(), b.codes(), &scheme, 512, 1);
        let (_, t4) = cpu_parallel(a.codes(), b.codes(), &scheme, 512, 4);
        assert!(
            t4 < t1 * 2,
            "4 threads catastrophically slower: t1 = {t1:?}, t4 = {t4:?}"
        );
    }
}
