//! Configuration auto-tuning.
//!
//! The two tunables with real performance consequences are the **block-row
//! height** (communication granularity: small rows pipeline tightly but
//! pay per-launch overhead and expose transfer latency; tall rows amortize
//! overheads but lengthen pipeline fill) and the **ring capacity**. The
//! discrete-event backend makes the search free — each candidate costs a
//! scheduling pass, not a real run — which is exactly how one would tune
//! the real system before committing hours of GPU time to a chromosome
//! pair.

use crate::config::RunConfig;
use crate::desrun::run_des;
use megasw_gpusim::Platform;

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub block_h: usize,
    pub buffer_capacity: usize,
    pub gcups: f64,
}

/// The tuning outcome: the winning configuration and every candidate tried.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub config: RunConfig,
    pub gcups: f64,
    pub candidates: Vec<Candidate>,
}

/// Default block-height ladder.
const BLOCK_HEIGHTS: [usize; 7] = [16, 64, 128, 256, 512, 1024, 2048];
/// Default capacity ladder.
const CAPACITIES: [usize; 3] = [2, 8, 32];

/// Sweep block height × ring capacity on the simulator and return the
/// fastest configuration (ties break to the smaller memory footprint:
/// smaller block height, then smaller capacity).
pub fn autotune(m: usize, n: usize, platform: &Platform, base: &RunConfig) -> TuneResult {
    let mut candidates = Vec::new();
    let mut best: Option<Candidate> = None;

    for &block_h in BLOCK_HEIGHTS.iter().filter(|&&h| h <= m.max(1)) {
        for &cap in &CAPACITIES {
            let cfg = RunConfig {
                block_h,
                buffer_capacity: cap,
                ..base.clone()
            };
            let gcups = run_des(m, n, platform, &cfg)
                .report
                .gcups_sim
                .unwrap_or(0.0);
            let cand = Candidate {
                block_h,
                buffer_capacity: cap,
                gcups,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    cand.gcups > b.gcups * (1.0 + 1e-9)
                        || ((cand.gcups - b.gcups).abs() <= b.gcups * 1e-9
                            && (cand.block_h, cand.buffer_capacity)
                                < (b.block_h, b.buffer_capacity))
                }
            };
            if better {
                best = Some(cand.clone());
            }
            candidates.push(cand);
        }
    }

    let best = best.unwrap_or(Candidate {
        block_h: base.block_h,
        buffer_capacity: base.buffer_capacity,
        gcups: 0.0,
    });
    TuneResult {
        config: RunConfig {
            block_h: best.block_h,
            buffer_capacity: best.buffer_capacity,
            ..base.clone()
        },
        gcups: best.gcups,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_config_never_loses_to_default() {
        let base = RunConfig::paper_default();
        let p = Platform::env2();
        let (m, n) = (1_000_000, 1_000_000);
        let tuned = autotune(m, n, &p, &base);
        let default_gcups = run_des(m, n, &p, &base).report.gcups_sim.unwrap();
        assert!(
            tuned.gcups >= default_gcups - 1e-9,
            "tuned {} vs default {default_gcups}",
            tuned.gcups
        );
        assert!(!tuned.candidates.is_empty());
    }

    #[test]
    fn sweep_covers_the_ladder() {
        let tuned = autotune(
            1_000_000,
            1_000_000,
            &Platform::env1(),
            &RunConfig::paper_default(),
        );
        assert_eq!(
            tuned.candidates.len(),
            BLOCK_HEIGHTS.len() * CAPACITIES.len()
        );
    }

    #[test]
    fn small_matrices_skip_oversized_blocks() {
        let tuned = autotune(100, 100_000, &Platform::env1(), &RunConfig::paper_default());
        assert!(tuned.candidates.iter().all(|c| c.block_h <= 100));
        assert!(tuned.config.block_h <= 100);
    }

    #[test]
    fn deterministic() {
        let base = RunConfig::paper_default();
        let p = Platform::env2();
        let t1 = autotune(500_000, 500_000, &p, &base);
        let t2 = autotune(500_000, 500_000, &p, &base);
        assert_eq!(t1.gcups, t2.gcups);
        assert_eq!(t1.config.block_h, t2.config.block_h);
        assert_eq!(t1.config.buffer_capacity, t2.config.buffer_capacity);
    }

    #[test]
    fn preserves_untuned_fields() {
        let base = RunConfig::paper_default().with_partition(crate::PartitionPolicy::Equal);
        let tuned = autotune(200_000, 200_000, &Platform::env1(), &base);
        assert_eq!(tuned.config.policy.partition, crate::PartitionPolicy::Equal);
        assert_eq!(tuned.config.block_w, base.block_w);
    }
}
