//! T2 — throughput of the threaded pipeline on Environment 1 (2 homogeneous
//! devices), per benchmark pair shape. Criterion's `Elements` throughput is
//! DP cells, so the report reads directly in cells/second (×10⁻⁹ = GCUPS).
//!
//! The paper-scale series for this table comes from
//! `cargo run -p megasw-bench --release --bin paper-tables t2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::prelude::*;
use megasw_bench::cached_pair;
use std::time::Duration;

fn bench_env1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_env1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let cfg = RunConfig::paper_default();
    for (name, len, seed) in [("pairA", 4_000usize, 101u64), ("pairB", 8_000, 102)] {
        let (a, b) = cached_pair(len, seed);
        let cells = (a.len() * b.len()) as u64;
        for gpus in [1usize, 2] {
            let platform = Platform::env1().take(gpus);
            group.throughput(Throughput::Elements(cells));
            group.bench_with_input(
                BenchmarkId::new(name, format!("{gpus}gpu")),
                &platform,
                |bench, platform| {
                    bench.iter(|| {
                        run_pipeline(a.codes(), b.codes(), platform, &cfg)
                            .expect("pipeline run failed")
                            .best
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_env1);
criterion_main!(benches);
