//! Failure injection across the whole stack: a device failing anywhere in
//! the chain must surface as a clean error — never a deadlock, never a
//! silently wrong score.

use megasw::prelude::*;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 77).apply(&a);
    (a, b)
}

#[test]
fn every_device_and_phase_fails_cleanly() {
    let (a, b) = pair(2_000, 1);
    let cfg = RunConfig::paper_default()
        .with_block(64)
        .with_buffer_capacity(2);
    let rows = a.len().div_ceil(cfg.block_h);

    for device in 0..3 {
        for row in [0, 1, rows / 2, rows - 1] {
            let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .faults(FaultPlan {
                    device,
                    fail_at_block_row: row,
                })
                .run()
                .expect_err("faulted run must not succeed");
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("device {device}")),
                "device {device} row {row}: {msg}"
            );
        }
    }
}

#[test]
fn fault_with_tiny_buffers_does_not_deadlock() {
    // Capacity-1 rings maximize blocking; the poison must still reach every
    // blocked neighbour. Run under a watchdog so a regression shows up as a
    // test failure rather than a hung suite.
    let (a, b) = pair(3_000, 2);
    let result = with_deadline(
        "faulted capacity-1 pipeline",
        std::time::Duration::from_secs(60),
        move || {
            let cfg = RunConfig::paper_default()
                .with_block(32)
                .with_buffer_capacity(1);
            PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .faults(FaultPlan {
                    device: 1,
                    fail_at_block_row: 40,
                })
                .run()
        },
    );
    assert!(result.is_err());
}

#[test]
fn fault_on_nonexistent_device_is_harmless() {
    // A fault plan naming a device outside the chain never triggers.
    let (a, b) = pair(1_000, 3);
    let cfg = RunConfig::paper_default().with_block(64);
    let want = gotoh_best(a.codes(), b.codes(), &cfg.scheme);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
        .config(cfg.clone())
        .faults(FaultPlan {
            device: 99,
            fail_at_block_row: 0,
        })
        .run()
        .unwrap();
    assert_eq!(report.best, want);
}

#[test]
fn fault_past_last_row_never_triggers() {
    let (a, b) = pair(1_000, 4);
    let cfg = RunConfig::paper_default().with_block(64);
    let rows = a.len().div_ceil(cfg.block_h);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
        .config(cfg.clone())
        .faults(FaultPlan {
            device: 0,
            fail_at_block_row: rows + 10,
        })
        .run()
        .unwrap();
    assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
}

#[test]
fn single_device_fault_reports_directly() {
    let (a, b) = pair(800, 5);
    let cfg = RunConfig::paper_default().with_block(64);
    let err = PipelineRun::new(a.codes(), b.codes(), &Platform::single(catalog::gtx680()))
        .config(cfg.clone())
        .faults(FaultPlan {
            device: 0,
            fail_at_block_row: 2,
        })
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("device 0"));
}

#[test]
fn successive_runs_after_a_fault_are_unaffected() {
    // Faults poison per-run rings only; a fresh run must be clean.
    let (a, b) = pair(1_200, 6);
    let cfg = RunConfig::paper_default().with_block(64);
    let _ = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .faults(FaultPlan {
            device: 1,
            fail_at_block_row: 3,
        })
        .run();
    let clean = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(clean.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
}
