//! # megasw-obs — run observability for both execution backends
//!
//! The paper's whole argument is about *where time goes*: the circular
//! buffer hides border communication behind computation, and the evaluation
//! is a set of utilization/stall pictures. This crate is the workspace-wide
//! event model that lets both backends produce those pictures:
//!
//! * [`ObsSpan`] / [`ObsKind`] — typed spans (`Kernel`, `RingPush`,
//!   `RingPopWait`, `BorderXfer`, `Traceback`) with device and block-row
//!   attribution. The threaded pipeline emits them with wall-clock
//!   timestamps; the discrete-event backend emits them with simulated-time
//!   timestamps. Both use nanoseconds since the run epoch, so the rest of
//!   the stack is backend-agnostic.
//! * [`Recorder`] — a cheap, clonable, thread-safe collector with an
//!   [`ObsLevel`] filter (`off` / `kernels` / `full`).
//! * [`MetricsRegistry`] — per-run counters and log-bucketed percentile
//!   histograms (GCUPS, ring occupancy, stall totals, span durations)
//!   rendered as a text summary or exported via [`prom`] in Prometheus
//!   text exposition or JSON.
//! * [`LiveTelemetry`] / [`ProgressSampler`] — lock-free **in-flight**
//!   counters the pipeline workers update per block-row (cells, rows,
//!   busy time, ring occupancy) and a sampler thread that renders the
//!   `--progress` line while the run executes.
//! * [`chrome`] — a Chrome `trace_event` JSON exporter: the output opens
//!   directly in `chrome://tracing` or <https://ui.perfetto.dev>, one lane
//!   per device plus a host lane, plus per-device stall counter tracks.
//!   [`chrome::validate`] structurally checks a trace (golden tests use
//!   it), backed by the dependency-free JSON parser in [`json`].
//! * [`FlightRecorder`] — a lock-free ring of the last N structured
//!   events per worker, dumped as JSONL on fault/abort/panic or on
//!   demand; the black box for post-mortem debugging.
//! * [`MetricsHub`] / [`MetricsServer`] — a std-only HTTP/1.1 endpoint
//!   (`/metrics`, `/health`, `/flight`) serving live telemetry from a run
//!   in progress.

pub mod chrome;
pub mod flight;
pub mod http;
pub mod json;
pub mod live;
pub mod metrics;
pub mod prom;
pub mod span;

pub use chrome::{chrome_trace, validate, TraceCheck};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use http::{
    http_delete, http_get, http_post, http_request, Handler, MetricsHub, MetricsServer, Request,
    Response,
};
pub use live::{
    render_progress_line, DeviceSnapshot, LiveSnapshot, LiveTelemetry, ProgressSampler, RingGauge,
    StallPhase,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use prom::{
    escape_label_value, metrics_json, prometheus, validate_exposition, ExpositionSummary,
};
pub use span::{ObsKind, ObsLevel, ObsSpan, Recorder};
