//! Circular-buffer tuning: sweep the ring capacity and watch communication
//! hiding kick in — on the simulator (GCUPS curve) and on the threaded
//! runtime (producer/consumer block counts).
//!
//! ```text
//! cargo run --release --example buffer_tuning
//! ```

use megasw::multigpu::desrun::run_des;
use megasw::prelude::*;

const MBP: usize = 1_000_000;

fn main() {
    let platform = Platform::env1();
    let base = RunConfig::paper_default();

    println!(
        "simulated GCUPS vs ring capacity ({}×{} on {}):\n",
        2 * MBP,
        2 * MBP,
        platform.name
    );
    println!("{:>9} {:>10} {:>11}", "capacity", "GCUPS", "efficiency");
    let peak = platform.aggregate_peak_gcups();
    let mut curve = Vec::new();
    for cap in [1usize, 2, 3, 4, 6, 8, 12, 16, 32, 64, 128, 256] {
        let cfg = base.clone().with_buffer_capacity(cap);
        let gcups = run_des(2 * MBP, 2 * MBP, &platform, &cfg)
            .report
            .gcups_sim
            .unwrap();
        println!("{cap:>9} {gcups:>10.2} {:>10.1}%", 100.0 * gcups / peak);
        curve.push((cap, gcups));
    }

    // Locate the knee: the first capacity within 0.5% of the plateau.
    let plateau = curve.iter().map(|&(_, g)| g).fold(f64::MIN, f64::max);
    let knee = curve
        .iter()
        .find(|&&(_, g)| g >= 0.995 * plateau)
        .map(|&(c, _)| c)
        .unwrap_or(1);
    println!("\nknee at capacity ≈ {knee} (within 0.5% of the plateau)");

    // The threaded runtime shows the same effect as blocking counts.
    println!("\nthreaded-runtime ring behaviour (40 KBP pair, capacities 1 / {knee} / 64):\n");
    let human = ChromosomeGenerator::new(GenerateConfig::sized(40_000, 5)).generate();
    let (chimp, _) = DivergenceModel::test_scale(6).apply(&human);
    println!(
        "{:>9} {:>14} {:>16} {:>14}",
        "capacity", "prod. blocks", "cons. blocks", "max occupancy"
    );
    for cap in [1usize, knee, 64] {
        let cfg = base.clone().with_block(512).with_buffer_capacity(cap);
        let report = PipelineRun::new(human.codes(), chimp.codes(), &platform)
            .config(cfg.clone())
            .run()
            .expect("pipeline run failed");
        let rs = report.devices[0]
            .ring_out
            .expect("two-device platform has one ring");
        println!(
            "{cap:>9} {:>14} {:>16} {:>14}",
            rs.producer_blocks, rs.consumer_blocks, rs.max_occupancy
        );
    }
    println!("\ncapacity 1 forces lock-step; larger rings absorb the jitter.");

    // Let the autotuner pick block height and capacity for this platform.
    let tuned = autotune(2 * MBP, 2 * MBP, &platform, &base);
    println!(
        "\nautotuned for 2 MBP² on {}: block_h = {}, capacity = {} → {:.2} GCUPS \
         ({} candidates evaluated)",
        platform.name,
        tuned.config.block_h,
        tuned.config.buffer_capacity,
        tuned.gcups,
        tuned.candidates.len()
    );
}
