//! The resident alignment service: a long-lived engine that owns the
//! device platform and drains a prioritized queue of [`JobSpec`]s.
//!
//! Every prior layer lives and dies with one CLI invocation. This module
//! is ROADMAP item 2's answer — the shape FutureSDR's runtime/ctrl-port
//! split suggests: a resident runtime that accepts work, streams
//! progress, and exposes remote control, keeping the batch packer and
//! calibrated device weights hot under a continuous job stream instead
//! of paying startup per invocation.
//!
//! Architecture (DESIGN.md §15):
//!
//! * [`AlignService::start`] spawns **one executor thread** that owns the
//!   platform. Jobs execute strictly one at a time — the platform is one
//!   set of devices; running two slab pipelines at once would just
//!   timeslice them — popped in priority order (higher first), FIFO
//!   within a priority.
//! * Submission ([`AlignService::submit`]) assigns a monotonically
//!   increasing id, parks the spec in the queue, and returns immediately.
//!   Each job gets its own [`LiveTelemetry`] handle at submit time, so
//!   progress is streamable from the moment it starts running.
//! * **Cancellation** is cooperative: [`AlignService::cancel`] removes a
//!   still-queued job outright; a running job has its token set and stops
//!   at its next checkpoint boundary (single-pair) or pair boundary
//!   (batch) — see [`PipelineError::Cancelled`]. Terminal jobs are
//!   untouched.
//! * **Device loss is scoped to the job.** Blacklists live inside
//!   [`PipelineRun`](crate::pipeline::PipelineRun) /
//!   [`BatchRun`](crate::batch::BatchRun), so a loss during job N
//!   recovers in-run (bit-identical score) and the queue survives: job
//!   N+1 starts with the full platform again and simply re-routes if the
//!   device is still dead. No queued job is dropped or reordered.
//! * **SLOs**: the service republishes a `service.*` metrics registry to
//!   its [`MetricsHub`] on every transition and every publisher tick —
//!   job counters, queue depth/peak gauges, and per-job p50/p90/p99
//!   latency (submission → completion, in ms, as explicit counters
//!   because the Prometheus exposition carries no quantile lines).
//! * [`AlignService::handler`] mounts the HTTP surface onto
//!   [`MetricsServer::bind_routed`](megasw_obs::MetricsServer):
//!   `POST /jobs`, `GET /jobs`, `GET /jobs/:id`, `GET /jobs/:id/events`
//!   (NDJSON progress), `DELETE /jobs/:id`; `/metrics`, `/health` and
//!   `/flight` stay on the built-in routes.

use crate::batch::{percentile, BatchConfig, BatchFault, BatchJob};
use crate::checkpoint::RecoveryPolicy;
use crate::config::{CheckpointCadence, PartitionPolicy, PruneMode, RebalanceMode, RunConfig};
use crate::job::{JobKind, JobReport, JobSpec};
use crate::pipeline::{FaultSchedule, PipelineError};
use megasw_gpusim::Platform;
use megasw_obs::json::{self, escape, Value};
use megasw_obs::{LiveTelemetry, MetricsHub, MetricsRegistry, Request, Response};
use megasw_seq::fasta::read_single_fasta_str;
use megasw_seq::DnaSeq;
use megasw_sw::kernel::KernelDispatch;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of one job. The only transitions are
/// `Queued → Running → {Done, Failed, Cancelled}` and
/// `Queued → Cancelled` (cancelled before execution started).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Service-wide execution defaults.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Config for jobs without a per-job override.
    pub base: RunConfig,
    /// Recovery policy applied to every job (device-loss survival).
    pub recovery: Option<RecoveryPolicy>,
    /// Sampling interval of `GET /jobs/:id/events` streams.
    pub events_interval: Duration,
}

impl ServiceConfig {
    pub fn new(base: RunConfig) -> ServiceConfig {
        ServiceConfig {
            base,
            recovery: None,
            events_interval: Duration::from_millis(50),
        }
    }

    /// Small-geometry defaults for tests.
    pub fn test_default() -> ServiceConfig {
        ServiceConfig {
            base: RunConfig::test_default(),
            recovery: None,
            events_interval: Duration::from_millis(5),
        }
    }

    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> ServiceConfig {
        self.recovery = Some(policy);
        self
    }
}

/// Public snapshot of one job, whatever its state.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub id: u64,
    pub name: String,
    pub kind: JobKind,
    pub priority: i64,
    pub state: JobState,
    /// Present once the job is `Done`.
    pub report: Option<JobReport>,
    /// Present once the job is `Failed`.
    pub error: Option<String>,
    /// Submission → completion, present once terminal (except jobs
    /// cancelled while still queued, which never ran).
    pub latency: Option<Duration>,
}

struct JobEntry {
    id: u64,
    name: String,
    kind: JobKind,
    priority: i64,
    state: JobState,
    /// Taken by the executor when the job starts running.
    spec: Option<JobSpec>,
    cancel: Arc<AtomicBool>,
    live: Arc<LiveTelemetry>,
    report: Option<JobReport>,
    error: Option<String>,
    submitted: Instant,
    latency: Option<Duration>,
}

impl JobEntry {
    fn status(&self) -> JobStatus {
        JobStatus {
            id: self.id,
            name: self.name.clone(),
            kind: self.kind,
            priority: self.priority,
            state: self.state,
            report: self.report.clone(),
            error: self.error.clone(),
            latency: self.latency,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    recoveries: u64,
}

struct State {
    next_id: u64,
    /// Job ids in execution order: higher priority first, FIFO within a
    /// priority (maintained at insert).
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    running: Option<u64>,
    queue_peak: u64,
    counters: Counters,
    /// Latencies of `Done` jobs, for the stream-level SLO percentiles.
    latencies: Vec<Duration>,
    /// Ids in the order their execution finished (chaos tests assert
    /// device loss never reorders the stream).
    completed_order: Vec<u64>,
}

struct Inner {
    platform: Platform,
    cfg: ServiceConfig,
    hub: Arc<MetricsHub>,
    state: Mutex<State>,
    cv: Condvar,
    stop: AtomicBool,
}

/// The resident engine. Dropping it (or calling
/// [`AlignService::shutdown`]) stops the executor: the running job is
/// cancelled cooperatively and queued jobs stay unexecuted.
pub struct AlignService {
    inner: Arc<Inner>,
    exec: Option<std::thread::JoinHandle<()>>,
    publisher: Option<std::thread::JoinHandle<()>>,
}

impl AlignService {
    /// Spawn the executor (and the metrics publisher) for `platform`,
    /// publishing SLOs into `hub`.
    pub fn start(platform: Platform, cfg: ServiceConfig, hub: Arc<MetricsHub>) -> AlignService {
        let inner = Arc::new(Inner {
            platform,
            cfg,
            hub,
            state: Mutex::new(State {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                running: None,
                queue_peak: 0,
                counters: Counters::default(),
                latencies: Vec::new(),
                completed_order: Vec::new(),
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        inner.publish();
        let exec = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("megasw-service-exec".into())
                .spawn(move || executor(inner))
                .expect("spawn service executor")
        };
        let publisher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("megasw-service-pub".into())
                .spawn(move || {
                    while !inner.stop.load(Ordering::Relaxed) {
                        inner.publish();
                        std::thread::sleep(Duration::from_millis(200));
                    }
                })
                .expect("spawn service publisher")
        };
        AlignService {
            inner,
            exec: Some(exec),
            publisher: Some(publisher),
        }
    }

    /// The hub this service publishes into (serve it with
    /// [`MetricsServer`](megasw_obs::MetricsServer)).
    pub fn hub(&self) -> Arc<MetricsHub> {
        Arc::clone(&self.inner.hub)
    }

    /// Enqueue a job at default priority 0. Returns its id immediately.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        self.submit_with_priority(spec, 0)
    }

    /// Enqueue a job; higher `priority` runs sooner, FIFO within equal
    /// priorities.
    pub fn submit_with_priority(&self, spec: JobSpec, priority: i64) -> u64 {
        let id = self.inner.enqueue(spec, priority);
        self.inner.cv.notify_all();
        self.inner.publish();
        id
    }

    /// Snapshot of one job, `None` for unknown ids.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.inner
            .state
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(JobEntry::status)
    }

    /// Snapshot of every job the service has seen, by ascending id.
    pub fn jobs(&self) -> Vec<JobStatus> {
        self.inner
            .state
            .lock()
            .unwrap()
            .jobs
            .values()
            .map(JobEntry::status)
            .collect()
    }

    /// Cooperatively cancel a job; returns its state after the request
    /// (`Cancelled` immediately for queued jobs, `Running` for a job that
    /// will stop at its next checkpoint, unchanged for terminal jobs),
    /// `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let state = self.inner.cancel(id);
        self.inner.publish();
        state
    }

    /// Jobs whose execution has finished, in completion order.
    pub fn completed_order(&self) -> Vec<u64> {
        self.inner.state.lock().unwrap().completed_order.clone()
    }

    /// Jobs currently waiting to run.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Block until job `id` reaches a terminal state (polling) or
    /// `timeout` elapses; returns the final status, `None` on timeout or
    /// unknown id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.state.is_terminal() {
                return Some(status);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// The HTTP route hook for
    /// [`MetricsServer::bind_routed`](megasw_obs::MetricsServer): the
    /// `/jobs` surface; `None` (fall-through to the built-in routes) for
    /// everything else.
    pub fn handler(&self) -> megasw_obs::Handler {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |req: &Request| route(&inner, req))
    }

    /// Stop the executor: the running job (if any) is cancelled
    /// cooperatively, queued jobs stay `Queued` forever. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        {
            let st = self.inner.state.lock().unwrap();
            if let Some(id) = st.running {
                if let Some(job) = st.jobs.get(&id) {
                    job.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        self.inner.cv.notify_all();
        if let Some(h) = self.exec.take() {
            let _ = h.join();
        }
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AlignService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn executor(inner: Arc<Inner>) {
    loop {
        let (id, spec, cancel, live) = {
            let mut st = inner.state.lock().unwrap();
            'pick: loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                while let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    if job.state != JobState::Queued {
                        continue; // cancelled while queued
                    }
                    job.state = JobState::Running;
                    let spec = job.spec.take().expect("queued job carries its spec");
                    let cancel = Arc::clone(&job.cancel);
                    let live = Arc::clone(&job.live);
                    st.running = Some(id);
                    break 'pick (id, spec, cancel, live);
                }
                st = inner.cv.wait(st).unwrap();
            }
        };
        inner.publish();

        let result = spec.execute(
            &inner.platform,
            &inner.cfg.base,
            inner.cfg.recovery,
            Some(live),
            Some(cancel),
        );

        {
            let mut st = inner.state.lock().unwrap();
            let latency = {
                let job = st.jobs.get_mut(&id).expect("running job exists");
                let latency = job.submitted.elapsed();
                job.latency = Some(latency);
                match result {
                    Ok(report) => {
                        job.state = JobState::Done;
                        job.report = Some(report);
                    }
                    Err(e) => {
                        if matches!(e.as_pipeline(), Some(PipelineError::Cancelled)) {
                            job.state = JobState::Cancelled;
                        } else {
                            job.state = JobState::Failed;
                            job.error = Some(e.to_string());
                        }
                    }
                }
                latency
            };
            let job_state = st.jobs[&id].state;
            let job_recoveries = st.jobs[&id].report.as_ref().map_or(0, |r| r.recoveries);
            match job_state {
                JobState::Done => {
                    st.counters.completed += 1;
                    st.counters.recoveries += job_recoveries;
                    st.latencies.push(latency);
                }
                JobState::Cancelled => st.counters.cancelled += 1,
                _ => st.counters.failed += 1,
            }
            st.completed_order.push(id);
            st.running = None;
        }
        inner.publish();
    }
}

impl Inner {
    fn enqueue(&self, spec: JobSpec, priority: i64) -> u64 {
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        let live = LiveTelemetry::new(
            self.platform.len(),
            u64::try_from(spec.total_cells()).unwrap_or(u64::MAX),
        );
        let entry = JobEntry {
            id,
            name: spec.name(),
            kind: spec.kind(),
            priority,
            state: JobState::Queued,
            spec: Some(spec),
            cancel: Arc::new(AtomicBool::new(false)),
            live,
            report: None,
            error: None,
            submitted: Instant::now(),
            latency: None,
        };
        // Insert before the first queued job with a strictly lower
        // priority: higher priority first, FIFO within a priority.
        let pos = st
            .queue
            .iter()
            .position(|qid| st.jobs[qid].priority < priority)
            .unwrap_or(st.queue.len());
        st.queue.insert(pos, id);
        st.jobs.insert(id, entry);
        st.counters.submitted += 1;
        st.queue_peak = st.queue_peak.max(st.queue.len() as u64);
        id
    }

    fn cancel(&self, id: u64) -> Option<JobState> {
        let mut st = self.state.lock().unwrap();
        let job = st.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel.store(true, Ordering::Relaxed);
                st.counters.cancelled += 1;
                st.queue.retain(|&q| q != id);
            }
            JobState::Running => job.cancel.store(true, Ordering::Relaxed),
            _ => {}
        }
        Some(st.jobs[&id].state)
    }

    /// Rebuild and publish the `service.*` registry plus `/health`.
    fn publish(&self) {
        let st = self.state.lock().unwrap();
        let mut m = MetricsRegistry::new();
        m.describe("service.jobs_submitted", "Jobs accepted into the queue");
        m.describe("service.jobs_completed", "Jobs finished successfully");
        m.describe("service.jobs_failed", "Jobs that errored");
        m.describe(
            "service.jobs_cancelled",
            "Jobs cancelled before or during execution",
        );
        m.describe(
            "service.recoveries_total",
            "Device losses survived across all jobs",
        );
        m.describe("service.queue_depth", "Jobs currently waiting to run");
        m.describe("service.queue_peak", "Highest queue depth observed");
        m.describe("service.jobs_running", "Jobs currently executing (0 or 1)");
        m.describe(
            "service.job_latency_p50_ms",
            "Median submission-to-completion latency of completed jobs (ms)",
        );
        m.describe(
            "service.job_latency_p90_ms",
            "p90 submission-to-completion latency of completed jobs (ms)",
        );
        m.describe(
            "service.job_latency_p99_ms",
            "p99 submission-to-completion latency of completed jobs (ms)",
        );
        m.incr("service.jobs_submitted", st.counters.submitted);
        m.incr("service.jobs_completed", st.counters.completed);
        m.incr("service.jobs_failed", st.counters.failed);
        m.incr("service.jobs_cancelled", st.counters.cancelled);
        m.incr("service.recoveries_total", st.counters.recoveries);
        m.incr("service.queue_depth", st.queue.len() as u64);
        m.incr("service.queue_peak", st.queue_peak);
        m.incr("service.jobs_running", u64::from(st.running.is_some()));
        if !st.latencies.is_empty() {
            let mut lats = st.latencies.clone();
            lats.sort_unstable();
            // Explicit counters, not histogram buckets: the Prometheus
            // text exposition renders no quantile lines, and the SLO is
            // exactly "p50/p99 over completed jobs".
            m.incr(
                "service.job_latency_p50_ms",
                percentile(&lats, 50.0).as_millis() as u64,
            );
            m.incr(
                "service.job_latency_p90_ms",
                percentile(&lats, 90.0).as_millis() as u64,
            );
            m.incr(
                "service.job_latency_p99_ms",
                percentile(&lats, 99.0).as_millis() as u64,
            );
            for l in &lats {
                m.observe("service.job_latency_ms", l.as_secs_f64() * 1e3);
            }
        }
        let health = if st.running.is_some() {
            "running"
        } else if st.queue.is_empty() {
            "idle"
        } else {
            "queued"
        };
        drop(st);
        self.hub.publish(m);
        self.hub.set_health(true, health);
    }
}

// ───────────────────────────── HTTP surface ─────────────────────────────

fn route(inner: &Arc<Inner>, req: &Request) -> Option<Response> {
    let path = req.path.as_str();
    if path == "/jobs" {
        return match req.method.as_str() {
            "POST" => Some(match submit_from_json(inner, &req.body_str()) {
                Ok(id) => {
                    inner.cv.notify_all();
                    inner.publish();
                    Response::json(
                        "202 Accepted",
                        format!("{{\"job\": {id}, \"state\": \"queued\"}}\n"),
                    )
                }
                Err(msg) => bad_request(&msg),
            }),
            "GET" => {
                let st = inner.state.lock().unwrap();
                let jobs: Vec<String> = st.jobs.values().map(|j| job_json(j, false)).collect();
                Some(Response::ok_json(format!(
                    "{{\"jobs\": [{}]}}\n",
                    jobs.join(", ")
                )))
            }
            _ => None, // fall through to the built-in 405
        };
    }
    let rest = path.strip_prefix("/jobs/")?;
    let (id_str, events) = match rest.strip_suffix("/events") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let id: u64 = match id_str.parse() {
        Ok(id) => id,
        Err(_) => return Some(bad_request("job id must be an integer")),
    };
    match (req.method.as_str(), events) {
        ("GET", false) => Some({
            let st = inner.state.lock().unwrap();
            match st.jobs.get(&id) {
                Some(job) => Response::ok_json(format!("{}\n", job_json(job, true))),
                None => not_found(id),
            }
        }),
        ("GET", true) => Some(events_stream(inner, id)),
        ("DELETE", false) => Some(match inner.cancel(id) {
            Some(state) => {
                inner.publish();
                Response::ok_json(format!(
                    "{{\"job\": {id}, \"state\": \"{}\"}}\n",
                    state.name()
                ))
            }
            None => not_found(id),
        }),
        _ => None,
    }
}

fn bad_request(msg: &str) -> Response {
    Response::json(
        "400 Bad Request",
        format!("{{\"error\": \"{}\"}}\n", escape(msg)),
    )
}

fn not_found(id: u64) -> Response {
    Response::json("404 Not Found", format!("{{\"error\": \"no job {id}\"}}\n"))
}

/// NDJSON progress stream: one line per sampling tick (plus a final line
/// at the terminal state), fed from the job's [`LiveTelemetry`].
fn events_stream(inner: &Arc<Inner>, id: u64) -> Response {
    {
        let st = inner.state.lock().unwrap();
        if !st.jobs.contains_key(&id) {
            return not_found(id);
        }
    }
    let inner = Arc::clone(inner);
    let (tx, rx) = mpsc::sync_channel::<String>(64);
    std::thread::Builder::new()
        .name("megasw-service-events".into())
        .spawn(move || {
            loop {
                let (state, line) = {
                    let st = inner.state.lock().unwrap();
                    let Some(job) = st.jobs.get(&id) else { return };
                    (job.state, event_line(job))
                };
                if tx.send(line).is_err() {
                    return; // client hung up
                }
                if state.is_terminal() || inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(inner.cfg.events_interval);
            }
        })
        .expect("spawn events sampler");
    Response::ndjson_stream(rx)
}

fn event_line(job: &JobEntry) -> String {
    let snap = job.live.snapshot();
    let mut line = format!(
        "{{\"job\": {}, \"state\": \"{}\", \"fraction_done\": {:.4}, \"cells_done\": {}, \"gcups\": {:.3}, \"recoveries\": {}",
        job.id,
        job.state.name(),
        snap.fraction_done(),
        snap.cells_done(),
        snap.gcups_cumulative(),
        snap.recoveries,
    );
    if snap.pairs_total > 0 {
        line.push_str(&format!(
            ", \"pairs_done\": {}, \"pairs_total\": {}",
            snap.pairs_done, snap.pairs_total
        ));
    }
    if let Some(report) = &job.report {
        line.push_str(&format!(", \"best_score\": {}", report.best_score()));
    }
    line.push_str("}\n");
    line
}

/// One job as a JSON object; `full` adds the report (outcome list).
fn job_json(job: &JobEntry, full: bool) -> String {
    let mut s = format!(
        "{{\"job\": {}, \"name\": \"{}\", \"kind\": \"{}\", \"state\": \"{}\", \"priority\": {}",
        job.id,
        escape(&job.name),
        job.kind.name(),
        job.state.name(),
        job.priority,
    );
    if let Some(latency) = job.latency {
        s.push_str(&format!(
            ", \"latency_ms\": {:.3}",
            latency.as_secs_f64() * 1e3
        ));
    }
    if let Some(err) = &job.error {
        s.push_str(&format!(", \"error\": \"{}\"", escape(err)));
    }
    if let Some(report) = &job.report {
        s.push_str(&format!(", \"best_score\": {}", report.best_score()));
        if full {
            s.push_str(&format!(", \"report\": {}", report_json(report)));
        }
    }
    s.push('}');
    s
}

fn report_json(report: &JobReport) -> String {
    let outcomes: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| {
            let device = o
                .device
                .map_or_else(|| "null".to_string(), |d| d.to_string());
            format!(
                "{{\"pair\": {}, \"id\": \"{}\", \"m\": {}, \"n\": {}, \"score\": {}, \"i\": {}, \"j\": {}, \"device\": {}, \"large\": {}, \"latency_ms\": {:.3}, \"recoveries\": {}}}",
                o.pair,
                escape(&o.id),
                o.m,
                o.n,
                o.best.score,
                o.best.i,
                o.best.j,
                device,
                o.large,
                o.latency.as_secs_f64() * 1e3,
                o.recoveries,
            )
        })
        .collect();
    let failed: Vec<String> = report.failed_devices.iter().map(usize::to_string).collect();
    format!(
        "{{\"kind\": \"{}\", \"best_score\": {}, \"total_cells\": {}, \"wall_ms\": {:.3}, \"gcups\": {:.3}, \"recoveries\": {}, \"requeued\": {}, \"failed_devices\": [{}], \"latency_p50_ms\": {:.3}, \"latency_p90_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \"outcomes\": [{}]}}",
        report.kind.name(),
        report.best_score(),
        report.total_cells,
        report.wall_time.as_secs_f64() * 1e3,
        report.gcups_wall,
        report.recoveries,
        report.requeued,
        failed.join(", "),
        report.latency_p50.as_secs_f64() * 1e3,
        report.latency_p90.as_secs_f64() * 1e3,
        report.latency_p99.as_secs_f64() * 1e3,
        outcomes.join(", "),
    )
}

// ─────────────────────────── request decoding ───────────────────────────

/// Decode a `POST /jobs` body into a [`JobSpec`] and enqueue it.
///
/// Body shape (`kind` may be omitted — `pairs` implies `batch`):
///
/// ```json
/// {"kind": "single-pair", "id": "chr1-vs-chr1", "a": "ACGT…", "b": ">hdr\nACGT…",
///  "priority": 0, "policy": {"kernel": "avx2", "prune": "distributed",
///  "rebalance": "on:0.1", "checkpoint_rows": 8, "equal": true, "block": 256},
///  "fault": "0:4:compute"}
/// {"kind": "batch", "pairs": [{"id": "p0", "a": "…", "b": "…"}, …],
///  "threshold_cells": 16777216, "bins": 8, "faults": ["2@0:1"]}
/// ```
///
/// Sequences are raw bases or FASTA text (anything containing `>`).
fn submit_from_json(inner: &Arc<Inner>, body: &str) -> Result<u64, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let priority = v.get("priority").and_then(Value::as_f64).unwrap_or(0.0) as i64;
    let config = match v.get("policy") {
        Some(p) => Some(config_from_policy(&inner.cfg.base, p)?),
        None => None,
    };
    let is_batch = match v.get("kind").and_then(Value::as_str) {
        Some("batch") => true,
        Some("single-pair") => false,
        Some(other) => return Err(format!("unknown job kind `{other}`")),
        None => v.get("pairs").is_some(),
    };
    let spec = if is_batch {
        let pairs = v
            .get("pairs")
            .and_then(Value::as_array)
            .ok_or("batch job needs a `pairs` array")?;
        if pairs.is_empty() {
            return Err("batch job needs at least one pair".into());
        }
        let mut jobs = Vec::with_capacity(pairs.len());
        for (i, p) in pairs.iter().enumerate() {
            let id = p
                .get("id")
                .and_then(Value::as_str)
                .map_or_else(|| format!("pair{i}"), str::to_string);
            let a = codes_from_text(require_str(p, "a", &id)?)?;
            let b = codes_from_text(require_str(p, "b", &id)?)?;
            jobs.push(BatchJob::new(id, a, b));
        }
        let mut batch_cfg = BatchConfig::default();
        if let Some(base) = config {
            batch_cfg = batch_cfg.with_base(base);
        } else {
            batch_cfg = batch_cfg.with_base(inner.cfg.base.clone());
        }
        if let Some(t) = v.get("threshold_cells").and_then(Value::as_f64) {
            batch_cfg = batch_cfg.with_large_threshold_cells(t as u128);
        }
        if let Some(bins) = v.get("bins").and_then(Value::as_f64) {
            batch_cfg = batch_cfg.with_bins(bins as usize);
        }
        let mut faults: Vec<BatchFault> = Vec::new();
        if let Some(list) = v.get("faults").and_then(Value::as_array) {
            for f in list {
                let s = f.as_str().ok_or("batch `faults` entries must be strings")?;
                faults.push(s.parse::<BatchFault>()?);
            }
        }
        JobSpec::Batch {
            jobs,
            config: Some(batch_cfg),
            faults,
        }
    } else {
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("pair")
            .to_string();
        let a = codes_from_text(require_str(&v, "a", &id)?)?;
        let b = codes_from_text(require_str(&v, "b", &id)?)?;
        let faults = match v.get("fault").and_then(Value::as_str) {
            Some(s) => s.parse::<FaultSchedule>()?,
            None => FaultSchedule::default(),
        };
        JobSpec::SinglePair {
            id,
            a,
            b,
            config,
            faults,
        }
    };
    Ok(inner.enqueue(spec, priority))
}

fn require_str<'v>(v: &'v Value, key: &str, id: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("pair `{id}` needs a string `{key}` field"))
}

/// Decode a sequence field: FASTA text (first record) when it contains a
/// `>` header, raw bases otherwise.
fn codes_from_text(text: &str) -> Result<Vec<u8>, String> {
    if text.contains('>') {
        read_single_fasta_str(text)
            .map(|r| r.seq.codes().to_vec())
            .map_err(|e| format!("bad FASTA sequence: {e}"))
    } else {
        DnaSeq::from_ascii(text.trim().as_bytes())
            .map(|s| s.codes().to_vec())
            .map_err(|pos| format!("invalid base at position {pos}"))
    }
}

/// Apply a JSON `policy` object onto a base [`RunConfig`] — the same
/// knobs the CLI's `cli_policy` flags expose, so `megasw submit` can
/// forward `--kernel`/`--prune`/`--rebalance`/… verbatim.
fn config_from_policy(base: &RunConfig, policy: &Value) -> Result<RunConfig, String> {
    let mut cfg = base.clone();
    if let Some(k) = policy.get("kernel").and_then(Value::as_str) {
        cfg = cfg.with_dispatch(KernelDispatch::parse(k)?);
    }
    if let Some(p) = policy.get("prune").and_then(Value::as_str) {
        cfg = cfg.with_pruning(PruneMode::parse(p)?);
    }
    if let Some(r) = policy.get("rebalance").and_then(Value::as_str) {
        cfg = cfg.with_rebalance(RebalanceMode::parse(r)?);
    }
    if let Some(rows) = policy.get("checkpoint_rows").and_then(Value::as_f64) {
        let rows = rows as usize;
        if rows == 0 {
            return Err("checkpoint_rows must be positive".into());
        }
        cfg = cfg.with_checkpoint(CheckpointCadence::EveryRows(rows));
    }
    if policy.get("equal").and_then(as_bool) == Some(true) {
        cfg = cfg.with_partition(PartitionPolicy::Equal);
    }
    if let Some(side) = policy.get("block").and_then(Value::as_f64) {
        cfg = cfg.with_block(side as usize);
    }
    Ok(cfg)
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(m: usize, n: usize) -> (Vec<u8>, Vec<u8>) {
        (
            (0..m).map(|k| (k % 4) as u8).collect(),
            (0..n).map(|k| ((k + 1) % 4) as u8).collect(),
        )
    }

    fn service() -> AlignService {
        AlignService::start(
            Platform::env1(),
            ServiceConfig::test_default(),
            MetricsHub::new(),
        )
    }

    #[test]
    fn jobs_complete_in_fifo_order_within_a_priority() {
        let svc = service();
        let (a, b) = seqs(64, 64);
        let ids: Vec<u64> = (0..4)
            .map(|i| svc.submit(JobSpec::single(format!("j{i}"), a.clone(), b.clone())))
            .collect();
        for &id in &ids {
            let status = svc.wait(id, Duration::from_secs(30)).expect("job finished");
            assert_eq!(status.state, JobState::Done, "{status:?}");
            assert_eq!(status.report.as_ref().unwrap().outcomes.len(), 1);
        }
        assert_eq!(svc.completed_order(), ids);
        let reg = svc.hub().registry();
        assert_eq!(reg.counter("service.jobs_completed"), Some(4));
        assert_eq!(reg.counter("service.jobs_failed"), Some(0));
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let svc = service();
        // A long-enough first job keeps the queue stable while we stack
        // priorities behind it.
        let (big_a, big_b) = seqs(1200, 1200);
        let (a, b) = seqs(48, 48);
        let first = svc.submit(JobSpec::single("first", big_a, big_b));
        let low = svc.submit_with_priority(JobSpec::single("low", a.clone(), b.clone()), 0);
        let high = svc.submit_with_priority(JobSpec::single("high", a.clone(), b.clone()), 5);
        for id in [first, low, high] {
            assert!(svc.wait(id, Duration::from_secs(30)).is_some());
        }
        let order = svc.completed_order();
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(high) < pos(low),
            "priority 5 must run before priority 0: {order:?}"
        );
    }

    #[test]
    fn queued_job_cancels_immediately_and_unknown_ids_are_none() {
        let svc = service();
        let (big_a, big_b) = seqs(1200, 1200);
        let (a, b) = seqs(32, 32);
        let running = svc.submit(JobSpec::single("run", big_a, big_b));
        let queued = svc.submit(JobSpec::single("parked", a, b));
        assert_eq!(svc.cancel(queued), Some(JobState::Cancelled));
        assert_eq!(svc.cancel(999), None);
        let status = svc.status(queued).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.report.is_none());
        // The running job is unaffected and the cancelled one never runs.
        assert_eq!(
            svc.wait(running, Duration::from_secs(30)).unwrap().state,
            JobState::Done
        );
        assert_eq!(svc.completed_order(), vec![running]);
        let reg = svc.hub().registry();
        assert_eq!(reg.counter("service.jobs_cancelled"), Some(1));
    }

    #[test]
    fn http_submit_decodes_policy_faults_and_sequences() {
        let hub = MetricsHub::new();
        let svc = AlignService::start(Platform::env1(), ServiceConfig::test_default(), hub);
        let inner = &svc.inner;
        let id = submit_from_json(
            inner,
            r#"{"id": "x", "a": "ACGTACGT", "b": ">hdr desc\nACGT\nACGT", "policy": {"kernel": "scalar", "prune": "local", "equal": true}}"#,
        )
        .unwrap();
        let st = inner.state.lock().unwrap();
        let job = &st.jobs[&id];
        assert_eq!(job.kind, JobKind::SinglePair);
        let Some(JobSpec::SinglePair { a, b, config, .. }) = &job.spec else {
            panic!("expected single-pair spec");
        };
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        let cfg = config.as_ref().unwrap();
        assert_eq!(cfg.policy.dispatch, KernelDispatch::ForceScalar);
        assert_eq!(cfg.policy.pruning, PruneMode::Local);
        assert_eq!(cfg.policy.partition, PartitionPolicy::Equal);
        drop(st);

        let batch_id = submit_from_json(
            inner,
            r#"{"pairs": [{"a": "ACG", "b": "ACG"}, {"id": "q", "a": "TT", "b": "TT"}],
                "bins": 2, "faults": ["1@0:0"]}"#,
        )
        .unwrap();
        let st = inner.state.lock().unwrap();
        let Some(JobSpec::Batch { jobs, faults, .. }) = &st.jobs[&batch_id].spec else {
            panic!("expected batch spec");
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "pair0");
        assert_eq!(jobs[1].id, "q");
        assert_eq!(faults.len(), 1);
        drop(st);

        assert!(submit_from_json(inner, "not json").is_err());
        assert!(submit_from_json(inner, r#"{"kind": "warp"}"#).is_err());
        assert!(submit_from_json(inner, r#"{"a": "ACGT"}"#).is_err());
        assert!(
            submit_from_json(inner, r#"{"a": "AXGT", "b": "ACGT"}"#).is_err(),
            "invalid base must be rejected"
        );
    }

    #[test]
    fn status_json_is_parseable_and_carries_the_report() {
        let svc = service();
        let (a, b) = seqs(72, 72);
        let id = svc.submit(JobSpec::single("jsonable", a, b));
        svc.wait(id, Duration::from_secs(30)).unwrap();
        let st = svc.inner.state.lock().unwrap();
        let text = job_json(&st.jobs[&id], true);
        let v = json::parse(&text).expect("job JSON must parse");
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        let report = v.get("report").unwrap();
        assert_eq!(report.get("outcomes").unwrap().as_array().unwrap().len(), 1);
        let listing = format!(
            "{{\"jobs\": [{}]}}",
            st.jobs
                .values()
                .map(|j| job_json(j, false))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(json::parse(&listing).is_ok(), "{listing}");
    }
}
