//! Many-pair batch engine: inter-task parallelism over a device work-queue.
//!
//! Every layer below this one aligns exactly one pair per run. Database
//! search traffic looks different: thousands of pairs, most of them far too
//! small to keep a multi-GPU chain busy — a 4k×4k matrix spends most of its
//! pipeline life in fill/drain and kernel-launch overhead. SWAPHI's
//! *inter-task* mode and SaLoBa's length-sorted workload-balance argument
//! give the scheduling shape this module implements (DESIGN.md §14):
//!
//! * **Small pairs** (below [`BatchConfig::large_threshold_cells`]) are
//!   dispatched *whole* to a single device: one OS worker per device drains
//!   a shared queue, each pair executed as an ordinary single-device
//!   [`PipelineRun`]. Devices never cooperate on a small matrix, so every
//!   device runs at full efficiency and N devices align N pairs at once.
//! * **Large pairs** route through the existing fine-grain slab pipeline on
//!   the whole platform, serially, exactly like a solo run — megabase
//!   matrices are where intra-task parallelism pays.
//!
//! The queue is **length-sorted into bins**: small pairs are ordered by
//! descending cell count and split into [`BatchConfig::bins`] contiguous
//! bins, so the queue drains largest-first (LPT scheduling) and the last
//! pair a device picks up is among the smallest in the batch — tail
//! imbalance is bounded by one smallest-bin pair per device. The plan tiles
//! the job list exactly: every pair appears in the large list or in exactly
//! one bin (property-tested under adversarial size mixes).
//!
//! Because the whole stack is bit-exact, a pair's batch score is
//! **bit-identical** to its solo [`PipelineRun`] score no matter which
//! device or route executed it; the differential batch-conformance suite
//! (`tests/batch_conformance.rs`) holds that line across kernel-dispatch ×
//! pruning × recovery combos.
//!
//! **Fault tolerance** composes with the existing checkpoint layer. A large
//! pair recovers *in-run* via checkpoint rewind on the surviving devices;
//! the batch then blacklists the dead device for the rest of the run. A
//! small pair that dies with its device is requeued at the front of the
//! queue (never dropped, never double-reported) and the worker exits; a
//! batch-level [`RecoveryPolicy`] bounds total device failures.
//!
//! The DES twin ([`BatchSim`]) models the same queue in simulated time and
//! reports the **packing speedup**: packed batch makespan versus aligning
//! every pair one-at-a-time on the full platform. On small-pair-heavy
//! manifests the packed schedule wins ≥2× (the `batch.env2.3gpu` bench
//! anchor pins this).

use crate::checkpoint::RecoveryPolicy;
use crate::config::RunConfig;
use crate::desrun::DesSim;
use crate::error::MegaswError;
use crate::job::JobOutcome;
use crate::pipeline::{FaultSchedule, PipelineError, PipelineRun, ScheduledFault};
use megasw_gpusim::Platform;
use megasw_obs::{LiveTelemetry, MetricsRegistry};
use megasw_seq::fasta::{read_fasta_path, read_single_fasta_path};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One alignment task in a batch: an id, the two coded sequences, and an
/// optional per-pair [`RunConfig`] (block geometry + [`KernelPolicy`]
/// (crate::config::KernelPolicy)) overriding the batch-wide base config.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Caller-facing identifier (FASTA record ids for manifest-loaded
    /// batches).
    pub id: String,
    /// Query sequence, coded (see `megasw_seq::DnaSeq::codes`).
    pub a: Vec<u8>,
    /// Subject sequence, coded.
    pub b: Vec<u8>,
    /// Per-pair config override; `None` uses [`BatchConfig::base`].
    pub config: Option<RunConfig>,
}

impl BatchJob {
    pub fn new(id: impl Into<String>, a: Vec<u8>, b: Vec<u8>) -> BatchJob {
        BatchJob {
            id: id.into(),
            a,
            b,
            config: None,
        }
    }

    /// Attach a per-pair config (its [`KernelPolicy`]
    /// (crate::config::KernelPolicy) included).
    pub fn with_config(mut self, config: RunConfig) -> BatchJob {
        self.config = Some(config);
        self
    }

    /// DP matrix size of this pair.
    pub fn cells(&self) -> u128 {
        self.a.len() as u128 * self.b.len() as u128
    }
}

/// Batch-wide knobs: the base per-pair config, the small/large routing
/// threshold, and the bin count for length-sorted queue ordering.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Config for pairs without a per-pair override.
    pub base: RunConfig,
    /// Pairs with `cells >= large_threshold_cells` route through the
    /// full-platform slab pipeline; smaller pairs are dispatched whole to
    /// one device. The default (16 Mcells ≈ 4k×4k) sits where the chain's
    /// fill/drain overhead stops paying for itself.
    pub large_threshold_cells: u128,
    /// Number of length-sorted bins the small pairs are split into
    /// (clamped to at least 1; more bins than pairs collapses to one pair
    /// per bin).
    pub bins: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            base: RunConfig::paper_default(),
            large_threshold_cells: 1 << 24,
            bins: 8,
        }
    }
}

impl BatchConfig {
    /// A small-geometry config for tests, mirroring
    /// [`RunConfig::test_default`].
    pub fn test_default() -> BatchConfig {
        BatchConfig {
            base: RunConfig::test_default(),
            large_threshold_cells: 1 << 24,
            bins: 4,
        }
    }

    pub fn with_base(mut self, base: RunConfig) -> BatchConfig {
        self.base = base;
        self
    }

    pub fn with_large_threshold_cells(mut self, cells: u128) -> BatchConfig {
        self.large_threshold_cells = cells;
        self
    }

    pub fn with_bins(mut self, bins: usize) -> BatchConfig {
        self.bins = bins;
        self
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.bins == 0 {
            return Err("batch bin count must be at least 1".into());
        }
        self.base.validate()
    }
}

/// One length-sorted bin of small-pair indices (descending cell count
/// within the bin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchBin {
    pub pairs: Vec<usize>,
}

/// The deterministic schedule a batch executes: which pairs route large,
/// and the length-sorted bin order the small-pair queue drains in.
///
/// Invariant (property-tested): `large` plus the bins tile `0..jobs.len()`
/// exactly — every pair scheduled exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Indices of pairs routed through the full-platform slab pipeline,
    /// descending by cell count (ties by index).
    pub large: Vec<usize>,
    /// Small-pair bins; bin 0 holds the largest small pairs. Queue order is
    /// bin 0 first.
    pub bins: Vec<BatchBin>,
}

impl BatchPlan {
    /// Build the plan for `jobs` under `config`. Pure and deterministic:
    /// same jobs + config → same plan.
    pub fn build(jobs: &[BatchJob], config: &BatchConfig) -> BatchPlan {
        let cells: Vec<u128> = jobs.iter().map(BatchJob::cells).collect();
        Self::build_from_cells(&cells, config)
    }

    /// Plan from raw cell counts (shared with the size-only DES twin).
    pub fn build_from_cells(cells: &[u128], config: &BatchConfig) -> BatchPlan {
        let mut large: Vec<usize> = (0..cells.len())
            .filter(|&i| cells[i] >= config.large_threshold_cells)
            .collect();
        let mut small: Vec<usize> = (0..cells.len())
            .filter(|&i| cells[i] < config.large_threshold_cells)
            .collect();
        // Descending size, index as the deterministic tiebreak.
        large.sort_by(|&x, &y| cells[y].cmp(&cells[x]).then(x.cmp(&y)));
        small.sort_by(|&x, &y| cells[y].cmp(&cells[x]).then(x.cmp(&y)));

        let nb = config.bins.max(1).min(small.len().max(1));
        let base = small.len() / nb;
        let extra = small.len() % nb;
        let mut bins = Vec::with_capacity(nb);
        let mut at = 0usize;
        for k in 0..nb {
            let take = base + usize::from(k < extra);
            bins.push(BatchBin {
                pairs: small[at..at + take].to_vec(),
            });
            at += take;
        }
        debug_assert_eq!(at, small.len());
        BatchPlan { large, bins }
    }

    /// Small-pair queue order: bins front to back (largest pairs first —
    /// LPT order, which bounds tail imbalance).
    pub fn queue_order(&self) -> Vec<usize> {
        self.bins
            .iter()
            .flat_map(|b| b.pairs.iter().copied())
            .collect()
    }

    /// Every scheduled index, large first then queue order. The exact-tiling
    /// property test checks this is a permutation of `0..jobs.len()`.
    pub fn scheduled(&self) -> Vec<usize> {
        let mut all = self.large.clone();
        all.extend(self.queue_order());
        all
    }
}

/// One scheduled device failure inside a batch: when pair `pair` executes,
/// the underlying [`ScheduledFault`] is injected into its run. For a large
/// pair the fault's device indexes the (surviving) platform chain; for a
/// small pair the fault kills whichever device picked the pair up (the
/// device field is ignored — a single-device run has only device 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFault {
    pub pair: usize,
    pub fault: ScheduledFault,
}

impl FromStr for BatchFault {
    type Err = String;

    /// Parse `PAIR@DEV:ROW[:PHASE]` (the part after `@` is the
    /// [`ScheduledFault`] syntax).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (pair, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("batch fault `{s}` needs PAIR@DEV:ROW[:PHASE]"))?;
        let pair = pair
            .parse::<usize>()
            .map_err(|e| format!("bad pair in batch fault `{s}`: {e}"))?;
        let fault = rest.parse::<ScheduledFault>()?;
        Ok(BatchFault { pair, fault })
    }
}

impl std::fmt::Display for BatchFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.pair, self.fault)
    }
}

/// Former name of the per-pair outcome record, now the workload-agnostic
/// [`JobOutcome`] in [`crate::job`] shared by batch reports and the
/// alignment service. The fields are unchanged — only the name moved.
#[deprecated(
    since = "0.9.0",
    note = "renamed to multigpu::job::JobOutcome (same fields); this alias lasts one release"
)]
pub type PairOutcome = JobOutcome;

/// Aggregate result of a batch run: per-pair outcomes in submission order
/// plus throughput and latency accounting.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One outcome per submitted pair, in submission order.
    pub pairs: Vec<JobOutcome>,
    pub total_cells: u128,
    pub wall_time: Duration,
    pub gcups_wall: f64,
    pub small_pairs: usize,
    pub large_pairs: usize,
    /// Bin count the plan actually used (after clamping).
    pub bins: usize,
    /// Small pairs requeued after losing their device mid-run.
    pub requeued: u64,
    /// Device losses survived (in-run large-pair recoveries + small-pair
    /// requeues).
    pub recoveries: u64,
    /// Platform indices blacklisted during the run.
    pub failed_devices: Vec<usize>,
    pub latency_p50: Duration,
    pub latency_p90: Duration,
    pub latency_p99: Duration,
}

impl BatchReport {
    /// Highest score across the batch.
    pub fn best_score(&self) -> i32 {
        self.pairs.iter().map(|p| p.best.score).max().unwrap_or(0)
    }

    /// Batch accounting as named metrics (`batch.*`), merge-friendly with
    /// the per-run registries.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.describe("batch.pairs_total", "Pairs aligned by the batch run");
        m.describe(
            "batch.pairs_small",
            "Pairs dispatched whole to a single device (inter-task route)",
        );
        m.describe(
            "batch.pairs_large",
            "Pairs routed through the full-platform slab pipeline",
        );
        m.describe("batch.bins", "Length-sorted bins the queue drained in");
        m.describe(
            "batch.requeued_total",
            "Small pairs requeued after a device loss",
        );
        m.describe(
            "batch.recoveries_total",
            "Device losses the batch survived (recoveries + requeues)",
        );
        m.incr("batch.pairs_total", self.pairs.len() as u64);
        m.incr("batch.pairs_small", self.small_pairs as u64);
        m.incr("batch.pairs_large", self.large_pairs as u64);
        m.incr("batch.bins", self.bins as u64);
        m.incr("batch.requeued_total", self.requeued);
        m.incr("batch.recoveries_total", self.recoveries);
        m.incr("batch.latency_p50_ns", self.latency_p50.as_nanos() as u64);
        m.incr("batch.latency_p90_ns", self.latency_p90.as_nanos() as u64);
        m.incr("batch.latency_p99_ns", self.latency_p99.as_nanos() as u64);
        m.observe("batch.gcups_wall", self.gcups_wall);
        m
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} pairs ({} small over {} bins, {} large) · {:.3e} cells",
            self.pairs.len(),
            self.small_pairs,
            self.bins,
            self.large_pairs,
            self.total_cells as f64,
        )?;
        writeln!(
            f,
            "  wall {:.3}s · {:.3} GCUPS · latency p50 {:.1}ms p90 {:.1}ms p99 {:.1}ms",
            self.wall_time.as_secs_f64(),
            self.gcups_wall,
            self.latency_p50.as_secs_f64() * 1e3,
            self.latency_p90.as_secs_f64() * 1e3,
            self.latency_p99.as_secs_f64() * 1e3,
        )?;
        if self.recoveries > 0 || !self.failed_devices.is_empty() {
            writeln!(
                f,
                "  recoveries {} · requeued {} · failed devices {:?}",
                self.recoveries, self.requeued, self.failed_devices,
            )?;
        }
        write!(f, "  best score {}", self.best_score())
    }
}

/// Nearest-rank percentile over an ascending-sorted latency list. Shared
/// with the service's per-job latency SLOs.
pub(crate) fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Shared state the per-device workers drain.
struct WorkQueue<'j> {
    jobs: &'j [BatchJob],
    queue: Mutex<VecDeque<usize>>,
    outcomes: Mutex<Vec<Option<JobOutcome>>>,
    /// One flag per batch fault: a fault fires at most once, so a requeued
    /// pair does not die again on the next device.
    fired: Mutex<Vec<bool>>,
    /// Device failures so far (batch-wide, large + small routes).
    failures: Mutex<usize>,
    /// Platform indices that died while running small pairs.
    failed: Mutex<Vec<usize>>,
    requeued: Mutex<u64>,
    fatal: Mutex<Option<MegaswError>>,
}

/// Builder for one batch run — the many-pair analogue of [`PipelineRun`].
///
/// ```
/// use megasw_multigpu::batch::{BatchConfig, BatchJob, BatchRun};
/// use megasw_gpusim::Platform;
///
/// let jobs = vec![
///     BatchJob::new("p0", vec![0, 1, 2, 3], vec![0, 1, 2, 3]),
///     BatchJob::new("p1", vec![3, 2, 1, 0], vec![0, 1, 2, 3]),
/// ];
/// let report = BatchRun::new(&jobs, &Platform::env1())
///     .config(BatchConfig::test_default())
///     .run()
///     .unwrap();
/// assert_eq!(report.pairs.len(), 2);
/// ```
pub struct BatchRun<'a> {
    jobs: &'a [BatchJob],
    platform: &'a Platform,
    config: BatchConfig,
    faults: Vec<BatchFault>,
    recovery: Option<RecoveryPolicy>,
    live: Option<Arc<LiveTelemetry>>,
    cancel: Option<Arc<AtomicBool>>,
}

impl<'a> BatchRun<'a> {
    pub fn new(jobs: &'a [BatchJob], platform: &'a Platform) -> BatchRun<'a> {
        BatchRun {
            jobs,
            platform,
            config: BatchConfig::default(),
            faults: Vec::new(),
            recovery: None,
            live: None,
            cancel: None,
        }
    }

    pub fn config(mut self, config: BatchConfig) -> Self {
        self.config = config;
        self
    }

    /// Inject deterministic per-pair device faults.
    pub fn faults(mut self, faults: Vec<BatchFault>) -> Self {
        self.faults = faults;
        self
    }

    /// Survive device losses: large pairs recover in-run via the checkpoint
    /// path, small pairs are requeued on the survivors. The policy bounds
    /// total device failures across the whole batch.
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Attach live telemetry (one lane per platform device; pair + cell
    /// progress update as pairs finish).
    pub fn live(mut self, live: Arc<LiveTelemetry>) -> Self {
        self.live = Some(live);
        self
    }

    /// Attach a cooperative cancellation token: the batch stops between
    /// pairs (and inside a large pair at its checkpoint boundaries, via
    /// [`PipelineRun::cancel`]) and returns [`PipelineError::Cancelled`]
    /// once the token is set. Already-finished pairs are simply dropped
    /// with the report — cancellation never corrupts the platform.
    pub fn cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    fn job_config(&self, idx: usize) -> RunConfig {
        self.jobs[idx]
            .config
            .clone()
            .unwrap_or_else(|| self.config.base.clone())
    }

    /// Execute the batch. Errors on the first unrecovered device fault or
    /// invalid configuration; on success every submitted pair has exactly
    /// one outcome.
    pub fn run(self) -> Result<BatchReport, MegaswError> {
        self.config.validate().map_err(|msg| {
            MegaswError::Pipeline(PipelineError::InvalidConfig(format!("batch: {msg}")))
        })?;
        if self.platform.is_empty() {
            return Err(MegaswError::Pipeline(PipelineError::InvalidConfig(
                "batch: platform has no devices".into(),
            )));
        }
        let plan = BatchPlan::build(self.jobs, &self.config);
        let total_cells: u128 = self.jobs.iter().map(BatchJob::cells).sum();
        if let Some(live) = &self.live {
            live.set_pairs_total(self.jobs.len() as u64);
        }
        let max_failures = self.recovery.map_or(0, |p| p.max_device_failures);
        let t0 = Instant::now();

        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; self.jobs.len()];
        let mut blacklist = vec![false; self.platform.len()];
        let mut failures = 0usize;
        let mut recoveries_total = 0u64;
        let mut fired = vec![false; self.faults.len()];

        // ── Large pairs: serial, full surviving platform, in-run recovery.
        for &idx in &plan.large {
            // Between-pairs cancellation point (a large pair also polls the
            // token at its own checkpoint boundaries below).
            if self.is_cancelled() {
                return Err(MegaswError::Pipeline(PipelineError::Cancelled));
            }
            let job = &self.jobs[idx];
            // Survivor chain, remembering each position's original index.
            let survivors: Vec<usize> = (0..self.platform.len())
                .filter(|&d| !blacklist[d])
                .collect();
            let plat = Platform::custom(
                format!("{} [batch survivors]", self.platform.name),
                survivors
                    .iter()
                    .map(|&d| self.platform.devices[d].clone())
                    .collect(),
            );
            let mut run = PipelineRun::new(&job.a, &job.b, &plat).config(self.job_config(idx));
            if let Some(token) = &self.cancel {
                run = run.cancel(Arc::clone(token));
            }
            if let Some(pol) = self.recovery {
                // Hand the inner run the *remaining* batch-wide budget.
                let remaining = pol.max_device_failures.saturating_sub(failures);
                if remaining > 0 {
                    run = run.recover(RecoveryPolicy {
                        max_device_failures: remaining,
                    });
                }
            }
            let mut pair_faults: Vec<ScheduledFault> = Vec::new();
            for (fi, bf) in self.faults.iter().enumerate() {
                if bf.pair != idx || fired[fi] {
                    continue;
                }
                // Remap the fault's original device index onto its survivor
                // position; a fault aimed at an already-dead device is moot.
                if let Some(pos) = survivors.iter().position(|&d| d == bf.fault.device) {
                    pair_faults.push(ScheduledFault {
                        device: pos,
                        ..bf.fault
                    });
                }
                fired[fi] = true;
            }
            if !pair_faults.is_empty() {
                run = run.faults(FaultSchedule::from(pair_faults));
            }
            let t = Instant::now();
            let report = run.run()?;
            if let Some(rec) = &report.recovery {
                recoveries_total += rec.recoveries;
                failures += rec.failed_devices.len();
                for &pos in &rec.failed_devices {
                    if let Some(&orig) = survivors.get(pos) {
                        blacklist[orig] = true;
                    }
                }
                if let Some(live) = &self.live {
                    for _ in 0..rec.recoveries {
                        live.on_recovery();
                    }
                }
            }
            if let Some(live) = &self.live {
                for (pos, dev) in report.devices.iter().enumerate() {
                    if let Some(&orig) = survivors.get(pos) {
                        live.on_row_done(orig, u64::try_from(dev.cells).unwrap_or(u64::MAX), 0);
                    }
                }
                live.on_pair_done();
            }
            outcomes[idx] = Some(JobOutcome {
                pair: idx,
                id: job.id.clone(),
                m: job.a.len(),
                n: job.b.len(),
                cells: job.cells(),
                best: report.best,
                device: None,
                large: true,
                latency: t.elapsed(),
                recoveries: report.recovery.as_ref().map_or(0, |r| r.recoveries),
            });
        }

        // ── Small pairs: one worker per surviving device drains the queue.
        //
        // A worker that loses its device requeues its in-flight pair and
        // exits — but its peers may already have drained out on a briefly
        // empty queue, orphaning the requeue. Each round therefore restarts
        // workers on the surviving devices while work remains; a new round
        // only happens after at least one fresh device loss, so the loop
        // terminates within `platform.len()` rounds.
        let mut queue: VecDeque<usize> = plan.queue_order().into();
        let mut requeued = 0u64;
        while !queue.is_empty() && blacklist.iter().any(|&b| !b) && !self.is_cancelled() {
            let wq = WorkQueue {
                jobs: self.jobs,
                queue: Mutex::new(std::mem::take(&mut queue)),
                outcomes: Mutex::new(outcomes),
                fired: Mutex::new(fired),
                failures: Mutex::new(failures),
                failed: Mutex::new(Vec::new()),
                requeued: Mutex::new(0),
                fatal: Mutex::new(None),
            };
            std::thread::scope(|s| {
                for (d, dev) in self.platform.devices.iter().enumerate() {
                    if blacklist[d] {
                        continue;
                    }
                    let wq = &wq;
                    let faults = &self.faults;
                    let live = self.live.clone();
                    let base = &self.config.base;
                    let recovery = self.recovery;
                    let cancel = self.cancel.clone();
                    let dev = dev.clone();
                    s.spawn(move || {
                        let single = Platform::single(dev);
                        loop {
                            if wq.fatal.lock().unwrap().is_some() {
                                break;
                            }
                            // Between-pairs cancellation point: leave the
                            // rest of the queue untouched and exit.
                            if cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                                break;
                            }
                            let Some(idx) = wq.queue.lock().unwrap().pop_front() else {
                                break;
                            };
                            let job = &wq.jobs[idx];
                            let cfg = job.config.clone().unwrap_or_else(|| base.clone());
                            let mut run = PipelineRun::new(&job.a, &job.b, &single).config(cfg);
                            {
                                let mut fired = wq.fired.lock().unwrap();
                                let mut pair_faults: Vec<ScheduledFault> = Vec::new();
                                for (fi, bf) in faults.iter().enumerate() {
                                    if bf.pair == idx && !fired[fi] {
                                        // Whole-pair dispatch: the single-device
                                        // chain has only device 0.
                                        pair_faults.push(ScheduledFault {
                                            device: 0,
                                            ..bf.fault
                                        });
                                        fired[fi] = true;
                                    }
                                }
                                if !pair_faults.is_empty() {
                                    run = run.faults(FaultSchedule::from(pair_faults));
                                }
                            }
                            let t = Instant::now();
                            match run.run() {
                                Ok(report) => {
                                    if let Some(live) = &live {
                                        live.on_row_done(
                                            d,
                                            u64::try_from(job.cells()).unwrap_or(u64::MAX),
                                            0,
                                        );
                                        live.on_pair_done();
                                    }
                                    let slot = &mut wq.outcomes.lock().unwrap()[idx];
                                    debug_assert!(slot.is_none(), "pair {idx} reported twice");
                                    *slot = Some(JobOutcome {
                                        pair: idx,
                                        id: job.id.clone(),
                                        m: job.a.len(),
                                        n: job.b.len(),
                                        cells: job.cells(),
                                        best: report.best,
                                        device: Some(d),
                                        large: false,
                                        latency: t.elapsed(),
                                        recoveries: 0,
                                    });
                                }
                                Err(e) => {
                                    let is_device_loss = matches!(
                                        e.as_pipeline(),
                                        Some(
                                            PipelineError::DeviceFault { .. }
                                                | PipelineError::RingPoisoned { .. }
                                        )
                                    );
                                    if is_device_loss && recovery.is_some() {
                                        let mut failures = wq.failures.lock().unwrap();
                                        *failures += 1;
                                        if *failures <= max_failures {
                                            // Device is gone; the pair goes back
                                            // to the front of the queue for a
                                            // survivor. This worker exits.
                                            wq.queue.lock().unwrap().push_front(idx);
                                            wq.failed.lock().unwrap().push(d);
                                            *wq.requeued.lock().unwrap() += 1;
                                            if let Some(live) = &live {
                                                live.on_recovery();
                                            }
                                            break;
                                        }
                                    }
                                    *wq.fatal.lock().unwrap() = Some(e);
                                    break;
                                }
                            }
                        }
                    });
                }
            });

            if let Some(e) = wq.fatal.into_inner().unwrap() {
                return Err(e);
            }
            queue = wq.queue.into_inner().unwrap();
            outcomes = wq.outcomes.into_inner().unwrap();
            fired = wq.fired.into_inner().unwrap();
            failures = wq.failures.into_inner().unwrap();
            requeued += wq.requeued.into_inner().unwrap();
            for d in wq.failed.into_inner().unwrap() {
                blacklist[d] = true;
            }
        }
        let _ = (failures, fired); // the shared state already bounded the run
        if let Some(missing) = outcomes.iter().position(Option::is_none) {
            if self.is_cancelled() {
                return Err(MegaswError::Pipeline(PipelineError::Cancelled));
            }
            // Every worker died with work still queued (budget allowed it).
            return Err(MegaswError::Pipeline(PipelineError::DeviceFault {
                device: self.platform.len().saturating_sub(1),
                block_row: missing,
            }));
        }
        let pairs: Vec<JobOutcome> = outcomes.into_iter().map(Option::unwrap).collect();

        let wall_time = t0.elapsed();
        let mut latencies: Vec<Duration> = pairs.iter().map(|p| p.latency).collect();
        latencies.sort_unstable();
        let failed_devices: Vec<usize> =
            (0..self.platform.len()).filter(|&d| blacklist[d]).collect();
        recoveries_total += requeued;

        Ok(BatchReport {
            small_pairs: pairs.iter().filter(|p| !p.large).count(),
            large_pairs: plan.large.len(),
            bins: plan.bins.len(),
            total_cells,
            gcups_wall: if wall_time.as_secs_f64() > 0.0 {
                total_cells as f64 / wall_time.as_secs_f64() / 1e9
            } else {
                0.0
            },
            wall_time,
            requeued,
            recoveries: recoveries_total,
            failed_devices,
            latency_p50: percentile(&latencies, 50.0),
            latency_p90: percentile(&latencies, 90.0),
            latency_p99: percentile(&latencies, 99.0),
            pairs,
        })
    }
}

// ───────────────────────────── DES twin ─────────────────────────────

/// A size-only batch job for the DES twin: timing needs dimensions, not
/// bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    pub m: usize,
    pub n: usize,
}

impl BatchSpec {
    pub fn cells(&self) -> u128 {
        self.m as u128 * self.n as u128
    }
}

/// Simulated batch accounting: the packed queue's makespan versus the
/// serial one-pair-at-a-time baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSimReport {
    /// Simulated makespan of the batch schedule (large pairs serial on the
    /// full platform, then small pairs packed across devices).
    pub packed: Duration,
    /// Simulated time to align every pair one-at-a-time on the full
    /// platform — what the pre-batch stack would do.
    pub serial: Duration,
    pub small_pairs: usize,
    pub large_pairs: usize,
    pub bins: usize,
    /// Small pairs each device executed in the packed schedule.
    pub per_device_pairs: Vec<usize>,
    pub total_cells: u128,
    /// Simulated GCUPS of the packed schedule.
    pub gcups_sim: f64,
}

impl BatchSimReport {
    /// How much faster the packed batch finishes than the serial baseline
    /// (>1 means packing wins; ≥2 on small-pair-heavy manifests).
    pub fn packing_speedup(&self) -> f64 {
        let packed = self.packed.as_secs_f64();
        if packed > 0.0 {
            self.serial.as_secs_f64() / packed
        } else {
            1.0
        }
    }
}

impl std::fmt::Display for BatchSimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch sim: packed {:.4}s vs serial {:.4}s ({:.2}x packing speedup) · {:.3} GCUPS sim · {} small / {} large",
            self.packed.as_secs_f64(),
            self.serial.as_secs_f64(),
            self.packing_speedup(),
            self.gcups_sim,
            self.small_pairs,
            self.large_pairs,
        )
    }
}

/// The DES mirror of [`BatchRun`]: models the same length-sorted queue in
/// simulated time. Fully deterministic — same specs, platform and config
/// produce bit-identical durations, so bench anchors can pin the packing
/// speedup.
///
/// Small pairs are packed greedily: the next queued pair goes to the device
/// that frees up earliest (ties to the lowest index), mirroring the
/// threaded engine's "idle worker pops next" behaviour without its timing
/// races.
pub struct BatchSim<'a> {
    specs: &'a [BatchSpec],
    platform: &'a Platform,
    config: BatchConfig,
}

impl<'a> BatchSim<'a> {
    pub fn new(specs: &'a [BatchSpec], platform: &'a Platform) -> BatchSim<'a> {
        BatchSim {
            specs,
            platform,
            config: BatchConfig::default(),
        }
    }

    pub fn config(mut self, config: BatchConfig) -> Self {
        self.config = config;
        self
    }

    /// Simulated pipeline time of one pair on `platform` (memoised by the
    /// caller). Degenerate pairs cost zero.
    fn sim_one(&self, m: usize, n: usize, platform: &Platform) -> Duration {
        if m == 0 || n == 0 {
            return Duration::ZERO;
        }
        let run = DesSim::new(m, n, platform)
            .config(self.config.base.clone())
            .run();
        Duration::from_nanos(run.report.sim_time.map_or(0, |t| t.as_nanos()))
    }

    pub fn run(&self) -> BatchSimReport {
        let cells: Vec<u128> = self.specs.iter().map(BatchSpec::cells).collect();
        let plan = BatchPlan::build_from_cells(&cells, &self.config);
        let total_cells: u128 = cells.iter().sum();
        let ndev = self.platform.len().max(1);

        // Memoise per unique (m, n) — length-sorted batches repeat sizes.
        let mut full_cache: BTreeMap<(usize, usize), Duration> = BTreeMap::new();
        let mut single_cache: BTreeMap<(usize, usize, usize), Duration> = BTreeMap::new();
        let singles: Vec<Platform> = self
            .platform
            .devices
            .iter()
            .map(|d| Platform::single(d.clone()))
            .collect();

        let mut serial = Duration::ZERO;
        for spec in self.specs {
            let t = *full_cache
                .entry((spec.m, spec.n))
                .or_insert_with(|| self.sim_one(spec.m, spec.n, self.platform));
            serial += t;
        }

        let mut packed = Duration::ZERO;
        for &idx in &plan.large {
            let spec = self.specs[idx];
            packed += full_cache[&(spec.m, spec.n)];
        }
        let mut finish = vec![Duration::ZERO; ndev];
        let mut per_device_pairs = vec![0usize; ndev];
        for idx in plan.queue_order() {
            let spec = self.specs[idx];
            // Earliest-free device, lowest index on ties.
            let d = (0..ndev).min_by_key(|&d| (finish[d], d)).unwrap();
            let t = *single_cache
                .entry((spec.m, spec.n, d))
                .or_insert_with(|| self.sim_one(spec.m, spec.n, &singles[d]));
            finish[d] += t;
            per_device_pairs[d] += 1;
        }
        packed += finish.iter().copied().max().unwrap_or(Duration::ZERO);

        let gcups_sim = if packed.as_secs_f64() > 0.0 {
            total_cells as f64 / packed.as_secs_f64() / 1e9
        } else {
            0.0
        };
        BatchSimReport {
            packed,
            serial,
            small_pairs: plan.bins.iter().map(|b| b.pairs.len()).sum(),
            large_pairs: plan.large.len(),
            bins: plan.bins.len(),
            per_device_pairs,
            total_cells,
            gcups_sim,
        }
    }
}

// ─────────────────────── manifest / FASTA loading ───────────────────────

/// Load a batch by zipping two many-record FASTA files record-by-record:
/// record `i` of `a_path` aligns against record `i` of `b_path`. Errors if
/// the files hold different record counts.
pub fn jobs_from_fasta_pair(
    a_path: impl AsRef<Path>,
    b_path: impl AsRef<Path>,
) -> Result<Vec<BatchJob>, String> {
    let a_path = a_path.as_ref();
    let b_path = b_path.as_ref();
    let ra = read_fasta_path(a_path).map_err(|e| format!("reading {}: {e}", a_path.display()))?;
    let rb = read_fasta_path(b_path).map_err(|e| format!("reading {}: {e}", b_path.display()))?;
    if ra.len() != rb.len() {
        return Err(format!(
            "record count mismatch: {} has {} records, {} has {}",
            a_path.display(),
            ra.len(),
            b_path.display(),
            rb.len()
        ));
    }
    Ok(ra
        .into_iter()
        .zip(rb)
        .map(|(a, b)| {
            BatchJob::new(
                format!("{}|{}", a.id(), b.id()),
                a.seq.codes().to_vec(),
                b.seq.codes().to_vec(),
            )
        })
        .collect())
}

/// Load a batch from a manifest: one pair per line, two whitespace-separated
/// FASTA paths (first record of each file). Blank lines and `#` comments are
/// skipped; relative paths resolve against the manifest's directory.
pub fn jobs_from_manifest(path: impl AsRef<Path>) -> Result<Vec<BatchJob>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading manifest {}: {e}", path.display()))?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut jobs = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(pa), Some(pb), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "manifest {} line {}: expected two FASTA paths, got `{line}`",
                path.display(),
                line_no + 1
            ));
        };
        let resolve = |p: &str| {
            let pb = Path::new(p);
            if pb.is_absolute() {
                pb.to_path_buf()
            } else {
                dir.join(pb)
            }
        };
        let (fa, fb) = (resolve(pa), resolve(pb));
        let a =
            read_single_fasta_path(&fa).map_err(|e| format!("reading {}: {e}", fa.display()))?;
        let b =
            read_single_fasta_path(&fb).map_err(|e| format!("reading {}: {e}", fb.display()))?;
        jobs.push(BatchJob::new(
            format!("{}|{}", a.id(), b.id()),
            a.seq.codes().to_vec(),
            b.seq.codes().to_vec(),
        ));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruneMode;

    fn sized_jobs(sizes: &[(usize, usize)]) -> Vec<BatchJob> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &(m, n))| {
                BatchJob::new(
                    format!("p{i}"),
                    (0..m).map(|k| (k % 4) as u8).collect(),
                    (0..n).map(|k| ((k + 1) % 4) as u8).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn plan_tiles_jobs_exactly() {
        let jobs = sized_jobs(&[(10, 10), (500, 500), (3, 7), (0, 9), (80, 80)]);
        let cfg = BatchConfig::test_default()
            .with_large_threshold_cells(100_000)
            .with_bins(3);
        let plan = BatchPlan::build(&jobs, &cfg);
        let mut all = plan.scheduled();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(plan.large, vec![1]);
    }

    #[test]
    fn plan_orders_bins_by_descending_size() {
        let jobs = sized_jobs(&[(10, 10), (40, 40), (20, 20), (30, 30)]);
        let cfg = BatchConfig::test_default().with_bins(2);
        let plan = BatchPlan::build(&jobs, &cfg);
        assert_eq!(plan.queue_order(), vec![1, 3, 2, 0]);
        assert_eq!(plan.bins.len(), 2);
        assert_eq!(plan.bins[0].pairs, vec![1, 3]);
    }

    #[test]
    fn bins_clamp_to_pair_count() {
        let jobs = sized_jobs(&[(5, 5), (6, 6)]);
        let cfg = BatchConfig::test_default().with_bins(16);
        let plan = BatchPlan::build(&jobs, &cfg);
        assert_eq!(plan.bins.len(), 2);
    }

    #[test]
    fn batch_fault_parse_roundtrip() {
        let bf: BatchFault = "3@1:10:ring-push".parse().unwrap();
        assert_eq!(bf.pair, 3);
        assert_eq!(bf.fault.device, 1);
        assert_eq!(bf.to_string(), "3@1:10:ring-push");
        assert!("3:1:10".parse::<BatchFault>().is_err());
    }

    #[test]
    fn small_batch_runs_and_reports_every_pair() {
        let jobs = sized_jobs(&[(64, 64), (33, 57), (0, 12), (7, 7)]);
        let report = BatchRun::new(&jobs, &Platform::env1())
            .config(BatchConfig::test_default())
            .run()
            .unwrap();
        assert_eq!(report.pairs.len(), 4);
        for (i, p) in report.pairs.iter().enumerate() {
            assert_eq!(p.pair, i);
            assert!(!p.large);
        }
        assert_eq!(report.pairs[2].best.score, 0);
        assert_eq!(report.small_pairs, 4);
        assert_eq!(report.large_pairs, 0);
    }

    #[test]
    fn per_pair_config_override_is_honoured() {
        let mut jobs = sized_jobs(&[(96, 96), (96, 96)]);
        jobs[1].config = Some(RunConfig::test_default().with_pruning(PruneMode::Distributed));
        let report = BatchRun::new(&jobs, &Platform::env1())
            .config(BatchConfig::test_default())
            .run()
            .unwrap();
        // Pruning is score-transparent: both identical pairs score equally.
        assert_eq!(report.pairs[0].best, report.pairs[1].best);
    }

    #[test]
    fn metrics_carry_batch_counters() {
        let jobs = sized_jobs(&[(32, 32), (16, 16)]);
        let report = BatchRun::new(&jobs, &Platform::env1())
            .config(BatchConfig::test_default())
            .run()
            .unwrap();
        let m = report.metrics();
        assert_eq!(m.counter("batch.pairs_total"), Some(2));
        assert_eq!(m.counter("batch.pairs_small"), Some(2));
        assert_eq!(m.counter("batch.requeued_total"), Some(0));
    }

    #[test]
    fn des_twin_is_deterministic_and_packing_wins_on_small_pairs() {
        let specs: Vec<BatchSpec> = (0..24)
            .map(|i| BatchSpec {
                m: 3_000 + 37 * i,
                n: 3_000 + 53 * i,
            })
            .collect();
        let env2 = Platform::env2();
        let r1 = BatchSim::new(&specs, &env2)
            .config(BatchConfig::default())
            .run();
        let r2 = BatchSim::new(&specs, &env2)
            .config(BatchConfig::default())
            .run();
        assert_eq!(r1, r2);
        assert!(
            r1.packing_speedup() >= 2.0,
            "packing speedup {} < 2",
            r1.packing_speedup()
        );
        assert_eq!(r1.per_device_pairs.iter().sum::<usize>(), 24);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let lat: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile(&lat, 50.0), Duration::from_millis(5));
        assert_eq!(percentile(&lat, 90.0), Duration::from_millis(9));
        assert_eq!(percentile(&lat, 99.0), Duration::from_millis(10));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }
}
