//! Randomized property tests for the schedule engine and timing models:
//! causality, FIFO serialization, determinism and conservation laws.
//!
//! Deterministic seeded sweeps: the crate is dependency-free, so a local
//! SplitMix64 drives the case generation; every failure reproduces from the
//! printed case index.

use megasw_gpusim::{
    catalog, DeviceSpec, KernelModel, LinkSpec, Schedule, SimTime, SpanKind, TaskId,
};

const CASES: u64 = 64;

/// SplitMix64 — tiny, well-distributed, and all this file needs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..hi` (`hi > lo`); modulo bias is irrelevant here.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A random DAG workload: tasks assigned round-robin to resources, each
/// depending on a random subset of earlier tasks.
#[derive(Debug, Clone)]
struct Workload {
    resources: usize,
    // (resource, duration_ns, dep_indices as offsets into earlier tasks)
    tasks: Vec<(usize, u64, Vec<usize>)>,
}

fn workload(rng: &mut Rng) -> Workload {
    let resources = rng.range(1, 5) as usize;
    let n_tasks = rng.range(0, 60) as usize;
    let tasks = (0..n_tasks)
        .map(|idx| {
            let r = rng.range(0, resources as u64) as usize;
            let dur = rng.range(1, 10_000);
            let n_deps = rng.range(0, 3) as usize;
            let deps = (0..n_deps)
                .map(|_| rng.range(0, idx.max(1) as u64) as usize)
                .collect();
            (r, dur, deps)
        })
        .collect();
    Workload { resources, tasks }
}

fn build(w: &Workload) -> (Schedule, Vec<TaskId>) {
    let mut s = Schedule::new();
    let res: Vec<_> = (0..w.resources)
        .map(|i| s.add_resource(format!("r{i}")))
        .collect();
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, (r, dur, deps)) in w.tasks.iter().enumerate() {
        let dep_ids: Vec<TaskId> = if i == 0 {
            Vec::new()
        } else {
            deps.iter().map(|&d| ids[d % i]).collect()
        };
        let id = s.add_task(
            res[*r],
            &dep_ids,
            SimTime::from_nanos(*dur),
            SpanKind::Other,
            i as u64,
        );
        ids.push(id);
    }
    (s, ids)
}

#[test]
fn causality_deps_finish_before_start() {
    for case in 0..CASES {
        let w = workload(&mut Rng::new(0x6A_01 + case));
        let (s, ids) = build(&w);
        for (i, (_, _, deps)) in w.tasks.iter().enumerate() {
            for &d in deps {
                if i > 0 {
                    let dep = ids[d % i];
                    assert!(
                        s.finish_of(dep) <= s.start_of(ids[i]),
                        "case {case}, task {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn fifo_resources_never_overlap() {
    for case in 0..CASES {
        let w = workload(&mut Rng::new(0x6A_02 + case));
        let (s, ids) = build(&w);
        // Spans on one resource are disjoint and in insertion order.
        for r in 0..w.resources {
            let mut last_finish = SimTime::ZERO;
            for (i, (tr, _, _)) in w.tasks.iter().enumerate() {
                if *tr == r {
                    assert!(s.start_of(ids[i]) >= last_finish, "case {case}, task {i}");
                    last_finish = s.finish_of(ids[i]);
                }
            }
        }
    }
}

#[test]
fn makespan_and_busy_conservation() {
    for case in 0..CASES {
        let w = workload(&mut Rng::new(0x6A_03 + case));
        let (s, ids) = build(&w);
        let max_finish = ids
            .iter()
            .map(|&t| s.finish_of(t))
            .fold(SimTime::ZERO, SimTime::max);
        assert_eq!(s.makespan(), max_finish, "case {case}");
        // Busy time per resource = sum of its durations; utilization ≤ 1.
        for r in 0..w.resources {
            let rid = s.resource_list()[r].0;
            let total: u64 = w
                .tasks
                .iter()
                .filter(|(tr, _, _)| *tr == r)
                .map(|(_, d, _)| *d)
                .sum();
            assert_eq!(s.busy_of(rid), SimTime::from_nanos(total), "case {case}");
            assert!(s.utilization(rid) <= 1.0 + 1e-12, "case {case}");
        }
    }
}

#[test]
fn replay_determinism() {
    for case in 0..CASES {
        let w = workload(&mut Rng::new(0x6A_04 + case));
        let (s1, _) = build(&w);
        let (s2, _) = build(&w);
        assert_eq!(s1.makespan(), s2.makespan(), "case {case}");
        assert_eq!(s1.spans(), s2.spans(), "case {case}");
    }
}

#[test]
fn durations_add_up_in_spans() {
    for case in 0..CASES {
        let w = workload(&mut Rng::new(0x6A_05 + case));
        let (s, _) = build(&w);
        let span_total: u64 = s.spans().iter().map(|sp| sp.duration().as_nanos()).sum();
        let task_total: u64 = w.tasks.iter().map(|(_, d, _)| *d).sum();
        assert_eq!(span_total, task_total, "case {case}");
    }
}

#[test]
fn link_transfer_time_is_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6A_06 + case);
        let bytes1 = rng.range(0, 100_000_000);
        let bytes2 = rng.range(0, 100_000_000);
        let lat = rng.range(0, 100_000);
        let bw_mbps = rng.range(1, 100_000) as u32;
        let link = LinkSpec {
            latency_ns: lat,
            bandwidth_bytes_per_sec: bw_mbps as f64 * 1e6,
        };
        let (lo, hi) = if bytes1 <= bytes2 {
            (bytes1, bytes2)
        } else {
            (bytes2, bytes1)
        };
        assert!(
            link.transfer_time(lo) <= link.transfer_time(hi),
            "case {case}"
        );
        assert!(
            link.transfer_time(lo) >= SimTime::from_nanos(lat),
            "case {case}"
        );
    }
}

#[test]
fn kernel_time_monotone_in_cells_and_antitone_in_blocks() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6A_07 + case);
        let cells1 = rng.range(0, 10_000_000_000);
        let cells2 = rng.range(0, 10_000_000_000);
        let blocks = rng.range(1, 64) as u32;
        let model = KernelModel::new(catalog::gtx680());
        let (lo, hi) = if cells1 <= cells2 {
            (cells1, cells2)
        } else {
            (cells2, cells1)
        };
        assert!(
            model.launch_time(blocks, lo) <= model.launch_time(blocks, hi),
            "case {case}"
        );
        // More blocks never slow a launch down.
        assert!(
            model.launch_time(blocks + 1, hi) <= model.launch_time(blocks, hi),
            "case {case}"
        );
    }
}

#[test]
fn peak_gcups_scales_with_sms() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6A_08 + case);
        let sms = rng.range(1, 64) as u32;
        let clock = rng.range(100, 2_000) as u32;
        let base = DeviceSpec {
            name: "x".into(),
            sms,
            clock_mhz: clock,
            cells_per_cycle_per_sm: 3.0,
            mem_mib: 1024,
            link: LinkSpec::pcie2_x16(),
            launch_overhead_ns: 0,
        };
        let double = DeviceSpec {
            sms: sms * 2,
            ..base.clone()
        };
        assert!(
            (double.peak_gcups() / base.peak_gcups() - 2.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn simtime_arithmetic_laws() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6A_09 + case);
        let a = rng.range(0, u64::MAX / 4);
        let b = rng.range(0, u64::MAX / 4);
        let x = SimTime::from_nanos(a);
        let y = SimTime::from_nanos(b);
        assert_eq!(x + y, y + x, "case {case}");
        assert_eq!((x + y).saturating_sub(y), x, "case {case}");
        assert_eq!(x.max(y), y.max(x), "case {case}");
    }
}
