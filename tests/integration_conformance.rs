//! Differential conformance: four independent implementations of the same
//! problem must agree on every seeded combination of shape, block geometry,
//! buffer capacity, and platform.
//!
//! * the **reference DP** (`gotoh_best`) is ground truth;
//! * the **threaded pipeline** must match it bit-for-bit (score *and*
//!   end-point);
//! * the **banded scan** (`banded_adaptive`) must converge to the same best
//!   cell from a narrow initial band;
//! * the **DES backend** computes no scores, so it is held to structural
//!   invariants instead: every device covers its slab, the slabs tile the
//!   matrix exactly, and the simulated clock advances.
//!
//! Each combination is labelled, so one divergent case fails with enough
//! context to replay it by hand.

use megasw::prelude::*;
use megasw::sw::banded::BandedResult;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

/// Adaptive banded scan via the kernel trait (same phase-out).
fn banded_adaptive(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    kernel::scalar().banded_adaptive(a, b, scheme, width)
}

struct Combo {
    label: String,
    a: DnaSeq,
    b: DnaSeq,
    platform: Platform,
    cfg: RunConfig,
}

/// The ~40-case seeded matrix: 5 sequence shapes × 4 geometry/capacity
/// settings × 2 platforms.
fn combos() -> Vec<Combo> {
    let shapes: &[(usize, u64, &str)] = &[
        (1_200, 0x4D_10, "short"),
        (2_400, 0x4D_11, "medium"),
        (3_600, 0x4D_12, "long"),
        (2_000, 0x4D_13, "snp-heavy"),
        (1_700, 0x4D_14, "indel-heavy"),
    ];
    let geometries: &[(usize, usize, usize, &str)] = &[
        // (block_h, block_w, capacity, label)
        (64, 64, 8, "square64"),
        (32, 128, 1, "wide-cap1"),
        (128, 33, 2, "tall-odd"),
        (256, 256, 4, "square256"),
    ];
    let mut out = Vec::new();
    for &(len, seed, shape) in shapes {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
        let model = match shape {
            "snp-heavy" => DivergenceModel::snp_only(seed, 0.10),
            "indel-heavy" => DivergenceModel::human_chimp_scaled(seed, len),
            _ => DivergenceModel::test_scale(seed + 7),
        };
        let (b, _) = model.apply(&a);
        for &(bh, bw, cap, geom) in geometries {
            for (platform, pname) in [(Platform::env1(), "env1"), (Platform::env2(), "env2")] {
                let mut cfg = RunConfig::paper_default().with_buffer_capacity(cap);
                cfg.block_h = bh;
                cfg.block_w = bw;
                out.push(Combo {
                    label: format!("{shape}/{geom}/{pname}"),
                    a: a.clone(),
                    b: b.clone(),
                    platform,
                    cfg,
                });
            }
        }
    }
    out
}

#[test]
fn threaded_pipeline_matches_reference_on_every_combo() {
    for c in combos() {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(c.cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", c.label));
        assert_eq!(report.best, want, "{}", c.label);
        assert_eq!(
            report.total_cells,
            (c.a.len() as u128) * (c.b.len() as u128),
            "{}",
            c.label
        );
    }
}

#[test]
fn banded_scan_converges_to_the_reference_on_every_shape() {
    // The scan depends only on the sequences and scheme, not the platform
    // or geometry — deduplicate to one check per shape.
    let mut seen = std::collections::BTreeSet::new();
    for c in combos() {
        let shape = c.label.split('/').next().unwrap().to_string();
        if !seen.insert(shape) {
            continue;
        }
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let banded = banded_adaptive(c.a.codes(), c.b.codes(), &c.cfg.scheme, 16);
        assert_eq!(banded.best, want, "{}", c.label);
        assert!(
            banded.cells_computed <= (c.a.len() as u128) * (c.b.len() as u128),
            "{}: banded computed more cells than the full matrix",
            c.label
        );
    }
}

#[test]
fn des_backend_is_structurally_sound_on_every_combo() {
    for c in combos() {
        let run = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone())
            .run();
        let r = &run.report;
        assert!(run.aborted.is_none(), "{}", c.label);
        assert!(run.losses.is_empty(), "{}", c.label);
        assert_eq!(
            r.total_cells,
            (c.a.len() as u128) * (c.b.len() as u128),
            "{}",
            c.label
        );
        // Slabs tile the columns exactly, in chain order.
        let mut next_col = 1;
        for d in &r.devices {
            assert_eq!(d.slab_j0, next_col, "{}", c.label);
            next_col += d.slab_width;
        }
        assert_eq!(next_col, c.b.len() + 1, "{}", c.label);
        let sim = r
            .sim_time
            .unwrap_or_else(|| panic!("{}: no sim time", c.label));
        assert!(sim.as_nanos() > 0, "{}", c.label);
        assert!(r.gcups_sim.unwrap() > 0.0, "{}", c.label);
    }
}

#[test]
fn pruned_threaded_pipeline_stays_bit_identical_on_every_combo() {
    // Block pruning emits substitute borders instead of computing skipped
    // tiles; on every shape × geometry × platform the best cell (score AND
    // end-point) must still match the reference exactly. Distributed
    // pruning runs the full matrix; Local runs a sampled subset.
    for (idx, c) in combos().into_iter().enumerate() {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let modes: &[PruneMode] = if idx % 3 == 0 {
            &[PruneMode::Local, PruneMode::Distributed]
        } else {
            &[PruneMode::Distributed]
        };
        for &mode in modes {
            let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
                .config(c.cfg.clone().with_pruning(mode))
                .run()
                .unwrap_or_else(|e| panic!("{}/{mode}: pipeline failed: {e}", c.label));
            assert_eq!(report.best, want, "{}/{mode}", c.label);
            let pr = report.pruning.unwrap();
            assert!(pr.tiles_pruned <= pr.tiles_total, "{}/{mode}", c.label);
            assert!(pr.watermark_lag >= 0, "{}/{mode}", c.label);
        }
    }
}

#[test]
fn pruned_recovery_after_fault_stays_bit_identical() {
    // The distributed watermark is checkpointed and re-seeded after a
    // device death; a recovered pruned run must still match the fault-free
    // unpruned reference bit-for-bit.
    for c in combos().into_iter().step_by(9) {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let cfg = c
            .cfg
            .clone()
            .with_pruning(PruneMode::Distributed)
            .with_checkpoint(CheckpointCadence::EveryRows(4));
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(cfg)
            .faults(ScheduledFault {
                device: 1,
                block_row: 6,
                phase: FaultPhase::Compute,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: pruned recovery failed: {e}", c.label));
        assert_eq!(report.best, want, "{}", c.label);
        assert_eq!(report.recovery.unwrap().recoveries, 1, "{}", c.label);
        assert!(report.pruning.is_some(), "{}", c.label);
    }
}

#[test]
fn pruned_des_mirror_is_structurally_sound() {
    // The DES twin models the same protocol analytically: its accounting
    // must stay internally consistent, and pruning must never slow the
    // simulated clock down.
    for c in combos().into_iter().step_by(7) {
        let plain = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone())
            .identity(0.95)
            .run();
        let pruned = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone().with_pruning(PruneMode::Distributed))
            .identity(0.95)
            .run();
        assert!(pruned.aborted.is_none(), "{}", c.label);
        let pr = pruned.report.pruning.as_ref().unwrap();
        assert!(pr.tiles_pruned <= pr.tiles_total, "{}", c.label);
        assert!(pr.cells_skipped <= pruned.report.total_cells, "{}", c.label);
        assert!(pr.watermark_lag >= 0, "{}", c.label);
        assert!(
            pruned.report.sim_time.unwrap() <= plain.report.sim_time.unwrap(),
            "{}: pruning slowed the simulated clock",
            c.label
        );
    }
}

#[test]
fn watermark_is_monotone_and_never_exceeds_the_true_best() {
    // Property check on the live watermark gauge: sampled while the
    // threaded run executes, each device's watermark must only ever grow,
    // and can never exceed the true global best — it folds only
    // actually-observed cell scores.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let a = ChromosomeGenerator::new(GenerateConfig::sized(6_000, 0x4D_77)).generate();
    let (b, _) = DivergenceModel::snp_only(0x4D_78, 0.01).apply(&a);
    let want = gotoh_best(a.codes(), b.codes(), &ScoreScheme::cudalign());
    let platform = Platform::env2();
    let cfg = RunConfig::paper_default()
        .with_block(64)
        .with_pruning(PruneMode::Distributed);
    let live = LiveTelemetry::new(
        platform.len(),
        (a.len() as u64).saturating_mul(b.len() as u64),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let live = Arc::clone(&live);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut traces: Vec<Vec<i64>> = vec![Vec::new(); 3];
            while !stop.load(Ordering::Relaxed) {
                let snap = live.snapshot();
                for (trace, d) in traces.iter_mut().zip(&snap.devices) {
                    trace.push(d.watermark);
                }
                std::thread::yield_now();
            }
            traces
        })
    };
    let report = PipelineRun::new(a.codes(), b.codes(), &platform)
        .config(cfg)
        .live(Arc::clone(&live))
        .run()
        .unwrap();
    stop.store(true, Ordering::Relaxed);
    let traces = poller.join().unwrap();

    assert_eq!(report.best, want);
    for (device, trace) in traces.iter().enumerate() {
        assert!(
            trace.windows(2).all(|w| w[0] <= w[1]),
            "gpu{device}: watermark went backwards"
        );
    }
    let last = live.snapshot();
    for d in &last.devices {
        assert!(
            d.watermark <= i64::from(want.score),
            "watermark {} exceeds the true best {}",
            d.watermark,
            want.score
        );
    }
}

/// Every dispatch mode the host supports (forced scalar always; forced
/// SSE4.1/AVX2 when the CPU has them), for the dispatch-axis tests below.
fn available_dispatches() -> Vec<KernelDispatch> {
    [
        KernelDispatch::ForceScalar,
        KernelDispatch::ForceSse41,
        KernelDispatch::ForceAvx2,
    ]
    .into_iter()
    .filter(|&d| kernel::select(d).is_ok())
    .collect()
}

#[test]
fn every_dispatch_mode_is_bit_identical_on_sampled_combos() {
    // The dispatch axis of the conformance matrix: each engine the host
    // supports must reproduce the reference best cell bit-for-bit, plain
    // and crossed with distributed pruning.
    for (idx, c) in combos().into_iter().enumerate().step_by(5) {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        for d in available_dispatches() {
            let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
                .config(c.cfg.clone().with_dispatch(d))
                .run()
                .unwrap_or_else(|e| panic!("{}/{d:?}: pipeline failed: {e}", c.label));
            assert_eq!(report.best, want, "{}/{d:?}", c.label);
            assert_eq!(report.kernel.dispatch, d, "{}/{d:?}", c.label);
            if idx % 2 == 0 {
                let pruned = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
                    .config(
                        c.cfg
                            .clone()
                            .with_dispatch(d)
                            .with_pruning(PruneMode::Distributed),
                    )
                    .run()
                    .unwrap_or_else(|e| panic!("{}/{d:?}/pruned: pipeline failed: {e}", c.label));
                assert_eq!(pruned.best, want, "{}/{d:?}/pruned", c.label);
            }
        }
    }
}

#[test]
fn every_dispatch_mode_survives_fault_recovery_bit_identically() {
    // Checkpointed border waves are extracted from whatever engine computed
    // them; resuming after a device death must stay exact on every engine.
    for c in combos().into_iter().step_by(13) {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        for d in available_dispatches() {
            let cfg = c
                .cfg
                .clone()
                .with_dispatch(d)
                .with_pruning(PruneMode::Distributed)
                .with_checkpoint(CheckpointCadence::EveryRows(4));
            let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
                .config(cfg)
                .faults(ScheduledFault {
                    device: 1,
                    block_row: 6,
                    phase: FaultPhase::Compute,
                })
                .recover(RecoveryPolicy::default())
                .run()
                .unwrap_or_else(|e| panic!("{}/{d:?}: recovery failed: {e}", c.label));
            assert_eq!(report.best, want, "{}/{d:?}", c.label);
            assert_eq!(report.recovery.unwrap().recoveries, 1, "{}/{d:?}", c.label);
        }
    }
}

#[test]
fn forced_scalar_equals_auto_on_random_megabase_windows() {
    // Seeded property test on the kernel surface itself: windows sampled
    // from a megabase homologous pair must score identically (score AND
    // tie-broken end point) under ForceScalar and Auto dispatch.
    use megasw::seq::rng::ChaCha8Rng;
    let human = ChromosomeGenerator::new(GenerateConfig::sized(1_000_000, 0x4D_99)).generate();
    let (chimp, _) = DivergenceModel::human_chimp_scaled(0x4D_9A, 1_000_000).apply(&human);
    let forced = kernel::select(KernelDispatch::ForceScalar).unwrap();
    let auto = kernel::select(KernelDispatch::Auto).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x4D_AB);
    for case in 0..6 {
        let wa = 2_000 + rng.gen_range(0..6_000usize);
        let wb = 2_000 + rng.gen_range(0..6_000usize);
        let ia = rng.gen_range(0..human.len() - wa);
        let ib = rng.gen_range(0..chimp.len() - wb);
        let a = &human.codes()[ia..ia + wa];
        let b = &chimp.codes()[ib..ib + wb];
        for scheme in [ScoreScheme::cudalign(), ScoreScheme::lenient()] {
            assert_eq!(
                forced.best(a, b, &scheme),
                auto.best(a, b, &scheme),
                "case {case}: a[{ia}..+{wa}] x b[{ib}..+{wb}]"
            );
        }
    }
}

/// An aggressive rebalance policy for the conformance axis: a checkpoint
/// every 2 block-rows, a 2-wave window and zero hysteresis, so the
/// controller migrates at essentially every boundary where the split is
/// not already perfect — maximum stress on the hand-off.
fn aggressive_rebalance(cfg: &RunConfig) -> RunConfig {
    cfg.clone()
        .with_checkpoint(CheckpointCadence::EveryRows(2))
        .with_rebalance(RebalanceMode::On {
            threshold: 0.0,
            window_waves: 2,
        })
}

#[test]
fn rebalanced_threaded_pipeline_stays_bit_identical_on_sampled_combos() {
    // The rebalance axis of the conformance matrix: live repartitioning at
    // checkpoint boundaries resumes every worker from the boundary wave's
    // full-width border, so the best cell (score AND end-point) must match
    // the reference exactly — plain and crossed with distributed pruning.
    for (idx, c) in combos().into_iter().enumerate().step_by(5) {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(aggressive_rebalance(&c.cfg))
            .run()
            .unwrap_or_else(|e| panic!("{}/rebalance: pipeline failed: {e}", c.label));
        assert_eq!(report.best, want, "{}/rebalance", c.label);
        let rb = report
            .rebalance
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no rebalance report", c.label));
        assert!(rb.evaluations > 0, "{}", c.label);
        assert_eq!(
            rb.migrations as usize,
            rb.applied_at_rows.len(),
            "{}",
            c.label
        );
        if idx % 2 == 0 {
            let pruned = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
                .config(aggressive_rebalance(&c.cfg).with_pruning(PruneMode::Distributed))
                .run()
                .unwrap_or_else(|e| panic!("{}/rebalance+prune: pipeline failed: {e}", c.label));
            assert_eq!(pruned.best, want, "{}/rebalance+prune", c.label);
            assert!(pruned.pruning.is_some(), "{}", c.label);
            assert!(pruned.rebalance.is_some(), "{}", c.label);
        }
    }
}

#[test]
fn rebalanced_recovery_after_fault_stays_bit_identical() {
    // Rebalance × fault recovery × distributed pruning: a device death in a
    // run that has already migrated columns must still rewind, repartition
    // across the survivors and finish with the exact reference best.
    for c in combos().into_iter().step_by(11) {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(aggressive_rebalance(&c.cfg).with_pruning(PruneMode::Distributed))
            .faults(ScheduledFault {
                device: 1,
                block_row: 6,
                phase: FaultPhase::Compute,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap_or_else(|e| panic!("{}/rebalance+recover: failed: {e}", c.label));
        assert_eq!(report.best, want, "{}/rebalance+recover", c.label);
        assert_eq!(report.recovery.unwrap().recoveries, 1, "{}", c.label);
        assert!(report.rebalance.is_some(), "{}", c.label);
        // The dead device holds no columns in the final split.
        assert!(
            report.devices.iter().all(|d| d.device != 1),
            "{}: dead device still owns a slab",
            c.label
        );
    }
}

#[test]
fn rebalanced_des_mirror_is_structurally_sound() {
    // The DES twin of the rebalance axis: whatever the controller migrated,
    // the final slab set must still tile the columns exactly and the
    // accounting must stay internally consistent.
    for c in combos().into_iter().step_by(9) {
        let run = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(aggressive_rebalance(&c.cfg))
            .run();
        assert!(run.aborted.is_none(), "{}", c.label);
        let rb = run
            .report
            .rebalance
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no rebalance report", c.label));
        assert!(rb.evaluations > 0, "{}", c.label);
        assert_eq!(
            rb.migrations as usize,
            rb.applied_at_rows.len(),
            "{}",
            c.label
        );
        let mut next_col = 1;
        for d in &run.report.devices {
            assert_eq!(d.slab_j0, next_col, "{}", c.label);
            next_col += d.slab_width;
        }
        assert_eq!(next_col, c.b.len() + 1, "{}", c.label);
        assert!(run.report.sim_time.unwrap().as_nanos() > 0, "{}", c.label);
    }
}

#[test]
fn threaded_and_des_agree_on_the_partition() {
    // Both backends derive slabs from the same partitioner; their
    // per-device column assignments must be identical.
    for c in combos().into_iter().step_by(7) {
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(c.cfg.clone())
            .run()
            .unwrap();
        let sim = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone())
            .run();
        let threaded: Vec<_> = report
            .devices
            .iter()
            .map(|d| (d.device, d.slab_j0, d.slab_width))
            .collect();
        let des: Vec<_> = sim
            .report
            .devices
            .iter()
            .map(|d| (d.device, d.slab_j0, d.slab_width))
            .collect();
        assert_eq!(threaded, des, "{}", c.label);
    }
}
