//! Differential conformance: four independent implementations of the same
//! problem must agree on every seeded combination of shape, block geometry,
//! buffer capacity, and platform.
//!
//! * the **reference DP** (`gotoh_best`) is ground truth;
//! * the **threaded pipeline** must match it bit-for-bit (score *and*
//!   end-point);
//! * the **banded scan** (`banded_adaptive`) must converge to the same best
//!   cell from a narrow initial band;
//! * the **DES backend** computes no scores, so it is held to structural
//!   invariants instead: every device covers its slab, the slabs tile the
//!   matrix exactly, and the simulated clock advances.
//!
//! Each combination is labelled, so one divergent case fails with enough
//! context to replay it by hand.

use megasw::prelude::*;
use megasw::sw::banded::banded_adaptive;

struct Combo {
    label: String,
    a: DnaSeq,
    b: DnaSeq,
    platform: Platform,
    cfg: RunConfig,
}

/// The ~40-case seeded matrix: 5 sequence shapes × 4 geometry/capacity
/// settings × 2 platforms.
fn combos() -> Vec<Combo> {
    let shapes: &[(usize, u64, &str)] = &[
        (1_200, 0x4D_10, "short"),
        (2_400, 0x4D_11, "medium"),
        (3_600, 0x4D_12, "long"),
        (2_000, 0x4D_13, "snp-heavy"),
        (1_700, 0x4D_14, "indel-heavy"),
    ];
    let geometries: &[(usize, usize, usize, &str)] = &[
        // (block_h, block_w, capacity, label)
        (64, 64, 8, "square64"),
        (32, 128, 1, "wide-cap1"),
        (128, 33, 2, "tall-odd"),
        (256, 256, 4, "square256"),
    ];
    let mut out = Vec::new();
    for &(len, seed, shape) in shapes {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
        let model = match shape {
            "snp-heavy" => DivergenceModel::snp_only(seed, 0.10),
            "indel-heavy" => DivergenceModel::human_chimp_scaled(seed, len),
            _ => DivergenceModel::test_scale(seed + 7),
        };
        let (b, _) = model.apply(&a);
        for &(bh, bw, cap, geom) in geometries {
            for (platform, pname) in [(Platform::env1(), "env1"), (Platform::env2(), "env2")] {
                let mut cfg = RunConfig::paper_default().with_buffer_capacity(cap);
                cfg.block_h = bh;
                cfg.block_w = bw;
                out.push(Combo {
                    label: format!("{shape}/{geom}/{pname}"),
                    a: a.clone(),
                    b: b.clone(),
                    platform,
                    cfg,
                });
            }
        }
    }
    out
}

#[test]
fn threaded_pipeline_matches_reference_on_every_combo() {
    for c in combos() {
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(c.cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", c.label));
        assert_eq!(report.best, want, "{}", c.label);
        assert_eq!(
            report.total_cells,
            (c.a.len() as u128) * (c.b.len() as u128),
            "{}",
            c.label
        );
    }
}

#[test]
fn banded_scan_converges_to_the_reference_on_every_shape() {
    // The scan depends only on the sequences and scheme, not the platform
    // or geometry — deduplicate to one check per shape.
    let mut seen = std::collections::BTreeSet::new();
    for c in combos() {
        let shape = c.label.split('/').next().unwrap().to_string();
        if !seen.insert(shape) {
            continue;
        }
        let want = gotoh_best(c.a.codes(), c.b.codes(), &c.cfg.scheme);
        let banded = banded_adaptive(c.a.codes(), c.b.codes(), &c.cfg.scheme, 16);
        assert_eq!(banded.best, want, "{}", c.label);
        assert!(
            banded.cells_computed <= (c.a.len() as u128) * (c.b.len() as u128),
            "{}: banded computed more cells than the full matrix",
            c.label
        );
    }
}

#[test]
fn des_backend_is_structurally_sound_on_every_combo() {
    for c in combos() {
        let run = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone())
            .run();
        let r = &run.report;
        assert!(run.aborted.is_none(), "{}", c.label);
        assert!(run.losses.is_empty(), "{}", c.label);
        assert_eq!(
            r.total_cells,
            (c.a.len() as u128) * (c.b.len() as u128),
            "{}",
            c.label
        );
        // Slabs tile the columns exactly, in chain order.
        let mut next_col = 1;
        for d in &r.devices {
            assert_eq!(d.slab_j0, next_col, "{}", c.label);
            next_col += d.slab_width;
        }
        assert_eq!(next_col, c.b.len() + 1, "{}", c.label);
        let sim = r
            .sim_time
            .unwrap_or_else(|| panic!("{}: no sim time", c.label));
        assert!(sim.as_nanos() > 0, "{}", c.label);
        assert!(r.gcups_sim.unwrap() > 0.0, "{}", c.label);
    }
}

#[test]
fn threaded_and_des_agree_on_the_partition() {
    // Both backends derive slabs from the same partitioner; their
    // per-device column assignments must be identical.
    for c in combos().into_iter().step_by(7) {
        let report = PipelineRun::new(c.a.codes(), c.b.codes(), &c.platform)
            .config(c.cfg.clone())
            .run()
            .unwrap();
        let sim = DesSim::new(c.a.len(), c.b.len(), &c.platform)
            .config(c.cfg.clone())
            .run();
        let threaded: Vec<_> = report
            .devices
            .iter()
            .map(|d| (d.device, d.slab_j0, d.slab_width))
            .collect();
        let des: Vec<_> = sim
            .report
            .devices
            .iter()
            .map(|d| (d.device, d.slab_j0, d.slab_width))
            .collect();
        assert_eq!(threaded, des, "{}", c.label);
    }
}
