//! Shared infrastructure for the benchmark harness.
//!
//! The experiment index (DESIGN.md §5) maps every table and figure of the
//! paper onto two artifacts:
//!
//! * the **`paper-tables` binary** (`cargo run -p megasw-bench --release
//!   --bin paper-tables`) regenerates every table/figure *series* — mostly
//!   on the discrete-event backend, so paper-scale matrix dimensions are
//!   cheap;
//! * the **bench targets** (`cargo bench`, dependency-free [`harness`])
//!   measure the real, threaded implementation on this host, one bench
//!   target per table/figure.
//!
//! This crate-level library holds what both share: cached workload pairs
//! and table-formatting helpers.

pub mod artifact;

use megasw::prelude::*;
use std::sync::OnceLock;

/// A lazily generated, process-cached homologous pair for benches.
///
/// Criterion calls the bench closure many times; generation must happen
/// once. Distinct `(len, seed)` combinations used by the benches are
/// enumerated here.
pub fn cached_pair(len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
    static CACHE: OnceLock<parking_lot_free::Registry> = OnceLock::new();
    CACHE
        .get_or_init(parking_lot_free::Registry::default)
        .get(len, seed)
}

/// Tiny interior-mutability registry without extra deps (std mutex; the
/// lock is only held during generation or lookup).
mod parking_lot_free {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    type PairMap = HashMap<(usize, u64), &'static (DnaSeq, DnaSeq)>;

    #[derive(Default)]
    pub struct Registry {
        map: Mutex<PairMap>,
    }

    impl Registry {
        pub fn get(&self, len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
            let mut map = self.map.lock().expect("registry lock");
            map.entry((len, seed)).or_insert_with(|| {
                let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
                let (b, _) = DivergenceModel::test_scale(seed + 7).apply(&a);
                Box::leak(Box::new((a, b)))
            })
        }
    }
}

/// Like [`cached_pair`] but with a substitutions-only divergence channel,
/// so both members have exactly `len` bases (benches that slice fixed
/// windows out of both sequences need this).
pub fn cached_pair_exact(len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
    static CACHE: OnceLock<parking_lot_free_exact::Registry> = OnceLock::new();
    CACHE
        .get_or_init(parking_lot_free_exact::Registry::default)
        .get(len, seed)
}

mod parking_lot_free_exact {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    type PairMap = HashMap<(usize, u64), &'static (DnaSeq, DnaSeq)>;

    #[derive(Default)]
    pub struct Registry {
        map: Mutex<PairMap>,
    }

    impl Registry {
        pub fn get(&self, len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
            let mut map = self.map.lock().expect("registry lock");
            map.entry((len, seed)).or_insert_with(|| {
                let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
                let (b, _) = DivergenceModel::snp_only(seed + 7, 0.012).apply(&a);
                Box::leak(Box::new((a, b)))
            })
        }
    }
}

/// Dependency-free measurement harness for the bench targets.
///
/// Each bench binary (`cargo bench` with `harness = false`) builds a few
/// [`harness::Group`]s; a group warms the closure up, takes a fixed number
/// of timed samples, and prints min/median/max plus the cell throughput in
/// GCUPS when a cell count is attached. `MEGASW_BENCH_SAMPLES=N` overrides
/// the sample count (e.g. `=1` for a smoke run).
pub mod harness {
    use std::time::{Duration, Instant};

    /// A named set of measurements sharing warm-up and sample settings.
    pub struct Group {
        name: String,
        samples: usize,
        warmup: Duration,
    }

    impl Group {
        pub fn new(name: &str) -> Group {
            let samples = std::env::var("MEGASW_BENCH_SAMPLES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(10);
            println!("\n== {name} ==");
            Group {
                name: name.to_string(),
                samples,
                warmup: Duration::from_millis(300),
            }
        }

        pub fn samples(mut self, n: usize) -> Group {
            if std::env::var("MEGASW_BENCH_SAMPLES").is_err() {
                self.samples = n;
            }
            self
        }

        pub fn warmup(mut self, d: Duration) -> Group {
            self.warmup = d;
            self
        }

        /// Measure `f`, reporting DP-cell throughput.
        pub fn bench_cells<T>(&self, id: &str, cells: u64, f: impl FnMut() -> T) {
            self.run(id, Some(cells), f);
        }

        /// Measure `f` with no throughput unit.
        pub fn bench<T>(&self, id: &str, f: impl FnMut() -> T) {
            self.run(id, None, f);
        }

        fn run<T>(&self, id: &str, cells: Option<u64>, mut f: impl FnMut() -> T) {
            let wu = Instant::now();
            while wu.elapsed() < self.warmup {
                std::hint::black_box(f());
            }
            let mut times: Vec<Duration> = (0..self.samples.max(1))
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(f());
                    t.elapsed()
                })
                .collect();
            times.sort();
            let median = times[times.len() / 2];
            let line = format!(
                "{}/{id:<28} median {:>11.3?}  min {:>11.3?}  max {:>11.3?}",
                self.name,
                median,
                times[0],
                times[times.len() - 1],
            );
            match cells {
                Some(c) => println!(
                    "{line}  {:>8.3} GCUPS",
                    super::gcups(u128::from(c), median.as_secs_f64())
                ),
                None => println!("{line}"),
            }
        }
    }
}

/// GCUPS for `cells` over `secs`.
pub fn gcups(cells: u128, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        cells as f64 / secs / 1e9
    }
}

/// Render one aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("\n== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render the same rows as CSV (for plotting).
pub fn render_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("csv:{name},{}\n", header.join(","));
    for row in rows {
        out.push_str(&format!("csv:{name},{}\n", row.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pair_is_cached() {
        let p1 = cached_pair(1_000, 3) as *const _;
        let p2 = cached_pair(1_000, 3) as *const _;
        assert_eq!(p1, p2);
        let p3 = cached_pair(1_000, 4) as *const _;
        assert_ne!(p1, p3);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["pair", "GCUPS"],
            &[
                vec!["chrA".into(), "1.0".into()],
                vec!["chrLong".into(), "140.36".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("140.36"));
        let csv = render_csv("demo", &["pair", "GCUPS"], &[vec!["x".into(), "1".into()]]);
        assert!(csv.contains("csv:demo,pair,GCUPS"));
        assert!(csv.contains("csv:demo,x,1"));
    }

    #[test]
    fn gcups_zero_duration() {
        assert_eq!(gcups(100, 0.0), 0.0);
        assert!((gcups(2_000_000_000, 2.0) - 1.0).abs() < 1e-12);
    }
}
