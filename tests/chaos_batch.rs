//! Deterministic chaos harness for the many-pair batch engine.
//!
//! Each seed expands — via `ChaCha8Rng` — into a full batch scenario: a
//! mixed-size job list (small whole-pair dispatches plus one large
//! slab-pipeline pair), a block/checkpoint geometry, and a schedule of one
//! or more [`BatchFault`]s (pair × block-row × pipeline phase). The
//! scenario runs through the threaded batch engine with recovery, and the
//! invariants are the batch engine's contract under fire:
//!
//! * **never dropped**: every submitted pair has exactly one outcome;
//! * **never double-reported**: outcomes arrive in submission order, one
//!   slot per pair;
//! * **bit-identical**: every score equals the scalar whole-sequence
//!   oracle, fault or no fault — in-flight small pairs are requeued onto
//!   survivors, large pairs recover in-run via the checkpoint path.
//!
//! Determinism is the point: the same seed always produces the same
//! scenario. On failure the harness greedily **shrinks** the fault
//! schedule to a minimal still-failing subset and prints a one-liner:
//!
//! ```text
//! MEGASW_CHAOS_REPRO='pairs=10 seed=3 block=32 ckpt=4 thr=90000 bins=3 max=2 faults=2@0:1:compute'
//! ```
//!
//! Re-running with that string in the environment replays exactly the
//! minimal scenario (see `repro_from_env`).

use megasw::prelude::*;
use megasw::seq::rng::ChaCha8Rng;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

/// Everything a batch chaos case needs to replay: the scenario is a pure
/// function of these fields.
#[derive(Debug, Clone)]
struct Scenario {
    pairs: usize,
    seq_seed: u64,
    block: usize,
    checkpoint_rows: usize,
    threshold: u128,
    bins: usize,
    max_failures: usize,
    faults: Vec<BatchFault>,
}

impl Scenario {
    fn repro(&self) -> String {
        let faults: Vec<String> = self.faults.iter().map(BatchFault::to_string).collect();
        format!(
            "pairs={} seed={} block={} ckpt={} thr={} bins={} max={} faults={}",
            self.pairs,
            self.seq_seed,
            self.block,
            self.checkpoint_rows,
            self.threshold,
            self.bins,
            self.max_failures,
            faults.join(",")
        )
    }

    fn parse(repro: &str) -> Scenario {
        let mut s = Scenario {
            pairs: 10,
            seq_seed: 0,
            block: 32,
            checkpoint_rows: 4,
            threshold: 90_000,
            bins: 3,
            max_failures: 1,
            faults: Vec::new(),
        };
        for field in repro.split_whitespace() {
            let (key, value) = field.split_once('=').expect("field is key=value");
            match key {
                "pairs" => s.pairs = value.parse().unwrap(),
                "seed" => s.seq_seed = value.parse().unwrap(),
                "block" => s.block = value.parse().unwrap(),
                "ckpt" => s.checkpoint_rows = value.parse().unwrap(),
                "thr" => s.threshold = value.parse().unwrap(),
                "bins" => s.bins = value.parse().unwrap(),
                "max" => s.max_failures = value.parse().unwrap(),
                "faults" => {
                    s.faults = value
                        .split(',')
                        .filter(|f| !f.is_empty())
                        .map(|f| f.parse::<BatchFault>().unwrap())
                        .collect();
                }
                other => panic!("unknown repro field {other:?}"),
            }
        }
        s
    }
}

/// Expand a chaos seed into a scenario. Pure and deterministic.
fn scenario_for(seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pairs = 8 + rng.gen_range(0usize..5); // 8..=12, last one large
    let block = [32usize, 48][rng.gen_range(0usize..2)];
    let checkpoint_rows = [2usize, 4, 8][rng.gen_range(0usize..3)];
    let bins = 2 + rng.gen_range(0usize..3);
    let phases = [
        FaultPhase::RingPop,
        FaultPhase::Compute,
        FaultPhase::RingPush,
        FaultPhase::Transfer,
    ];
    // 1 or 2 faults on distinct pairs; env2 has 3 devices, so a survivor
    // always remains. Rows 0–1 exist for every generated pair (smallest
    // small pair is 96 bases at block ≤ 48 → ≥ 2 block-rows).
    let n_faults = 1 + rng.gen_range(0usize..2);
    let mut victims: Vec<usize> = (0..pairs).collect();
    let mut faults = Vec::new();
    for _ in 0..n_faults {
        let v = victims.remove(rng.gen_range(0usize..victims.len()));
        let device = if v == pairs - 1 {
            // The large pair routes through the full chain: pick a victim
            // device, never the last one (any single loss is survivable;
            // sparing the tail just varies the survivor shapes).
            rng.gen_range(0usize..2)
        } else {
            0 // whole-pair dispatch: single-device chain, ignored anyway
        };
        faults.push(BatchFault {
            pair: v,
            fault: ScheduledFault {
                device,
                block_row: rng.gen_range(0usize..2),
                phase: phases[rng.gen_range(0usize..4)],
            },
        });
    }
    Scenario {
        pairs,
        seq_seed: seed,
        block,
        checkpoint_rows,
        threshold: 90_000,
        bins,
        max_failures: faults.len(),
        faults,
    }
}

/// The deterministic job list a scenario aligns: `pairs - 1` small pairs
/// (96–255 bases) and one large pair (360 bases ≈ 120k cells ≥ threshold).
fn jobs_for(s: &Scenario) -> Vec<BatchJob> {
    (0..s.pairs)
        .map(|i| {
            let len = if i == s.pairs - 1 {
                360
            } else {
                96 + ((s.seq_seed as usize * 31 + i * 57) % 160)
            };
            let a = ChromosomeGenerator::new(GenerateConfig::sized(len, s.seq_seed + i as u64))
                .generate();
            let (b, _) = DivergenceModel::test_scale(s.seq_seed + 100 + i as u64).apply(&a);
            BatchJob::new(format!("chaos{i}"), a.codes().to_vec(), b.codes().to_vec())
        })
        .collect()
}

fn batch_config(s: &Scenario) -> BatchConfig {
    BatchConfig::default()
        .with_base(
            RunConfig::paper_default()
                .with_block(s.block)
                .with_buffer_capacity(2)
                .with_checkpoint(CheckpointCadence::EveryRows(s.checkpoint_rows)),
        )
        .with_large_threshold_cells(s.threshold)
        .with_bins(s.bins)
}

/// Run one scenario; return an error string describing the first violated
/// invariant, if any.
fn check(s: &Scenario) -> Result<(), String> {
    let jobs = jobs_for(s);
    let cfg = batch_config(s);
    let oracle: Vec<BestCell> = jobs
        .iter()
        .map(|j| kernel::scalar().best(&j.a, &j.b, &cfg.base.scheme))
        .collect();
    let large_idx = jobs.len() - 1;
    assert!(
        jobs[large_idx].cells() >= s.threshold,
        "scenario generator: large pair too small"
    );
    let will_fire = !s.faults.is_empty();
    let report = {
        let (jobs, cfg, faults) = (jobs.clone(), cfg.clone(), s.faults.clone());
        let max = s.max_failures;
        with_deadline(
            "chaos batch run",
            std::time::Duration::from_secs(120),
            move || {
                BatchRun::new(&jobs, &Platform::env2())
                    .config(cfg)
                    .faults(faults)
                    .recover(RecoveryPolicy {
                        max_device_failures: max,
                    })
                    .run()
            },
        )
    }
    .map_err(|e| format!("batch did not complete: {e}"))?;

    // Never dropped, never double-reported: exactly one outcome per pair,
    // in submission order.
    if report.pairs.len() != jobs.len() {
        return Err(format!(
            "{} outcomes for {} pairs",
            report.pairs.len(),
            jobs.len()
        ));
    }
    for (i, p) in report.pairs.iter().enumerate() {
        if p.pair != i {
            return Err(format!("outcome {i} reports pair {}", p.pair));
        }
    }
    // Bit-identical to the scalar oracle, fault or no fault.
    for (i, p) in report.pairs.iter().enumerate() {
        if p.best != oracle[i] {
            return Err(format!(
                "pair {i} diverged: got {:?}, want {:?}",
                p.best, oracle[i]
            ));
        }
    }
    if will_fire && report.recoveries == 0 {
        return Err("faults scheduled but no recovery happened".into());
    }
    if report.recoveries > s.max_failures as u64 {
        return Err(format!(
            "{} recoveries exceed the budget {}",
            report.recoveries, s.max_failures
        ));
    }
    if report.failed_devices.len() > s.max_failures {
        return Err(format!(
            "{} failed devices exceed the budget {}",
            report.failed_devices.len(),
            s.max_failures
        ));
    }
    Ok(())
}

/// Greedily shrink a failing scenario: drop faults one at a time while the
/// failure persists.
fn shrink(mut s: Scenario) -> Scenario {
    loop {
        let mut reduced = false;
        for i in 0..s.faults.len() {
            let mut candidate = s.clone();
            candidate.faults.remove(i);
            candidate.max_failures = candidate.faults.len().max(1);
            if check(&candidate).is_err() {
                s = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return s;
        }
    }
}

fn run_seeds(seeds: impl Iterator<Item = u64>) {
    let mut failures = Vec::new();
    for seed in seeds {
        let s = scenario_for(seed);
        if let Err(e) = check(&s) {
            let minimal = shrink(s);
            let err = check(&minimal).err().unwrap_or(e);
            failures.push(format!(
                "seed {seed:#x}: {err}\n  MEGASW_CHAOS_REPRO='{}'",
                minimal.repro()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn chaos_batch_seeds_survive_device_loss_without_dropping_pairs() {
    run_seeds(0xBA_7C0..0xBA_7C8);
}

#[test]
fn chaos_batch_scenarios_are_deterministic() {
    for seed in 0xBA_7C0..0xBA_7C4u64 {
        let s1 = scenario_for(seed);
        let s2 = scenario_for(seed);
        assert_eq!(s1.repro(), s2.repro(), "seed {seed:#x}");
    }
}

#[test]
fn repro_round_trips_through_its_string_form() {
    for seed in 0xBA_7C0..0xBA_7C4u64 {
        let s = scenario_for(seed);
        let parsed = Scenario::parse(&s.repro());
        assert_eq!(parsed.repro(), s.repro(), "seed {seed:#x}");
    }
}

#[test]
fn repro_from_env() {
    // Replays the scenario in MEGASW_CHAOS_REPRO, so a failing seed's
    // one-liner is directly actionable:
    //   MEGASW_CHAOS_REPRO='…' cargo test -p megasw --test chaos_batch repro_from_env
    let Ok(repro) = std::env::var("MEGASW_CHAOS_REPRO") else {
        return;
    };
    let s = Scenario::parse(&repro);
    if let Err(e) = check(&s) {
        panic!("repro failed: {e}\n  MEGASW_CHAOS_REPRO='{}'", s.repro());
    }
}

#[test]
fn large_pair_fault_recovers_in_run_and_blacklists_the_device() {
    // A pinned scenario aiming one fault at the large pair: the slab
    // pipeline recovers via the checkpoint path (the pair's own outcome
    // records the recovery) and the batch blacklists the dead device.
    let mut s = Scenario::parse("pairs=9 seed=5 block=32 ckpt=4 thr=90000 bins=3 max=1 faults=");
    s.faults = vec![BatchFault {
        pair: 8,
        fault: ScheduledFault {
            device: 1,
            block_row: 1,
            phase: FaultPhase::Compute,
        },
    }];
    let jobs = jobs_for(&s);
    let cfg = batch_config(&s);
    let report = BatchRun::new(&jobs, &Platform::env2())
        .config(cfg.clone())
        .faults(s.faults.clone())
        .recover(RecoveryPolicy {
            max_device_failures: 1,
        })
        .run()
        .unwrap();
    let large = &report.pairs[8];
    assert!(large.large, "pair 8 should route large");
    assert!(large.recoveries >= 1, "large pair did not recover in-run");
    assert_eq!(report.failed_devices, vec![1]);
    assert_eq!(report.requeued, 0);
    let want = kernel::scalar().best(&jobs[8].a, &jobs[8].b, &cfg.base.scheme);
    assert_eq!(large.best, want);
}

#[test]
fn two_small_pair_faults_requeue_onto_the_survivor() {
    // Two distinct small pairs each kill their device; with a budget of 2
    // the remaining worker drains the whole queue — nothing dropped,
    // nothing double-reported, scores intact.
    let mut s = Scenario::parse("pairs=10 seed=11 block=32 ckpt=4 thr=90000 bins=3 max=2 faults=");
    s.faults = vec![
        BatchFault {
            pair: 2,
            fault: ScheduledFault {
                device: 0,
                block_row: 0,
                phase: FaultPhase::Compute,
            },
        },
        BatchFault {
            pair: 6,
            fault: ScheduledFault {
                device: 0,
                block_row: 1,
                phase: FaultPhase::RingPush,
            },
        },
    ];
    let jobs = jobs_for(&s);
    let cfg = batch_config(&s);
    let report = BatchRun::new(&jobs, &Platform::env2())
        .config(cfg.clone())
        .faults(s.faults.clone())
        .recover(RecoveryPolicy {
            max_device_failures: 2,
        })
        .run()
        .unwrap();
    assert_eq!(report.pairs.len(), 10);
    assert_eq!(report.requeued, 2);
    assert_eq!(report.failed_devices.len(), 2);
    for (i, p) in report.pairs.iter().enumerate() {
        assert_eq!(p.pair, i);
        let want = kernel::scalar().best(&jobs[i].a, &jobs[i].b, &cfg.base.scheme);
        assert_eq!(p.best, want, "pair {i}");
    }
}
