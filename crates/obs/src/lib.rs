//! # megasw-obs — run observability for both execution backends
//!
//! The paper's whole argument is about *where time goes*: the circular
//! buffer hides border communication behind computation, and the evaluation
//! is a set of utilization/stall pictures. This crate is the workspace-wide
//! event model that lets both backends produce those pictures:
//!
//! * [`ObsSpan`] / [`ObsKind`] — typed spans (`Kernel`, `RingPush`,
//!   `RingPopWait`, `BorderXfer`, `Traceback`) with device and block-row
//!   attribution. The threaded pipeline emits them with wall-clock
//!   timestamps; the discrete-event backend emits them with simulated-time
//!   timestamps. Both use nanoseconds since the run epoch, so the rest of
//!   the stack is backend-agnostic.
//! * [`Recorder`] — a cheap, clonable, thread-safe collector with an
//!   [`ObsLevel`] filter (`off` / `kernels` / `full`).
//! * [`MetricsRegistry`] — per-run counters and histograms (GCUPS, ring
//!   occupancy, stall totals) rendered as a text summary.
//! * [`chrome`] — a Chrome `trace_event` JSON exporter: the output opens
//!   directly in `chrome://tracing` or <https://ui.perfetto.dev>, one lane
//!   per device plus a host lane. [`chrome::validate`] structurally checks
//!   a trace (golden tests use it), backed by the dependency-free JSON
//!   parser in [`json`].

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome::{chrome_trace, validate, TraceCheck};
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{ObsKind, ObsLevel, ObsSpan, Recorder};
