//! Chromosome-pair workload: run one of the benchmark catalog pairs (the
//! paper's Table 1 analogue) end to end, then retrieve the actual optimal
//! alignment around the best cell (CUDAlign stages 2–4 analogue).
//!
//! ```text
//! cargo run --release --example chromosome_pair [chrA|chrB|chrC|chrD] [--test-scale]
//! ```
//!
//! `--test-scale` uses the tens-of-KBP catalog (fast); the default catalog
//! is 1–5 MBP and takes minutes of CPU time.

use megasw::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_scale = args.iter().any(|a| a == "--test-scale");
    let name_arg = args.iter().find(|a| !a.starts_with("--"));

    let catalog = if test_scale {
        PairCatalog::test_scale()
    } else {
        PairCatalog::default_scale()
    };
    let default_name = catalog.specs[0].name;
    let name = name_arg.map(|s| s.as_str()).unwrap_or(default_name);

    let spec = catalog
        .get(name)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown pair {name:?}; available: {:?}",
                catalog.specs.iter().map(|s| s.name).collect::<Vec<_>>()
            );
            std::process::exit(2);
        })
        .clone();

    println!(
        "pair {}: human {} bp × chimp {} bp ({:.2e} cells)",
        spec.name,
        spec.human_len,
        spec.chimp_len,
        spec.cells() as f64
    );
    let pair = ChromosomePair::generate(spec);
    println!(
        "divergence applied: {} SNPs, {} short indels, {} segmental events, {} inversions\n",
        pair.divergence.substitutions,
        pair.divergence.insertions + pair.divergence.deletions,
        pair.divergence.segmental_deletions + pair.divergence.segmental_duplications,
        pair.divergence.inversions,
    );

    let platform = Platform::env2();
    let config = RunConfig::paper_default();

    let t0 = std::time::Instant::now();
    let report = PipelineRun::new(pair.human.codes(), pair.chimp.codes(), &platform)
        .config(config.clone())
        .run()
        .expect("pipeline run failed");
    println!("stage 1 (score + endpoint) in {:.2?}:", t0.elapsed());
    print!("{report}");

    // Alignment retrieval around the best cell, using the multi-GPU
    // pipeline for the quadratic stages (forward local + reversed anchored)
    // and Myers–Miller on the bounded segment.
    let t1 = std::time::Instant::now();
    let (aln, stage_times) =
        multigpu_local_align(pair.human.codes(), pair.chimp.codes(), &platform, &config)
            .expect("alignment retrieval failed");
    println!(
        "\nstages 2–3 (alignment retrieval) in {:.2?} (stage1 {:.2?}, stage2 {:.2?}, stage3 {:.2?}):",
        t1.elapsed(),
        stage_times.stage1,
        stage_times.stage2,
        stage_times.stage3
    );
    println!(
        "  alignment spans human[{}..={}] × chimp[{}..={}]",
        aln.start_i, aln.end_i, aln.start_j, aln.end_j
    );
    println!(
        "  {} columns, identity {:.2}%, score {}",
        aln.len(),
        aln.identity() * 100.0,
        aln.score
    );
    let cigar = aln.cigar();
    let preview: String = cigar.chars().take(120).collect();
    println!(
        "  CIGAR{}: {preview}{}",
        if cigar.len() > 120 {
            " (truncated)"
        } else {
            ""
        },
        if cigar.len() > 120 { "…" } else { "" }
    );

    // A peek at the alignment itself (first 3 rendered blocks).
    let rendered = render_alignment(pair.human.codes(), pair.chimp.codes(), &aln, 72);
    let preview: Vec<&str> = rendered.lines().take(11).collect();
    if !preview.is_empty() {
        println!("\nalignment preview:\n{}", preview.join("\n"));
        if rendered.lines().count() > 11 {
            println!("  …");
        }
    }

    assert_eq!(aln.score, report.best.score);
    println!("\nverified: retrieved alignment re-scores to the DP optimum ✓");
}
