//! Anti-diagonal (wavefront) full-matrix scan.
//!
//! The CUDA kernel in the paper computes cells along anti-diagonals: every
//! cell `(i, j)` with `i + j = d` depends only on diagonals `d − 1` and
//! `d − 2`, so all cells of a diagonal are independent — that independence
//! is what the GPU's threads exploit. This module implements the same
//! traversal order sequentially. It produces identical results to the
//! row-major kernels (asserted in tests), which is the property that makes
//! the parallel schedules of `megasw-multigpu` legal: *any* topological
//! order of the dependency DAG yields the same matrix.

use crate::cell::{BestCell, Score, NEG_INF};
use crate::scoring::ScoreScheme;

/// Best local-alignment cell, computed by anti-diagonal traversal.
///
/// Memory is `O(m)`: three rolling diagonals indexed by row.
pub fn antidiag_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        return BestCell::ZERO;
    }

    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    // Arrays indexed by i (0..=m). `*_prev` is diagonal d−1, `h_prev2` is
    // d−2. Entries outside a diagonal's valid i-range hold boundary values.
    let mut h_prev2 = vec![0 as Score; m + 1];
    let mut h_prev = vec![0 as Score; m + 1];
    let mut e_prev = vec![NEG_INF; m + 1];
    let mut f_prev = vec![NEG_INF; m + 1];
    let mut h_cur = vec![0 as Score; m + 1];
    let mut e_cur = vec![NEG_INF; m + 1];
    let mut f_cur = vec![NEG_INF; m + 1];

    let mut best = BestCell::ZERO;

    for d in 2..=(m + n) {
        // Valid rows on this diagonal: i ≥ 1, j = d − i ≥ 1, i ≤ m, j ≤ n.
        let i_lo = 1.max(d.saturating_sub(n));
        let i_hi = m.min(d - 1);

        // Boundary cells of this diagonal.
        if d <= n {
            h_cur[0] = 0; // (0, d)
            e_cur[0] = NEG_INF;
            f_cur[0] = NEG_INF;
        }
        if d <= m {
            h_cur[d] = 0; // (d, 0)
            e_cur[d] = NEG_INF;
            f_cur[d] = NEG_INF;
        }

        for i in i_lo..=i_hi {
            let j = d - i;
            let e = (e_prev[i] - ext).max(h_prev[i] - open_ext);
            let f = (f_prev[i - 1] - ext).max(h_prev[i - 1] - open_ext);
            let sub = scheme.substitution(a[i - 1], b[j - 1]);
            let mut h = h_prev2[i - 1] + sub;
            if e > h {
                h = e;
            }
            if f > h {
                h = f;
            }
            if h < 0 {
                h = 0;
            }
            // Anti-diagonal order does not visit cells in row-major order,
            // so equal scores must go through the full deterministic
            // tie-break (`consider`) to agree with the other kernels.
            if h > 0 && h >= best.score {
                best.consider(h, i, j);
            }
            h_cur[i] = h;
            e_cur[i] = e;
            f_cur[i] = f;
        }

        std::mem::swap(&mut h_prev2, &mut h_prev);
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut e_prev, &mut e_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotoh::rolling_best;
    use crate::reference::reference_best;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let scheme = ScoreScheme::cudalign();
        for (a, b) in [
            ("", "ACGT"),
            ("A", "A"),
            ("ACGT", "ACGT"),
            ("ACGTT", "ACTT"),
            ("TTTTTTTTACGTACGT", "GGGGACGTACGT"),
            ("ACGTNNNACGT", "ACGTACGT"),
        ] {
            let (a, b) = (codes(a), codes(b));
            assert_eq!(
                antidiag_best(&a, &b, &scheme),
                reference_best(&a, &b, &scheme),
                "case {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn matches_gotoh_including_tiebreaks_on_random_pairs() {
        for seed in 0..10 {
            let scheme = if seed % 2 == 0 {
                ScoreScheme::cudalign()
            } else {
                ScoreScheme::lenient()
            };
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(150, seed)).generate();
            let (b, _) = DivergenceModel::test_scale(seed + 50).apply(&a);
            assert_eq!(
                antidiag_best(a.codes(), b.codes(), &scheme),
                rolling_best(a.codes(), b.codes(), &scheme),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tiebreak_on_repetitive_input() {
        // Repetitive sequences produce many equal-scoring cells; the
        // deterministic tie-break must still agree across traversal orders.
        let scheme = ScoreScheme::cudalign();
        let a = codes("ATATATATATAT");
        let b = codes("TATATATATA");
        assert_eq!(
            antidiag_best(&a, &b, &scheme),
            rolling_best(&a, &b, &scheme)
        );
    }

    #[test]
    fn skinny_matrices() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("A");
        let b = codes("ACGTACGTACGTACGT");
        assert_eq!(
            antidiag_best(&a, &b, &scheme),
            reference_best(&a, &b, &scheme)
        );
        assert_eq!(
            antidiag_best(&b, &a, &scheme),
            reference_best(&b, &a, &scheme)
        );
    }
}
