//! Multi-GPU platform descriptions and the paper's two environments.

use crate::catalog;
use crate::link::LinkSpec;
use crate::spec::DeviceSpec;

/// Which evaluation environment a platform represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Environment 1: homogeneous boards.
    Env1,
    /// Environment 2: heterogeneous boards (the 140-GCUPS configuration).
    Env2,
    /// Anything user-assembled.
    Custom,
}

/// A chain of GPUs attached to one host.
///
/// The paper arranges GPUs in a logical chain ordered by matrix columns;
/// device `g` streams its border columns to device `g + 1`. The platform
/// records that order together with the link used between each neighbour
/// pair (the slower of the two boards' effective pipes, since a staged
/// copy traverses both).
#[derive(Debug, Clone)]
pub struct Platform {
    pub name: String,
    pub kind: PlatformKind,
    pub devices: Vec<DeviceSpec>,
    /// Optional shared host bridge: when set, *all* inter-GPU border
    /// traffic serializes through this one pipe (the worst-case topology —
    /// every board behind a single PCIe switch) instead of independent
    /// per-neighbour links. `None` models independent full-duplex pairs.
    pub bridge: Option<LinkSpec>,
}

impl Platform {
    /// Build a custom platform from an explicit device chain.
    pub fn custom(name: impl Into<String>, devices: Vec<DeviceSpec>) -> Platform {
        Platform {
            name: name.into(),
            kind: PlatformKind::Custom,
            devices,
            bridge: None,
        }
    }

    /// Environment 1: two homogeneous GTX 680s (≈100 GCUPS aggregate peak).
    pub fn env1() -> Platform {
        Platform {
            name: "Env1 (2× GTX 680)".into(),
            kind: PlatformKind::Env1,
            devices: vec![catalog::gtx680(), catalog::gtx680()],
            bridge: None,
        }
    }

    /// Environment 2: three heterogeneous boards — GTX Titan + Tesla K20 +
    /// GTX 580 (≈143 GCUPS aggregate sustained peak, ≈140 achieved in the
    /// pipeline: the paper's 140.36-GCUPS headline shape).
    pub fn env2() -> Platform {
        Platform {
            name: "Env2 (Titan + K20 + GTX 580)".into(),
            kind: PlatformKind::Env2,
            devices: vec![catalog::gtx_titan(), catalog::k20(), catalog::gtx580()],
            bridge: None,
        }
    }

    /// A single-device platform.
    pub fn single(device: DeviceSpec) -> Platform {
        Platform {
            name: format!("1× {}", device.name),
            kind: PlatformKind::Custom,
            devices: vec![device],
            bridge: None,
        }
    }

    /// `n` copies of the same board.
    pub fn homogeneous(device: DeviceSpec, n: usize) -> Platform {
        Platform {
            name: format!("{n}× {}", device.name),
            kind: PlatformKind::Custom,
            devices: std::iter::repeat_with(|| device.clone()).take(n).collect(),
            bridge: None,
        }
    }

    /// Truncate to the first `n` devices (used for 1/2/3-GPU sweeps).
    pub fn take(&self, n: usize) -> Platform {
        let n = n.min(self.devices.len()).max(1);
        Platform {
            name: format!("{} [first {n}]", self.name),
            kind: self.kind,
            devices: self.devices[..n].to_vec(),
            bridge: self.bridge,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Is the chain empty?
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Aggregate peak GCUPS of every device.
    pub fn aggregate_peak_gcups(&self) -> f64 {
        self.devices.iter().map(|d| d.peak_gcups()).sum()
    }

    /// Is every device the same model?
    pub fn is_homogeneous(&self) -> bool {
        self.devices
            .windows(2)
            .all(|w| w[0].name == w[1].name && w[0] == w[1])
    }

    /// Route all inter-GPU traffic through one shared host bridge.
    pub fn with_bridge(mut self, bridge: LinkSpec) -> Platform {
        self.bridge = Some(bridge);
        self
    }

    /// Link used between neighbours `g` and `g + 1`: the slower pipe of the
    /// two boards (a staged copy traverses both).
    ///
    /// # Panics
    ///
    /// Panics if `g + 1` is out of range.
    pub fn link_between(&self, g: usize) -> LinkSpec {
        let a = &self.devices[g].link;
        let b = &self.devices[g + 1].link;
        if a.bandwidth_bytes_per_sec <= b.bandwidth_bytes_per_sec {
            *a
        } else {
            *b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env1_is_homogeneous_pair() {
        let p = Platform::env1();
        assert_eq!(p.len(), 2);
        assert!(p.is_homogeneous());
        assert_eq!(p.kind, PlatformKind::Env1);
        assert!((p.aggregate_peak_gcups() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn env2_is_heterogeneous_trio_near_143_peak() {
        let p = Platform::env2();
        assert_eq!(p.len(), 3);
        assert!(!p.is_homogeneous());
        let peak = p.aggregate_peak_gcups();
        assert!((peak - 143.0).abs() < 1e-6, "peak = {peak}");
        // Devices ordered strongest-first (column partitioning is
        // order-agnostic; strongest-first keeps the deepest slab first).
        assert!(p.devices[0].peak_gcups() > p.devices[2].peak_gcups());
    }

    #[test]
    fn take_prefix() {
        let p = Platform::env2();
        let p1 = p.take(1);
        assert_eq!(p1.len(), 1);
        assert_eq!(p1.devices[0].name, "GeForce GTX Titan");
        let p9 = p.take(9);
        assert_eq!(p9.len(), 3);
        let p0 = p.take(0);
        assert_eq!(p0.len(), 1, "take clamps to at least one device");
    }

    #[test]
    fn homogeneous_builder() {
        let p = Platform::homogeneous(crate::catalog::m2090(), 4);
        assert_eq!(p.len(), 4);
        assert!(p.is_homogeneous());
        assert!((p.aggregate_peak_gcups() - 4.0 * 38.0).abs() < 1e-6);
    }

    #[test]
    fn link_between_picks_slower_pipe() {
        // Titan (pcie3) → K20 (pcie2): effective link is the pcie2 pipe.
        let p = Platform::custom(
            "t",
            vec![crate::catalog::gtx_titan(), crate::catalog::k20()],
        );
        let l = p.link_between(0);
        assert_eq!(
            l.bandwidth_bytes_per_sec,
            LinkSpec::pcie2_x16().bandwidth_bytes_per_sec
        );
    }
}
