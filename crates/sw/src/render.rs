//! Human-readable alignment rendering (CUDAlign stage-6 analogue).
//!
//! Produces the classic three-line blocks:
//!
//! ```text
//! a      151 ACGT-ACGTTTA 162
//!            |||| |||| ||
//! b       88 ACGTTACGTGTA 99
//! ```
//!
//! with `|` for matches, ` ` for mismatches and `-` for gaps, wrapped at a
//! configurable width, with 1-based sequence coordinates at both ends of
//! every block.

use crate::traceback::{AlignOp, LocalAlignment};

/// Render an alignment over the original code slices.
///
/// `width` is the number of alignment columns per block (clamped to ≥ 10).
/// Returns an empty string for the empty alignment.
pub fn render_alignment(a: &[u8], b: &[u8], aln: &LocalAlignment, width: usize) -> String {
    if aln.is_empty() {
        return String::new();
    }
    let width = width.max(10);

    // Expand the op list into three parallel character rows.
    let mut top = String::with_capacity(aln.len());
    let mut mid = String::with_capacity(aln.len());
    let mut bot = String::with_capacity(aln.len());
    // Per-column sequence coordinates (1-based position of the consumed
    // base, or the last consumed position for gap columns).
    let mut a_pos = Vec::with_capacity(aln.len());
    let mut b_pos = Vec::with_capacity(aln.len());

    let mut i = aln.start_i; // next a position to consume (1-based)
    let mut j = aln.start_j;
    let to_char = |code: u8| crate::ascii_base(code);
    for &op in &aln.ops {
        match op {
            AlignOp::Match | AlignOp::Mismatch => {
                top.push(to_char(a[i - 1]));
                bot.push(to_char(b[j - 1]));
                mid.push(if op == AlignOp::Match { '|' } else { ' ' });
                a_pos.push(i);
                b_pos.push(j);
                i += 1;
                j += 1;
            }
            AlignOp::Insert => {
                top.push('-');
                bot.push(to_char(b[j - 1]));
                mid.push(' ');
                a_pos.push(i.saturating_sub(1).max(aln.start_i));
                b_pos.push(j);
                j += 1;
            }
            AlignOp::Delete => {
                top.push(to_char(a[i - 1]));
                bot.push('-');
                mid.push(' ');
                a_pos.push(i);
                b_pos.push(j.saturating_sub(1).max(aln.start_j));
                i += 1;
            }
        }
    }

    let top: Vec<char> = top.chars().collect();
    let mid: Vec<char> = mid.chars().collect();
    let bot: Vec<char> = bot.chars().collect();

    let mut out = String::new();
    let digits = format!("{}", a_pos.last().unwrap().max(b_pos.last().unwrap())).len();
    for block_start in (0..top.len()).step_by(width) {
        let end = (block_start + width).min(top.len());
        let seg = |chars: &[char]| chars[block_start..end].iter().collect::<String>();
        out.push_str(&format!(
            "a {:>digits$} {} {}\n",
            a_pos[block_start],
            seg(&top),
            a_pos[end - 1],
        ));
        out.push_str(&format!("  {:>digits$} {}\n", "", seg(&mid),));
        out.push_str(&format!(
            "b {:>digits$} {} {}\n",
            b_pos[block_start],
            seg(&bot),
            b_pos[end - 1],
        ));
        if end < top.len() {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::ScoreScheme;
    use crate::traceback::local_align;

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    #[test]
    fn renders_identity_alignment() {
        let a = codes("ACGTACGT");
        let aln = local_align(&a, &a, &ScoreScheme::cudalign());
        let text = render_alignment(&a, &a, &aln, 80);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ACGTACGT"));
        assert_eq!(lines[1].matches('|').count(), 8);
        assert!(lines[0].starts_with("a 1 "));
        assert!(lines[0].ends_with(" 8"));
    }

    #[test]
    fn renders_mismatch_as_blank_bar() {
        // Lenient scoring so the full 8-column alignment (7 matches + 1
        // mismatch) beats the 4-match prefix; under CUDAlign scoring the
        // two tie and the tie-break picks the prefix.
        let a = codes("ACGTACGT");
        let b = codes("ACGTTCGT");
        let aln = local_align(&a, &b, &ScoreScheme::lenient());
        let text = render_alignment(&a, &b, &aln, 80);
        let mid = text.lines().nth(1).unwrap();
        assert_eq!(mid.matches('|').count(), 7);
        assert_eq!(aln.len(), 8);
    }

    #[test]
    fn renders_gaps_as_dashes() {
        let scheme = ScoreScheme::lenient();
        let a = codes("ACGTTTACGTACGTAAAA");
        let b = codes("ACGTTTACGACGTAAAA"); // one T deleted
        let aln = local_align(&a, &b, &scheme);
        let text = render_alignment(&a, &b, &aln, 80);
        assert!(text.contains('-'), "expected a gap dash:\n{text}");
    }

    #[test]
    fn wraps_long_alignments() {
        let a = codes(&"ACGT".repeat(30)); // 120 columns
        let aln = local_align(&a, &a, &ScoreScheme::cudalign());
        let text = render_alignment(&a, &a, &aln, 40);
        // 3 blocks of 3 lines separated by blank lines.
        assert_eq!(text.lines().filter(|l| l.starts_with("a ")).count(), 3);
        // Second block starts at column 41.
        assert!(text.contains("a  41 "), "{text}");
    }

    #[test]
    fn offsets_respect_local_start() {
        // Alignment begins mid-sequence: coordinates must not start at 1.
        let mut a = codes("TTTTTTTT");
        a.extend_from_slice(&codes("ACGTACGTACGT"));
        let b = codes("ACGTACGTACGT");
        let aln = local_align(&a, &b, &ScoreScheme::cudalign());
        assert_eq!(aln.start_i, 9);
        let text = render_alignment(&a, &b, &aln, 80);
        assert!(text.lines().next().unwrap().contains("a  9 "), "{text}");
    }

    #[test]
    fn empty_alignment_renders_empty() {
        let a = codes("AAAA");
        let b = codes("TTTT");
        let aln = local_align(&a, &b, &ScoreScheme::cudalign());
        assert!(aln.is_empty());
        assert_eq!(render_alignment(&a, &b, &aln, 60), "");
    }
}
