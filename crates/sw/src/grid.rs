//! Blocked decomposition of the DP matrix.
//!
//! [`BlockGrid`] maps the `(m × n)` matrix onto a grid of tiles of nominal
//! size `block_h × block_w` (edge tiles are smaller). [`run_sequential`]
//! executes the grid row-major with `O(n)` border memory — the
//! single-device semantics every parallel executor must reproduce — and
//! returns the best cell plus the matrix's final borders.
//!
//! The same grid geometry is used by the multi-GPU pipeline (each device
//! owns a contiguous range of block columns) and by the discrete-event
//! simulator (each tile is one kernel-timing unit), so geometry bugs would
//! show up as cross-backend disagreements in the integration tests.

use crate::block::{scalar_block, BlockInput, BlockOutput};
use crate::border::{ColBorder, RowBorder};
use crate::cell::BestCell;
use crate::scoring::ScoreScheme;

/// Geometry of a blocked DP matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    /// Matrix rows (length of sequence `a`).
    pub m: usize,
    /// Matrix columns (length of sequence `b`).
    pub n: usize,
    /// Nominal tile height.
    pub block_h: usize,
    /// Nominal tile width.
    pub block_w: usize,
}

impl BlockGrid {
    /// Create a grid. `block_h`/`block_w` are clamped to at least 1.
    pub fn new(m: usize, n: usize, block_h: usize, block_w: usize) -> BlockGrid {
        BlockGrid {
            m,
            n,
            block_h: block_h.max(1),
            block_w: block_w.max(1),
        }
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.m.div_ceil(self.block_h)
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.n.div_ceil(self.block_w)
    }

    /// DP row range `[i0, i1)` (1-based) of tile row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        let i0 = r * self.block_h + 1;
        let i1 = ((r + 1) * self.block_h).min(self.m) + 1;
        (i0, i1)
    }

    /// DP column range `[j0, j1)` (1-based) of tile column `c`.
    pub fn col_range(&self, c: usize) -> (usize, usize) {
        let j0 = c * self.block_w + 1;
        let j1 = ((c + 1) * self.block_w).min(self.n) + 1;
        (j0, j1)
    }

    /// Height of tile row `r`.
    pub fn row_height(&self, r: usize) -> usize {
        let (i0, i1) = self.row_range(r);
        i1 - i0
    }

    /// Width of tile column `c`.
    pub fn col_width(&self, c: usize) -> usize {
        let (j0, j1) = self.col_range(c);
        j1 - j0
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Total DP cells.
    pub fn cells(&self) -> u128 {
        self.m as u128 * self.n as u128
    }

    /// Number of external (tile) anti-diagonals: tiles on diagonal `d`
    /// satisfy `r + c = d`.
    pub fn external_diagonals(&self) -> usize {
        if self.rows() == 0 || self.cols() == 0 {
            0
        } else {
            self.rows() + self.cols() - 1
        }
    }

    /// Tiles lying on external diagonal `d`, as `(row, col)` pairs in
    /// increasing row order. Empty for out-of-range diagonals.
    pub fn diagonal_tiles(&self, d: usize) -> Vec<(usize, usize)> {
        let rows = self.rows();
        let cols = self.cols();
        if rows == 0 || cols == 0 || d >= rows + cols - 1 {
            return Vec::new();
        }
        let r_min = if d >= cols { d - cols + 1 } else { 0 };
        let r_max = d.min(rows - 1);
        (r_min..=r_max).map(|r| (r, d - r)).collect()
    }
}

/// Result of a grid execution.
#[derive(Debug, Clone)]
pub struct GridResult {
    pub best: BestCell,
    /// Bottom borders of the last tile row, one per tile column
    /// (concatenate to recover matrix row `m`).
    pub final_bottoms: Vec<RowBorder>,
    /// Right borders of the last tile column, one per tile row
    /// (concatenate to recover matrix column `n`).
    pub final_rights: Vec<ColBorder>,
    /// DP cells computed (equals `m · n` unless tiles were pruned).
    pub cells_computed: u128,
}

/// Execute the grid sequentially, row-major.
///
/// `a` and `b` are the full code slices; geometry comes from `grid`.
pub fn run_sequential(a: &[u8], b: &[u8], grid: &BlockGrid, scheme: &ScoreScheme) -> GridResult {
    assert_eq!(a.len(), grid.m, "sequence a length must match grid.m");
    assert_eq!(b.len(), grid.n, "sequence b length must match grid.n");

    let rows = grid.rows();
    let cols = grid.cols();
    let mut best = BestCell::ZERO;
    let mut cells_computed: u128 = 0;

    // Current top borders, one per tile column.
    let mut tops: Vec<RowBorder> = (0..cols)
        .map(|c| RowBorder::zero(grid.col_width(c)))
        .collect();
    let mut final_rights: Vec<ColBorder> = Vec::with_capacity(rows);

    for r in 0..rows {
        let (i0, i1) = grid.row_range(r);
        let mut left = ColBorder::zero(i1 - i0);
        for (c, top) in tops.iter_mut().enumerate() {
            let (j0, j1) = grid.col_range(c);
            let out: BlockOutput = scalar_block(
                BlockInput {
                    a_rows: &a[i0 - 1..i1 - 1],
                    b_cols: &b[j0 - 1..j1 - 1],
                    top,
                    left: &left,
                    row_offset: i0,
                    col_offset: j0,
                },
                scheme,
            );
            best = best.merge(out.best);
            cells_computed += out.cells as u128;
            *top = out.bottom;
            left = out.right;
        }
        final_rights.push(left);
    }

    GridResult {
        best,
        final_bottoms: tops,
        final_rights,
        cells_computed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotoh::rolling_best;
    use crate::reference::full_matrix;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    #[test]
    fn geometry_exact_division() {
        let g = BlockGrid::new(100, 60, 25, 20);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.row_range(0), (1, 26));
        assert_eq!(g.row_range(3), (76, 101));
        assert_eq!(g.col_range(2), (41, 61));
        assert_eq!(g.tiles(), 12);
        assert_eq!(g.external_diagonals(), 6);
    }

    #[test]
    fn geometry_ragged_edges() {
        let g = BlockGrid::new(10, 7, 4, 3);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.row_height(0), 4);
        assert_eq!(g.row_height(2), 2);
        assert_eq!(g.col_width(2), 1);
        // Ranges tile the matrix exactly.
        let total_h: usize = (0..g.rows()).map(|r| g.row_height(r)).sum();
        let total_w: usize = (0..g.cols()).map(|c| g.col_width(c)).sum();
        assert_eq!(total_h, 10);
        assert_eq!(total_w, 7);
    }

    #[test]
    fn geometry_degenerate() {
        let g = BlockGrid::new(0, 5, 4, 4);
        assert_eq!(g.rows(), 0);
        assert_eq!(g.external_diagonals(), 0);
        let g2 = BlockGrid::new(5, 5, 100, 100);
        assert_eq!(g2.tiles(), 1);
        assert_eq!(g2.row_range(0), (1, 6));
    }

    #[test]
    fn diagonal_tiles_cover_grid_once() {
        let g = BlockGrid::new(10, 7, 4, 3); // 3×3 tiles
        let mut seen = std::collections::HashSet::new();
        for d in 0..g.external_diagonals() {
            for (r, c) in g.diagonal_tiles(d) {
                assert_eq!(r + c, d);
                assert!(seen.insert((r, c)), "tile ({r},{c}) visited twice");
            }
        }
        assert_eq!(seen.len(), g.tiles());
    }

    #[test]
    fn sequential_grid_matches_reference_all_block_sizes() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(97, 1)).generate();
        let (b, _) = DivergenceModel::test_scale(2).apply(&a);
        let fm = full_matrix(a.codes(), b.codes(), &scheme);

        for (bh, bw) in [(1, 1), (3, 5), (16, 16), (97, 13), (200, 200), (7, 97)] {
            let grid = BlockGrid::new(a.len(), b.len(), bh, bw);
            let res = run_sequential(a.codes(), b.codes(), &grid, &scheme);
            assert_eq!(res.best, fm.best, "block size {bh}×{bw}");
            assert_eq!(res.cells_computed, grid.cells());

            // Final borders stitch back into matrix row m / column n.
            let mut row_m = vec![fm.h_at(a.len(), 0)];
            for rb in &res.final_bottoms {
                row_m.extend_from_slice(&rb.h[1..]);
            }
            assert_eq!(row_m, fm.h[a.len()], "bottom row, block {bh}×{bw}");

            let mut col_n = vec![fm.h_at(0, b.len())];
            for cb in &res.final_rights {
                col_n.extend_from_slice(&cb.h[1..]);
            }
            let want: Vec<_> = (0..=a.len()).map(|i| fm.h_at(i, b.len())).collect();
            assert_eq!(col_n, want, "right col, block {bh}×{bw}");
        }
    }

    #[test]
    fn sequential_grid_matches_gotoh_on_larger_input() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::sized(3_000, 5)).generate();
        let (b, _) = DivergenceModel::test_scale(6).apply(&a);
        let grid = BlockGrid::new(a.len(), b.len(), 256, 256);
        let res = run_sequential(a.codes(), b.codes(), &grid, &scheme);
        assert_eq!(res.best, rolling_best(a.codes(), b.codes(), &scheme));
    }
}
