//! Differential batch-conformance suite.
//!
//! The batch engine's core promise is that batching is **score-transparent**:
//! a pair's score out of `megasw batch` is bit-identical to what a solo
//! [`PipelineRun`] of the same pair produces, no matter which device or
//! route (whole-pair dispatch vs full-platform slab pipeline) executed it,
//! and no matter which kernel-dispatch × pruning × recovery combination is
//! in force. This suite holds that line differentially:
//!
//! * a ≥100-pair mixed-size batch (degenerate, small and large-route pairs)
//!   checked pair-by-pair against solo runs on the full platform;
//! * sampled dispatch × pruning × recovery combos, with and without
//!   injected device faults, on the threaded backend — plus the DES twin's
//!   determinism on the same shapes (`ci.sh` reruns the headline test under
//!   `MEGASW_KERNEL=scalar` for the forced-scalar leg);
//! * the length-sorted binning plan property-tested under seeded shuffles
//!   and adversarial size mixes: every pair scheduled exactly once;
//! * the FASTA/manifest loaders fed real-world edge cases (empty records,
//!   lowercase bases, CRLF endings, trailing record without newline);
//! * the DES packing anchor: ≥2× speedup over one-pair-at-a-time on a
//!   small-pair-heavy manifest, bit-deterministically.

use megasw::prelude::*;
use megasw::seq::rng::ChaCha8Rng;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

/// Deterministic mixed-size job list: `count` homologous pairs with lengths
/// sampled from `min_len..max_len`.
fn mixed_jobs(count: usize, seed: u64, min_len: usize, max_len: usize) -> Vec<BatchJob> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let len = min_len + rng.gen_range(0usize..(max_len - min_len).max(1));
            let a =
                ChromosomeGenerator::new(GenerateConfig::sized(len, seed + i as u64)).generate();
            let (b, _) = DivergenceModel::test_scale(seed + 1_000 + i as u64).apply(&a);
            BatchJob::new(format!("pair{i}"), a.codes().to_vec(), b.codes().to_vec())
        })
        .collect()
}

/// Solo reference for one job: a fault-free [`PipelineRun`] of the same
/// pair on the same full platform with the same config.
fn solo_best(job: &BatchJob, platform: &Platform, cfg: &RunConfig) -> BestCell {
    PipelineRun::new(&job.a, &job.b, platform)
        .config(cfg.clone())
        .run()
        .unwrap_or_else(|e| panic!("solo run of {} failed: {e}", job.id))
        .best
}

/// Every dispatch mode the host supports (mirrors the conformance matrix).
fn available_dispatches() -> Vec<KernelDispatch> {
    [
        KernelDispatch::ForceScalar,
        KernelDispatch::ForceSse41,
        KernelDispatch::ForceAvx2,
    ]
    .into_iter()
    .filter(|&d| kernel::select(d).is_ok())
    .collect()
}

#[test]
fn batch_of_100_mixed_pairs_is_bit_identical_to_solo_runs() {
    // The acceptance batch: ≥100 pairs spanning degenerate (empty), small
    // (whole-pair dispatch) and large (slab-pipeline route) sizes.
    let mut jobs = mixed_jobs(100, 0xBA7C_0001, 64, 240);
    jobs.extend(mixed_jobs(4, 0xBA7C_0002, 280, 320)); // large route
    jobs.push(BatchJob::new("emptyA", Vec::new(), vec![0, 1, 2, 3]));
    jobs.push(BatchJob::new("emptyB", vec![1, 2, 3], Vec::new()));
    assert!(jobs.len() >= 100);

    let platform = Platform::env2();
    let cfg = BatchConfig::test_default()
        .with_large_threshold_cells(60_000)
        .with_bins(5);
    let base = cfg.base.clone();
    let n_large = jobs
        .iter()
        .filter(|j| j.cells() >= cfg.large_threshold_cells)
        .count();
    assert!(n_large >= 2, "want large-route coverage, got {n_large}");

    let report = {
        let (jobs, platform, cfg) = (jobs.clone(), platform.clone(), cfg.clone());
        with_deadline(
            "mixed batch",
            std::time::Duration::from_secs(300),
            move || BatchRun::new(&jobs, &platform).config(cfg).run(),
        )
    }
    .expect("batch run failed");

    // Exactly one outcome per submitted pair, in submission order.
    assert_eq!(report.pairs.len(), jobs.len());
    for (i, p) in report.pairs.iter().enumerate() {
        assert_eq!(p.pair, i, "outcome order broken at {i}");
        assert_eq!(p.id, jobs[i].id);
        assert_eq!(
            p.large,
            jobs[i].cells() >= cfg.large_threshold_cells,
            "pair {i} took the wrong route"
        );
    }
    assert_eq!(report.large_pairs, n_large);
    assert_eq!(report.small_pairs + report.large_pairs, jobs.len());
    assert!(report.latency_p50 <= report.latency_p90);
    assert!(report.latency_p90 <= report.latency_p99);
    assert!(report.gcups_wall > 0.0);

    // The differential core: every batch score equals its solo score.
    for (i, job) in jobs.iter().enumerate() {
        let want = solo_best(job, &platform, &base);
        assert_eq!(
            report.pairs[i].best, want,
            "pair {i} ({}) diverged from its solo run",
            job.id
        );
    }
    // Degenerate pairs score zero on both paths.
    assert_eq!(report.pairs[jobs.len() - 2].best, BestCell::ZERO);
    assert_eq!(report.pairs[jobs.len() - 1].best, BestCell::ZERO);
}

#[test]
fn sampled_dispatch_pruning_recovery_combos_stay_bit_identical() {
    // Dispatch × pruning × recovery sampling. Each combo runs the same
    // mixed batch twice — fault-free, then with one small-pair and one
    // large-pair device fault under a batch-level recovery budget — and
    // every score must match the fault-free solo reference both times.
    let platform = Platform::env2();
    for (ci, dispatch) in available_dispatches().into_iter().enumerate() {
        for prune in [PruneMode::Off, PruneMode::Distributed] {
            let base = RunConfig::test_default()
                .with_dispatch(dispatch)
                .with_pruning(prune)
                .with_checkpoint(CheckpointCadence::EveryRows(4));
            let cfg = BatchConfig::test_default()
                .with_base(base.clone())
                .with_large_threshold_cells(60_000)
                .with_bins(3);
            let mut jobs = mixed_jobs(8, 0xC0_4B0 + ci as u64, 96, 224);
            jobs.extend(mixed_jobs(1, 0xC0_4F0 + ci as u64, 300, 320));
            let large_idx = jobs.len() - 1;
            let want: Vec<BestCell> = jobs
                .iter()
                .map(|j| solo_best(j, &platform, &base))
                .collect();

            let clean = BatchRun::new(&jobs, &platform)
                .config(cfg.clone())
                .run()
                .unwrap_or_else(|e| panic!("{dispatch:?}/{prune:?}: clean batch failed: {e}"));
            for (i, p) in clean.pairs.iter().enumerate() {
                assert_eq!(p.best, want[i], "{dispatch:?}/{prune:?}: clean pair {i}");
            }

            // Recovery leg: the large pair loses device 1 mid-run (in-run
            // checkpoint recovery), then a small pair loses its device
            // (requeue on a survivor).
            let faults = vec![
                BatchFault {
                    pair: large_idx,
                    fault: ScheduledFault {
                        device: 1,
                        block_row: 2,
                        phase: FaultPhase::Compute,
                    },
                },
                BatchFault {
                    pair: 3,
                    fault: ScheduledFault {
                        device: 0,
                        block_row: 1,
                        phase: FaultPhase::Compute,
                    },
                },
            ];
            let faulted = {
                let (jobs, platform, cfg) = (jobs.clone(), platform.clone(), cfg.clone());
                with_deadline(
                    "faulted combo batch",
                    std::time::Duration::from_secs(120),
                    move || {
                        BatchRun::new(&jobs, &platform)
                            .config(cfg)
                            .faults(faults)
                            .recover(RecoveryPolicy {
                                max_device_failures: 2,
                            })
                            .run()
                    },
                )
            }
            .unwrap_or_else(|e| panic!("{dispatch:?}/{prune:?}: faulted batch failed: {e}"));
            assert_eq!(faulted.pairs.len(), jobs.len());
            for (i, p) in faulted.pairs.iter().enumerate() {
                assert_eq!(p.best, want[i], "{dispatch:?}/{prune:?}: faulted pair {i}");
            }
            assert!(
                faulted.recoveries >= 2,
                "{dispatch:?}/{prune:?}: expected both faults survived, got {}",
                faulted.recoveries
            );
            assert!(
                faulted.pairs[large_idx].recoveries >= 1,
                "{dispatch:?}/{prune:?}: large pair did not recover in-run"
            );
            assert!(faulted.requeued >= 1, "{dispatch:?}/{prune:?}: no requeue");
        }
    }
}

#[test]
fn des_twin_is_deterministic_on_conformance_shapes() {
    // The other backend: the DES twin of the same mixed shape must be
    // bit-deterministic and structurally consistent with the plan.
    let specs: Vec<BatchSpec> = (0..30)
        .map(|i| BatchSpec {
            m: 1_500 + 111 * (i % 7),
            n: 1_700 + 97 * (i % 5),
        })
        .chain(std::iter::once(BatchSpec { m: 6_000, n: 6_000 }))
        .collect();
    let env2 = Platform::env2();
    let cfg = BatchConfig::default().with_large_threshold_cells(30_000_000);
    let r1 = BatchSim::new(&specs, &env2).config(cfg.clone()).run();
    let r2 = BatchSim::new(&specs, &env2).config(cfg).run();
    assert_eq!(r1, r2, "DES twin is not deterministic");
    assert_eq!(r1.small_pairs + r1.large_pairs, specs.len());
    assert_eq!(r1.large_pairs, 1);
    assert_eq!(
        r1.per_device_pairs.iter().sum::<usize>(),
        r1.small_pairs,
        "packed schedule lost or duplicated a pair"
    );
    assert!(r1.packed > std::time::Duration::ZERO);
    assert!(r1.gcups_sim > 0.0);
}

#[test]
fn binning_tiles_every_manifest_exactly_under_seeded_shuffles() {
    // Property: for any size mix, bin count and threshold, the plan is a
    // permutation of the job list — every pair scheduled exactly once —
    // with correct routing and LPT (descending) queue order.
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1_7715);
    let threshold = 40_000u128;
    for case in 0..300 {
        let n = rng.gen_range(0usize..48);
        let mut cells: Vec<u128> = (0..n)
            .map(|_| match rng.gen_range(0usize..6) {
                0 => 0,                                             // degenerate
                1 => rng.gen_range(1usize..100) as u128,            // tiny
                2 => threshold,                                     // boundary
                3 => rng.gen_range(39_990usize..40_010) as u128,    // near-boundary
                4 => rng.gen_range(40_001usize..5_000_000) as u128, // large
                _ => rng.gen_range(0usize..1_000_000) as u128,      // anything
            })
            .collect();
        // Adversarial mixes on a rotating subset of cases.
        match case % 5 {
            1 => cells.iter_mut().for_each(|c| *c = 777), // all equal
            2 => cells.sort_unstable(),                   // ascending
            3 => {
                cells.sort_unstable();
                cells.reverse(); // descending
            }
            4 if !cells.is_empty() => {
                cells[0] = u64::MAX as u128; // one huge + rest tiny
                cells[1..].iter_mut().for_each(|c| *c %= 50);
            }
            _ => {}
        }
        let bins = 1 + rng.gen_range(0usize..9);
        let cfg = BatchConfig::test_default()
            .with_large_threshold_cells(threshold)
            .with_bins(bins);
        let plan = BatchPlan::build_from_cells(&cells, &cfg);

        // Exact tiling: scheduled() is a permutation of 0..n.
        let mut sched = plan.scheduled();
        sched.sort_unstable();
        assert_eq!(
            sched,
            (0..n).collect::<Vec<_>>(),
            "case {case}: not a tiling"
        );

        // Routing respects the threshold.
        for &i in &plan.large {
            assert!(
                cells[i] >= threshold,
                "case {case}: pair {i} misrouted large"
            );
        }
        for b in &plan.bins {
            for &i in &b.pairs {
                assert!(
                    cells[i] < threshold,
                    "case {case}: pair {i} misrouted small"
                );
            }
        }

        // Queue order is LPT: non-increasing cell counts front to back.
        let q = plan.queue_order();
        for w in q.windows(2) {
            assert!(
                cells[w[0]] >= cells[w[1]],
                "case {case}: queue not length-sorted"
            );
        }

        // Bins are balanced: sizes differ by at most one, larger bins first.
        let sizes: Vec<usize> = plan.bins.iter().map(|b| b.pairs.len()).collect();
        if let (Some(&max), Some(&min)) = (sizes.iter().max(), sizes.iter().min()) {
            assert!(max - min <= 1, "case {case}: unbalanced bins {sizes:?}");
        }
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "case {case}: bin sizes not front-loaded");
        }

        // Determinism: the same inputs produce the same plan.
        assert_eq!(
            plan,
            BatchPlan::build_from_cells(&cells, &cfg),
            "case {case}"
        );
    }
}

/// A scratch directory unique to this process.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("megasw-batchconf-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fasta_pair_loader_tolerates_real_world_edge_cases() {
    // One file exercises every quirk the loaders must survive: CRLF line
    // endings, lowercase bases, an empty record, and a trailing record
    // without a final newline.
    let dir = scratch("fasta");
    let a_path = dir.join("a.fa");
    let b_path = dir.join("b.fa");
    std::fs::write(
        &a_path,
        ">r0 first\r\nACGTacgt\r\nACGT\r\n>r1 empty\r\n>r2 lower\nacgt\nacgt\n>r3 trailing\nACGTACG",
    )
    .unwrap();
    std::fs::write(
        &b_path,
        ">s0\nACGTACGTACGT\n>s1\nTTTT\n>s2\r\nACGTACGT\r\n>s3\ngattaca",
    )
    .unwrap();

    let jobs = jobs_from_fasta_pair(&a_path, &b_path).unwrap();
    assert_eq!(jobs.len(), 4);
    assert_eq!(jobs[0].id, "r0|s0");
    assert_eq!(jobs[1].id, "r1|s1");
    assert_eq!(jobs[0].a.len(), 12); // CRLF + lowercase decoded
    assert!(jobs[1].a.is_empty()); // empty record preserved as empty pair
    assert_eq!(jobs[2].a.len(), 8); // lowercase-only record
    assert_eq!(jobs[3].a.len(), 7); // trailing record without newline
    assert_eq!(jobs[3].b.len(), 7);

    // The loaded batch runs, and every score matches the scalar oracle.
    let cfg = BatchConfig::test_default();
    let report = BatchRun::new(&jobs, &Platform::env1())
        .config(cfg.clone())
        .run()
        .unwrap();
    for (i, p) in report.pairs.iter().enumerate() {
        let want = kernel::scalar().best(&jobs[i].a, &jobs[i].b, &cfg.base.scheme);
        assert_eq!(p.best, want, "pair {i}");
    }
    assert_eq!(report.pairs[1].best, BestCell::ZERO); // empty record → 0

    // Record-count mismatch is a loud error, not a silent zip-truncate.
    let c_path = dir.join("c.fa");
    std::fs::write(&c_path, ">only\nACGT\n").unwrap();
    let err = jobs_from_fasta_pair(&a_path, &c_path).unwrap_err();
    assert!(err.contains("record count mismatch"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_loader_resolves_paths_and_rejects_malformed_lines() {
    let dir = scratch("manifest");
    for (name, text) in [
        ("p0a.fa", ">p0a\nACGTACGTACGT\n"),
        ("p0b.fa", ">p0b\r\nacgtacgt\r\n"), // CRLF + lowercase
        ("p1a.fa", ">p1a\nGATTACA"),        // no trailing newline
        ("p1b.fa", ">p1b\nTTTTTTTT\n"),
    ] {
        std::fs::write(dir.join(name), text).unwrap();
    }
    let manifest = dir.join("batch.manifest");
    // Comments, blank lines, relative and absolute paths all in one file.
    std::fs::write(
        &manifest,
        format!(
            "# batch manifest\n\np0a.fa p0b.fa\n{} p1b.fa\n",
            dir.join("p1a.fa").display()
        ),
    )
    .unwrap();

    let jobs = jobs_from_manifest(&manifest).unwrap();
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[0].id, "p0a|p0b");
    assert_eq!(jobs[1].id, "p1a|p1b");
    assert_eq!(jobs[0].b.len(), 8);
    assert_eq!(jobs[1].a.len(), 7);

    let cfg = BatchConfig::test_default();
    let report = BatchRun::new(&jobs, &Platform::env1())
        .config(cfg.clone())
        .run()
        .unwrap();
    for (i, p) in report.pairs.iter().enumerate() {
        let want = kernel::scalar().best(&jobs[i].a, &jobs[i].b, &cfg.base.scheme);
        assert_eq!(p.best, want, "pair {i}");
    }

    // A line with three tokens is malformed, with the line number named.
    std::fs::write(&manifest, "p0a.fa p0b.fa extra.fa\n").unwrap();
    let err = jobs_from_manifest(&manifest).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    // A missing file is a loud error naming the resolved path.
    std::fs::write(&manifest, "p0a.fa nothere.fa\n").unwrap();
    let err = jobs_from_manifest(&manifest).unwrap_err();
    assert!(err.contains("nothere.fa"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_telemetry_tracks_pair_progress_through_a_batch() {
    let jobs = mixed_jobs(6, 0x11_7E, 64, 160);
    let live = std::sync::Arc::new(LiveTelemetry::new(Platform::env1().len(), 0));
    let report = BatchRun::new(&jobs, &Platform::env1())
        .config(BatchConfig::test_default())
        .live(std::sync::Arc::clone(&live))
        .run()
        .unwrap();
    assert_eq!(report.pairs.len(), 6);
    let snap = live.snapshot();
    assert_eq!(snap.pairs_total, 6);
    assert_eq!(snap.pairs_done, 6);
    let line = render_progress_line(&snap, None);
    assert!(line.contains("pairs 6/6"), "{line}");
}

#[test]
fn des_packing_beats_serial_by_2x_on_small_pair_heavy_specs() {
    // The inter-task acceptance anchor: a ≥100-pair small-pair-heavy
    // manifest packs onto env2's three devices at least 2× faster than the
    // serial one-pair-at-a-time baseline, bit-deterministically.
    let specs: Vec<BatchSpec> = (0..120)
        .map(|i| BatchSpec {
            m: 2_000 + 29 * (i % 17),
            n: 2_200 + 41 * (i % 13),
        })
        .collect();
    let env2 = Platform::env2();
    let sim = BatchSim::new(&specs, &env2)
        .config(BatchConfig::default())
        .run();
    assert_eq!(sim.small_pairs, 120);
    assert_eq!(sim.large_pairs, 0);
    assert_eq!(sim.per_device_pairs.iter().sum::<usize>(), 120);
    assert!(
        sim.packing_speedup() >= 2.0,
        "packing speedup {:.2} < 2 (packed {:?} vs serial {:?})",
        sim.packing_speedup(),
        sim.packed,
        sim.serial
    );
    // Deterministic twice over — the bench anchor depends on it.
    let again = BatchSim::new(&specs, &env2)
        .config(BatchConfig::default())
        .run();
    assert_eq!(sim, again);
}
