//! Interconnect (PCIe / host bridge) timing model.

use crate::time::SimTime;

/// A point-to-point link: fixed latency plus bandwidth-limited transfer.
///
/// GPU-to-GPU border traffic in the paper flows over PCIe through host
/// memory; we model the *effective* end-to-end pipe (both hops folded into
/// one latency/bandwidth pair, as measured numbers for staged copies
/// usually are). Links are full-duplex and independent per neighbour pair —
/// contention on a shared host bridge is outside the model and noted in
/// DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way message latency in nanoseconds (DMA setup + interrupt).
    pub latency_ns: u64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkSpec {
    /// Effective PCIe 2.0 ×16 staged device↔device pipe (~6 GB/s, ~8 µs).
    pub fn pcie2_x16() -> LinkSpec {
        LinkSpec {
            latency_ns: 8_000,
            bandwidth_bytes_per_sec: 6.0e9,
        }
    }

    /// Effective PCIe 3.0 ×16 pipe (~12 GB/s, ~6 µs).
    pub fn pcie3_x16() -> LinkSpec {
        LinkSpec {
            latency_ns: 6_000,
            bandwidth_bytes_per_sec: 12.0e9,
        }
    }

    /// A deliberately slow link for overlap stress tests (~0.5 GB/s).
    pub fn slow_for_tests() -> LinkSpec {
        LinkSpec {
            latency_ns: 20_000,
            bandwidth_bytes_per_sec: 0.5e9,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let bw_ns = (bytes as f64 / self.bandwidth_bytes_per_sec) * 1e9;
        SimTime::from_nanos(self.latency_ns + bw_ns.round() as u64)
    }

    /// Bytes/second this link sustains for messages of the given size
    /// (latency amortization curve; used by tests and the balance model).
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        let t = self.transfer_time(bytes).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            bytes as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency() {
        let l = LinkSpec {
            latency_ns: 1_000,
            bandwidth_bytes_per_sec: 1e9,
        };
        // 1000 bytes at 1 GB/s = 1 µs + 1 µs latency.
        assert_eq!(l.transfer_time(1_000), SimTime::from_nanos(2_000));
        // Zero-byte message still pays latency.
        assert_eq!(l.transfer_time(0), SimTime::from_nanos(1_000));
    }

    #[test]
    fn effective_bandwidth_approaches_peak_for_large_messages() {
        let l = LinkSpec::pcie2_x16();
        let small = l.effective_bandwidth(4 * 1024);
        let large = l.effective_bandwidth(64 * 1024 * 1024);
        assert!(small < large);
        assert!(large > 0.95 * l.bandwidth_bytes_per_sec);
        assert!(small < 0.5 * l.bandwidth_bytes_per_sec);
    }

    #[test]
    fn faster_generation_is_faster() {
        let msg = 1024 * 1024;
        assert!(
            LinkSpec::pcie3_x16().transfer_time(msg) < LinkSpec::pcie2_x16().transfer_time(msg)
        );
    }
}
