//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in integer nanoseconds.
///
/// Integer nanoseconds keep the discrete-event engine exactly associative:
/// re-running a schedule in any equivalent order produces bit-identical
/// timestamps, which the determinism tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From (non-negative, finite) seconds; rounds to the nearest nanosecond.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime requires finite non-negative seconds, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Element-wise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(250).as_secs_f64() - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_nanos(140));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-0.1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_nanos(5_000).to_string(), "5.000µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs_f64(5.0).to_string(), "5.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
