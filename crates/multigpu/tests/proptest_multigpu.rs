//! Property-based tests for the multi-GPU system: partition laws, ring
//! protocol, and pipeline-equals-reference on arbitrary shapes.

use megasw_gpusim::{catalog, Platform};
use megasw_multigpu::circbuf::CircularBuffer;
use megasw_multigpu::partition::{largest_remainder, make_slabs};
use megasw_multigpu::pipeline::run_pipeline;
use megasw_multigpu::{PartitionPolicy, RunConfig};
use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};
use megasw_sw::gotoh::gotoh_best;
use proptest::prelude::*;

fn weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1_000.0, 1..8)
}

fn any_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(0usize..6, 1..5).prop_map(|picks| {
        let boards = catalog::all();
        Platform::custom(
            "prop",
            picks.into_iter().map(|i| boards[i].clone()).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn largest_remainder_conserves_total(total in 0usize..100_000, w in weights()) {
        let alloc = largest_remainder(total, &w);
        prop_assert_eq!(alloc.len(), w.len());
        prop_assert_eq!(alloc.iter().sum::<usize>(), total);
    }

    #[test]
    fn largest_remainder_min_one_when_feasible(total in 1usize..100_000, w in weights()) {
        let alloc = largest_remainder(total, &w);
        if total >= w.len() {
            prop_assert!(alloc.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn largest_remainder_proportional_within_one(
        total in 100usize..100_000, w in weights()
    ) {
        prop_assume!(total >= w.len());
        let alloc = largest_remainder(total, &w);
        let sum: f64 = w.iter().sum();
        let spare = (total - w.len()) as f64;
        for (i, &wi) in w.iter().enumerate() {
            // Reserved unit + proportional share of the remainder, ±1 from
            // largest-remainder rounding.
            let exact = 1.0 + spare * wi / sum;
            prop_assert!(
                (alloc[i] as f64 - exact).abs() <= 1.0 + 1e-9,
                "i={i}: {} vs {exact}",
                alloc[i]
            );
        }
    }

    #[test]
    fn slabs_partition_exactly(
        n in 0usize..500_000,
        block_w in 1usize..2_000,
        platform in any_platform(),
        equal in any::<bool>(),
    ) {
        let policy = if equal { PartitionPolicy::Equal } else { PartitionPolicy::Proportional };
        let slabs = make_slabs(n, block_w, &platform, &policy);
        if n == 0 {
            prop_assert!(slabs.is_empty());
        } else {
            prop_assert_eq!(slabs[0].j0, 1);
            for w in slabs.windows(2) {
                prop_assert_eq!(w[0].j_end(), w[1].j0);
                // Interior slab boundaries land on tile-grid columns.
                prop_assert_eq!((w[1].j0 - 1) % block_w, 0);
            }
            prop_assert_eq!(slabs.last().unwrap().j_end(), n + 1);
            prop_assert!(slabs.len() <= platform.len());
            prop_assert!(slabs.iter().all(|s| s.width >= 1));
        }
    }

    #[test]
    fn ring_preserves_order_and_counts(
        items in prop::collection::vec(any::<u32>(), 0..500),
        cap in 1usize..16,
    ) {
        let ring = CircularBuffer::with_capacity(cap);
        let producer = {
            let ring = ring.clone();
            let items = items.clone();
            std::thread::spawn(move || {
                for v in items {
                    ring.push(v).unwrap();
                }
                ring.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = ring.pop().unwrap() {
            got.push(v);
        }
        producer.join().unwrap();
        prop_assert_eq!(got, items.clone());
        let stats = ring.stats();
        prop_assert_eq!(stats.pushed, items.len() as u64);
        prop_assert_eq!(stats.popped, items.len() as u64);
        prop_assert!(stats.max_occupancy <= cap);
    }

    #[test]
    fn pipeline_equals_reference_on_arbitrary_shapes(
        seed in any::<u64>(),
        m in 1usize..600,
        n in 1usize..600,
        block in 1usize..64,
        cap in 1usize..8,
        platform in any_platform(),
    ) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(m, seed)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(n, seed ^ 0xABCD)).generate();
        let cfg = RunConfig::paper_default()
            .with_block(block)
            .with_buffer_capacity(cap);
        let report = run_pipeline(a.codes(), b.codes(), &platform, &cfg).unwrap();
        prop_assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    }

    #[test]
    fn pipeline_equals_reference_on_similar_pairs(
        seed in any::<u64>(),
        len in 50usize..800,
        block in 8usize..96,
    ) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed ^ 0x5A5A).apply(&a);
        let cfg = RunConfig::paper_default().with_block(block);
        let report = run_pipeline(a.codes(), b.codes(), &Platform::env2(), &cfg).unwrap();
        prop_assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    }

    #[test]
    fn transfer_accounting_matches_geometry(
        m in 1usize..2_000,
        n in 100usize..2_000,
        block in 16usize..256,
    ) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(m, 1)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(n, 2)).generate();
        let cfg = RunConfig::paper_default().with_block(block);
        let p = Platform::env1();
        let report = run_pipeline(a.codes(), b.codes(), &p, &cfg).unwrap();
        let rows = m.div_ceil(block);
        if report.devices.len() == 2 {
            // Each block-row border carries (height+1) H + (height+1) E
            // values at 4 bytes each.
            let expected: u64 = (0..rows)
                .map(|r| {
                    let h = ((r + 1) * block).min(m) - r * block;
                    2 * (h as u64 + 1) * 4
                })
                .sum();
            prop_assert_eq!(report.devices[0].bytes_sent, expected);
        }
    }
}
