//! The deterministic schedule engine (CUDA-stream semantics).
//!
//! A [`Schedule`] owns a set of FIFO **resources** (device compute streams,
//! copy engines, links) and a growing DAG of **tasks**. A task is enqueued
//! on exactly one resource with an explicit dependency list; it starts when
//! all dependencies have finished *and* every earlier task on its resource
//! has finished (head-of-line blocking, like a CUDA stream). Timestamps are
//! computed eagerly at insertion — tasks must be added in a topological
//! order of their dependencies, which the multi-GPU planner does naturally
//! (it walks external diagonals in order).
//!
//! The engine is single-threaded and exact: the same task insertions always
//! produce the same nanosecond timeline, so simulated-GCUPS results are
//! reproducible to the bit.

use crate::time::SimTime;
use crate::trace::{SpanKind, TraceSpan};

/// Handle to a resource (stream/link) inside one [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Handle to a task inside one [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

#[derive(Debug, Clone)]
struct ResourceState {
    name: String,
    available_at: SimTime,
    busy: SimTime,
    tasks: usize,
}

/// A deterministic discrete-event schedule. See the module docs.
///
/// ```
/// use megasw_gpusim::{Schedule, SimTime, SpanKind};
///
/// let mut s = Schedule::new();
/// let gpu0 = s.add_resource("gpu0");
/// let gpu1 = s.add_resource("gpu1");
/// let producer = s.add_task(gpu0, &[], SimTime::from_micros(10), SpanKind::Kernel, 0);
/// let consumer = s.add_task(gpu1, &[producer], SimTime::from_micros(5), SpanKind::Kernel, 0);
/// assert_eq!(s.start_of(consumer), SimTime::from_micros(10));
/// assert_eq!(s.makespan(), SimTime::from_micros(15));
/// ```
#[derive(Debug, Default)]
pub struct Schedule {
    resources: Vec<ResourceState>,
    finishes: Vec<SimTime>,
    starts: Vec<SimTime>,
    spans: Vec<TraceSpan>,
    makespan: SimTime,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Register a resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(ResourceState {
            name: name.into(),
            available_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            tasks: 0,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Enqueue a task on `resource`, starting no earlier than every
    /// dependency's finish time. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `resource` or any dependency id is unknown.
    pub fn add_task(
        &mut self,
        resource: ResourceId,
        deps: &[TaskId],
        duration: SimTime,
        kind: SpanKind,
        tag: u64,
    ) -> TaskId {
        let ready = deps
            .iter()
            .map(|d| self.finishes[d.0])
            .fold(SimTime::ZERO, SimTime::max);
        let res = &mut self.resources[resource.0];
        let start = ready.max(res.available_at);
        let finish = start + duration;
        res.available_at = finish;
        res.busy += duration;
        res.tasks += 1;
        self.makespan = self.makespan.max(finish);
        self.starts.push(start);
        self.finishes.push(finish);
        self.spans.push(TraceSpan {
            resource,
            kind,
            tag,
            start,
            end: finish,
        });
        TaskId(self.finishes.len() - 1)
    }

    /// When the given task starts.
    pub fn start_of(&self, task: TaskId) -> SimTime {
        self.starts[task.0]
    }

    /// When the given task finishes.
    pub fn finish_of(&self, task: TaskId) -> SimTime {
        self.finishes[task.0]
    }

    /// Latest finish time across all tasks (total simulated runtime).
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Total busy time of a resource.
    pub fn busy_of(&self, resource: ResourceId) -> SimTime {
        self.resources[resource.0].busy
    }

    /// Busy fraction of a resource over the makespan (0 if empty).
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        if self.makespan == SimTime::ZERO {
            0.0
        } else {
            self.busy_of(resource).as_secs_f64() / self.makespan.as_secs_f64()
        }
    }

    /// Resource display name.
    pub fn resource_name(&self, resource: ResourceId) -> &str {
        &self.resources[resource.0].name
    }

    /// Number of tasks enqueued on a resource.
    pub fn task_count(&self, resource: ResourceId) -> usize {
        self.resources[resource.0].tasks
    }

    /// All recorded spans (insertion order).
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// `(id, name)` pairs for every resource, for the Gantt renderer.
    pub fn resource_list(&self) -> Vec<(ResourceId, String)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i), r.name.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_resources_run_in_parallel() {
        let mut s = Schedule::new();
        let r0 = s.add_resource("gpu0");
        let r1 = s.add_resource("gpu1");
        let t0 = s.add_task(r0, &[], SimTime::from_nanos(100), SpanKind::Kernel, 0);
        let t1 = s.add_task(r1, &[], SimTime::from_nanos(80), SpanKind::Kernel, 0);
        assert_eq!(s.start_of(t0), SimTime::ZERO);
        assert_eq!(s.start_of(t1), SimTime::ZERO);
        assert_eq!(s.makespan(), SimTime::from_nanos(100));
        assert_eq!(s.finish_of(t1), SimTime::from_nanos(80));
    }

    #[test]
    fn fifo_resource_serializes() {
        let mut s = Schedule::new();
        let r = s.add_resource("gpu0");
        let a = s.add_task(r, &[], SimTime::from_nanos(50), SpanKind::Kernel, 0);
        let b = s.add_task(r, &[], SimTime::from_nanos(50), SpanKind::Kernel, 1);
        assert_eq!(s.finish_of(a), SimTime::from_nanos(50));
        assert_eq!(s.start_of(b), SimTime::from_nanos(50));
        assert_eq!(s.finish_of(b), SimTime::from_nanos(100));
    }

    #[test]
    fn dependencies_delay_start() {
        let mut s = Schedule::new();
        let r0 = s.add_resource("gpu0");
        let r1 = s.add_resource("gpu1");
        let producer = s.add_task(r0, &[], SimTime::from_nanos(200), SpanKind::Kernel, 0);
        let consumer = s.add_task(
            r1,
            &[producer],
            SimTime::from_nanos(10),
            SpanKind::Kernel,
            0,
        );
        assert_eq!(s.start_of(consumer), SimTime::from_nanos(200));
        assert_eq!(s.makespan(), SimTime::from_nanos(210));
    }

    #[test]
    fn head_of_line_blocking() {
        // A stalled head task delays a later, dependency-free task on the
        // same resource — CUDA stream semantics.
        let mut s = Schedule::new();
        let r0 = s.add_resource("gpu0");
        let r1 = s.add_resource("gpu1");
        let slow = s.add_task(r0, &[], SimTime::from_nanos(500), SpanKind::Kernel, 0);
        let blocked = s.add_task(r1, &[slow], SimTime::from_nanos(10), SpanKind::CopyIn, 0);
        let free = s.add_task(r1, &[], SimTime::from_nanos(10), SpanKind::Kernel, 0);
        assert_eq!(s.start_of(blocked), SimTime::from_nanos(500));
        // `free` was enqueued after `blocked`, so it waits despite no deps.
        assert_eq!(s.start_of(free), SimTime::from_nanos(510));
    }

    #[test]
    fn utilization_and_busy() {
        let mut s = Schedule::new();
        let r0 = s.add_resource("gpu0");
        let r1 = s.add_resource("gpu1");
        let a = s.add_task(r0, &[], SimTime::from_nanos(100), SpanKind::Kernel, 0);
        let _b = s.add_task(r1, &[a], SimTime::from_nanos(100), SpanKind::Kernel, 0);
        assert_eq!(s.makespan(), SimTime::from_nanos(200));
        assert!((s.utilization(r0) - 0.5).abs() < 1e-12);
        assert!((s.utilization(r1) - 0.5).abs() < 1e-12);
        assert_eq!(s.busy_of(r0), SimTime::from_nanos(100));
        assert_eq!(s.task_count(r0), 1);
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut s = Schedule::new();
            let g: Vec<_> = (0..3).map(|i| s.add_resource(format!("gpu{i}"))).collect();
            let mut prev: Option<TaskId> = None;
            for d in 0..50u64 {
                for (i, &r) in g.iter().enumerate() {
                    let deps: Vec<TaskId> = prev.into_iter().collect();
                    let t = s.add_task(
                        r,
                        &deps,
                        SimTime::from_nanos(13 + (d * 7 + i as u64) % 31),
                        SpanKind::Kernel,
                        d,
                    );
                    if i == 2 {
                        prev = Some(t);
                    }
                }
            }
            s.makespan()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.makespan(), SimTime::ZERO);
        assert!(s.spans().is_empty());
    }
}
