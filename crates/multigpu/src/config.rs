//! Run configuration.

use megasw_sw::ScoreScheme;

/// How matrix columns are divided among devices.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionPolicy {
    /// Equal block-column counts (what you'd do if all GPUs were alike).
    Equal,
    /// Proportional to each device's calibrated compute power — the
    /// paper's strategy for heterogeneous platforms.
    Proportional,
    /// Explicit weights (one per device), mostly for tests and ablations.
    Explicit(Vec<f64>),
}

/// Parameters of one multi-GPU run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Tile height in matrix rows. Communication granularity: one border
    /// segment of this height flows to the neighbour per block-row.
    pub block_h: usize,
    /// Tile width in matrix columns.
    pub block_w: usize,
    /// Circular-buffer capacity, in border segments. 1 ≈ synchronous
    /// hand-off; larger values decouple producer and consumer.
    pub buffer_capacity: usize,
    /// Column partitioning policy.
    pub partition: PartitionPolicy,
    /// Scoring scheme.
    pub scheme: ScoreScheme,
}

impl RunConfig {
    /// Defaults used throughout the evaluation: 512×512 tiles, capacity-8
    /// rings, proportional partitioning, CUDAlign scoring.
    pub fn paper_default() -> RunConfig {
        RunConfig {
            block_h: 512,
            block_w: 512,
            buffer_capacity: 8,
            partition: PartitionPolicy::Proportional,
            scheme: ScoreScheme::cudalign(),
        }
    }

    /// Small tiles for unit tests (forces many pipeline interactions on
    /// tiny inputs).
    pub fn test_default() -> RunConfig {
        RunConfig {
            block_h: 32,
            block_w: 32,
            buffer_capacity: 4,
            partition: PartitionPolicy::Proportional,
            scheme: ScoreScheme::cudalign(),
        }
    }

    /// Validate field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_h == 0 || self.block_w == 0 {
            return Err("block dimensions must be at least 1".into());
        }
        if self.buffer_capacity == 0 {
            return Err("buffer capacity must be at least 1".into());
        }
        if let PartitionPolicy::Explicit(w) = &self.partition {
            if w.is_empty() {
                return Err("explicit weights must not be empty".into());
            }
            if w.iter().any(|x| !x.is_finite() || *x <= 0.0) {
                return Err("explicit weights must be positive and finite".into());
            }
        }
        self.scheme.validate().map_err(|e| e.to_string())
    }

    /// Builder-style: set the buffer capacity.
    pub fn with_buffer_capacity(mut self, cap: usize) -> RunConfig {
        self.buffer_capacity = cap;
        self
    }

    /// Builder-style: set the partition policy.
    pub fn with_partition(mut self, p: PartitionPolicy) -> RunConfig {
        self.partition = p;
        self
    }

    /// Builder-style: set square tiles of the given side.
    pub fn with_block(mut self, side: usize) -> RunConfig {
        self.block_h = side;
        self.block_w = side;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(RunConfig::paper_default().validate().is_ok());
        assert!(RunConfig::test_default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RunConfig::paper_default().with_block(0).validate().is_err());
        assert!(RunConfig::paper_default()
            .with_buffer_capacity(0)
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![]))
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![1.0, -2.0]))
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![f64::NAN]))
            .validate()
            .is_err());
    }

    #[test]
    fn builders_compose() {
        let c = RunConfig::paper_default()
            .with_block(128)
            .with_buffer_capacity(2)
            .with_partition(PartitionPolicy::Equal);
        assert_eq!(c.block_h, 128);
        assert_eq!(c.block_w, 128);
        assert_eq!(c.buffer_capacity, 2);
        assert_eq!(c.partition, PartitionPolicy::Equal);
    }
}
