//! `metrics_scrape` — a std-only scrape client for the live `/metrics`
//! endpoint, used by `ci.sh` to smoke-test `megasw serve-metrics`.
//!
//! Usage: `metrics_scrape HOST:PORT [--retries N]`
//!
//! Fetches `/health` and `/metrics`, validates the exposition with the
//! same conformance checker the unit tests use
//! ([`megasw_obs::validate_exposition`]), and prints a one-line summary.
//! Exits non-zero on connection failure (after the retries), non-200
//! status, or a malformed exposition — so a CI pipeline can gate on it.

use std::time::Duration;

use megasw_obs::{http_get, validate_exposition};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: metrics_scrape HOST:PORT [--retries N]");
        std::process::exit(2);
    };
    let mut retries = 20u32;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--retries expects a number"));
            }
            other => die(&format!("unknown flag: {other}")),
        }
    }

    // The server may still be binding when CI launches us: retry the
    // first contact with a short backoff.
    let health = retrying(retries, || http_get(&addr, "/health"));
    expect_200("/health", &health.0);
    if !health.1.contains("\"healthy\": true") {
        die(&format!("/health reports unhealthy: {}", health.1.trim()));
    }

    let (status, body) =
        http_get(&addr, "/metrics").unwrap_or_else(|e| die(&format!("GET /metrics failed: {e}")));
    expect_200("/metrics", &status);
    match validate_exposition(&body) {
        Ok(summary) => println!(
            "scrape ok: {} families, {} samples, {} histograms, health {}",
            summary.families,
            summary.samples,
            summary.histograms,
            health.1.trim()
        ),
        Err(e) => die(&format!("/metrics failed conformance: {e}")),
    }
}

fn retrying(
    retries: u32,
    mut f: impl FnMut() -> std::io::Result<(String, String)>,
) -> (String, String) {
    let mut last_err = None;
    for _ in 0..retries.max(1) {
        match f() {
            Ok(r) => return r,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
    die(&format!(
        "could not reach the endpoint after {retries} attempts: {}",
        last_err.unwrap()
    ))
}

fn expect_200(path: &str, status: &str) {
    if !status.contains("200") {
        die(&format!("GET {path} returned {status}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("metrics_scrape: {msg}");
    std::process::exit(1);
}
