//! Machine-readable metric exposition: Prometheus text format and JSON.
//!
//! The CLI's `--metrics-format prom|json` flags render a
//! [`MetricsRegistry`] through these writers instead of the human summary,
//! and the `/metrics` HTTP endpoint serves the Prometheus form live. The
//! Prometheus output follows the text exposition format version 0.0.4:
//! counters become `megasw_<name>` counters with `# HELP`/`# TYPE`
//! metadata, histograms become native histograms with cumulative
//! `_bucket{le="…"}` series (from the log-bucketed [`Histogram`]) plus
//! `_sum`/`_count` — scrapeable by an actual Prometheus and diffable as a
//! stable artifact either way. Everything is emitted in sorted name order,
//! so two runs of the same workload produce line-comparable documents.
//!
//! [`validate_exposition`] is the conformance half: a dependency-free
//! parser that checks metadata ordering, name/label syntax (including
//! escape sequences), bucket monotonicity and the `+Inf`/`_count`
//! agreement. The unit tests, the integration suite and the
//! `metrics-scrape` CI client all validate through it, so the writer and
//! the checker cannot drift apart silently.
//!
//! [`Histogram`]: crate::metrics::Histogram

use crate::json::escape;
use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Turn a dotted metric name into a Prometheus-legal one:
/// `ring.pop_wait_ns` → `megasw_ring_pop_wait_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("megasw_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a finite `f64` the way Prometheus expects (no exponent games
/// needed for our value ranges; integers stay integral).
fn prom_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a label *value* per the text exposition format: backslash,
/// double-quote and newline must be escaped; everything else is literal.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` docstring: backslash and newline only (quotes are
/// legal in help text).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// The `# HELP` line for a metric: the registry's description when one was
/// attached, otherwise a generated line naming the dotted source metric.
fn help_line(metrics: &MetricsRegistry, raw: &str, kind: &str) -> String {
    match metrics.help(raw) {
        Some(h) => escape_help(h),
        None => format!("megasw {kind} {raw}"),
    }
}

/// Prometheus text exposition of the registry.
pub fn prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let p = prom_name(name);
        let _ = writeln!(out, "# HELP {p} {}", help_line(metrics, name, "counter"));
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in metrics.histograms() {
        let p = prom_name(name);
        let _ = writeln!(out, "# HELP {p} {}", help_line(metrics, name, "histogram"));
        let _ = writeln!(out, "# TYPE {p} histogram");
        for (bound, cum) in h.cumulative_buckets() {
            let _ = writeln!(
                out,
                "{p}_bucket{{le=\"{}\"}} {cum}",
                escape_label_value(&prom_value(bound))
            );
        }
        let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{p}_sum {}", prom_value(h.sum));
        let _ = writeln!(out, "{p}_count {}", h.count);
    }
    out
}

/// JSON exposition of the registry: one object with `counters` and
/// `histograms` members, histogram values carrying count/sum/min/max and
/// the three standard quantiles.
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in metrics.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {value}", escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for (name, h) in metrics.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            escape(name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            json_num(h.p50()),
            json_num(h.p90()),
            json_num(h.p99()),
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// JSON has no NaN/Infinity literals; a histogram can only hold finite
/// statistics (non-finite observations are rejected), but an *empty* one
/// reports min/max of 0.0 via Default, which is already finite. Guard
/// anyway so the writer can never emit an unparseable document.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exposition conformance checking
// ---------------------------------------------------------------------------

/// What [`validate_exposition`] found in a conforming document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpositionSummary {
    /// Metric families (one `# TYPE` each).
    pub families: usize,
    /// Sample lines (non-comment).
    pub samples: usize,
    /// Families declared `histogram`.
    pub histograms: usize,
}

#[derive(Debug, Default)]
struct Family {
    help: bool,
    typ: Option<String>,
    /// Histogram `le` buckets in order of appearance: (bound, cumulative).
    buckets: Vec<(f64, u64)>,
    sum_seen: bool,
    count: Option<f64>,
    samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `{k="v",…}` starting after the `{`. Returns (labels, rest-index).
fn parse_labels(s: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = s.as_bytes();
    let mut labels = Vec::new();
    let mut i = 0usize;
    loop {
        // Label name up to '='.
        let eq = s[i..].find('=').map(|o| i + o).ok_or("label without '='")?;
        let name = s[i..eq].trim().to_string();
        if !valid_label_name(&name) {
            return Err(format!("bad label name {name:?}"));
        }
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err("label value must be double-quoted".into());
        }
        // Scan the escaped value.
        let mut value = String::new();
        let mut j = eq + 2;
        loop {
            match bytes.get(j) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(j + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => return Err(format!("bad escape \\{other:?} in label value")),
                    }
                    j += 2;
                }
                Some(_) => {
                    let c = s[j..].chars().next().unwrap();
                    value.push(c);
                    j += c.len_utf8();
                }
            }
        }
        labels.push((name, value));
        j += 1; // past the closing quote
        match bytes.get(j) {
            Some(b',') => i = j + 1,
            Some(b'}') => return Ok((labels, j + 1)),
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

/// Check a Prometheus text-format document for conformance: `# HELP` and
/// `# TYPE` metadata precede every family's first sample, metric and label
/// names are legal, label values use only legal escapes, counter samples
/// are finite and non-negative, and every `histogram` family has ascending
/// `le` bounds, nondecreasing cumulative bucket counts, a `+Inf` bucket
/// that equals its `_count`, and a `_sum` series.
///
/// This is the shared conformance helper: unit tests, the integration
/// suite and the `metrics-scrape` CI client all call it.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |m: String| format!("line {}: {m}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let payload = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(ctx(format!("bad metric name {name:?} in HELP")));
                    }
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.samples > 0 {
                        return Err(ctx(format!("HELP for {name} after its samples")));
                    }
                    fam.help = true;
                }
                "TYPE" => {
                    if !valid_metric_name(name) {
                        return Err(ctx(format!("bad metric name {name:?} in TYPE")));
                    }
                    if !matches!(payload, "counter" | "gauge" | "histogram" | "summary") {
                        return Err(ctx(format!("unknown type {payload:?} for {name}")));
                    }
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.samples > 0 {
                        return Err(ctx(format!("TYPE for {name} after its samples")));
                    }
                    if fam.typ.is_some() {
                        return Err(ctx(format!("duplicate TYPE for {name}")));
                    }
                    fam.typ = Some(payload.to_string());
                    order.push(name.to_string());
                }
                _ => {} // other comments are legal and ignored
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // Sample line: name[{labels}] value
        let (name, labels, rest) = match line.find('{') {
            Some(brace) => {
                let (labels, used) =
                    parse_labels(&line[brace + 1..]).map_err(|m| ctx(m.to_string()))?;
                (&line[..brace], labels, &line[brace + 1 + used..])
            }
            None => match line.find(' ') {
                Some(sp) => (&line[..sp], Vec::new(), &line[sp..]),
                None => return Err(ctx("sample line without a value".into())),
            },
        };
        if !valid_metric_name(name) {
            return Err(ctx(format!("bad metric name {name:?}")));
        }
        let value: f64 = {
            let v = rest.trim();
            // Timestamps are legal after the value; we emit none, but accept.
            let v = v.split_whitespace().next().unwrap_or("");
            match v {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                "NaN" => f64::NAN,
                _ => v
                    .parse()
                    .map_err(|_| ctx(format!("bad sample value {v:?}")))?,
            }
        };
        samples += 1;
        // Resolve the family: `x_bucket`/`x_sum`/`x_count` belong to a
        // histogram or summary family `x` when one is declared.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                let fam = families.get(base)?;
                matches!(fam.typ.as_deref(), Some("histogram") | Some("summary"))
                    .then(|| base.to_string())
            })
            .unwrap_or_else(|| name.to_string());
        let fam = families
            .get_mut(&family_name)
            .ok_or_else(|| ctx(format!("sample for {name} without TYPE metadata")))?;
        if fam.typ.is_none() {
            return Err(ctx(format!("sample for {name} before its TYPE line")));
        }
        if !fam.help {
            return Err(ctx(format!("sample for {name} without HELP metadata")));
        }
        fam.samples += 1;
        match fam.typ.as_deref() {
            Some("counter") => {
                if !labels.is_empty() && labels.iter().any(|(k, _)| k == "le") {
                    return Err(ctx(format!("counter {name} must not carry le labels")));
                }
                if !(value.is_finite() && value >= 0.0) {
                    return Err(ctx(format!("counter {name} value {value} invalid")));
                }
            }
            Some("histogram") => {
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| ctx(format!("{name} bucket without le label")))?;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| ctx(format!("bad le bound {le:?}")))?
                    };
                    if !(value.is_finite() && value >= 0.0 && value == value.trunc()) {
                        return Err(ctx(format!("bucket count {value} invalid")));
                    }
                    fam.buckets.push((bound, value as u64));
                } else if name.ends_with("_sum") {
                    fam.sum_seen = true;
                } else if name.ends_with("_count") {
                    fam.count = Some(value);
                } else {
                    return Err(ctx(format!("unexpected histogram series {name}")));
                }
            }
            _ => {}
        }
    }
    // Per-family structural checks.
    let mut summary = ExpositionSummary {
        families: order.len(),
        samples,
        histograms: 0,
    };
    for name in &order {
        let fam = &families[name];
        if fam.typ.as_deref() != Some("histogram") {
            continue;
        }
        summary.histograms += 1;
        if fam.buckets.is_empty() {
            return Err(format!("histogram {name} has no buckets"));
        }
        for w in fam.buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("histogram {name} le bounds not ascending"));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("histogram {name} bucket counts decrease"));
            }
        }
        let (last_bound, last_cum) = *fam.buckets.last().unwrap();
        if last_bound != f64::INFINITY {
            return Err(format!("histogram {name} missing +Inf bucket"));
        }
        match fam.count {
            Some(c) if c == last_cum as f64 => {}
            other => {
                return Err(format!(
                    "histogram {name} +Inf bucket {last_cum} disagrees with _count {other:?}"
                ))
            }
        }
        if !fam.sum_seen {
            return Err(format!("histogram {name} missing _sum"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.incr("cells.total", 100);
        m.incr("ring.pushed", 7);
        m.describe("cells.total", "DP cells computed across all devices");
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("span.kernel.duration_ns", v);
        }
        m
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample());
        assert!(text.contains("# HELP megasw_cells_total DP cells computed across all devices"));
        assert!(text.contains("# TYPE megasw_cells_total counter"));
        assert!(text.contains("megasw_cells_total 100"));
        // Undescribed metrics get a generated help line.
        assert!(text.contains("# HELP megasw_ring_pushed megasw counter ring.pushed"));
        assert!(text.contains("# TYPE megasw_span_kernel_duration_ns histogram"));
        assert!(text.contains("megasw_span_kernel_duration_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("megasw_span_kernel_duration_ns_sum 10"));
        assert!(text.contains("megasw_span_kernel_duration_ns_count 4"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(parts.next().unwrap().starts_with("megasw_"), "{line:?}");
        }
    }

    #[test]
    fn writer_output_passes_the_conformance_checker() {
        let text = prometheus(&sample());
        let summary = validate_exposition(&text).expect("writer must conform");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.histograms, 1);
        assert!(summary.samples >= 5);
    }

    #[test]
    fn help_precedes_type_precedes_samples() {
        let text = prometheus(&sample());
        let lines: Vec<&str> = text.lines().collect();
        let help = lines
            .iter()
            .position(|l| l.starts_with("# HELP megasw_cells_total"))
            .unwrap();
        let typ = lines
            .iter()
            .position(|l| l.starts_with("# TYPE megasw_cells_total"))
            .unwrap();
        let sample_line = lines
            .iter()
            .position(|l| l.starts_with("megasw_cells_total "))
            .unwrap();
        assert!(help < typ && typ < sample_line);
    }

    #[test]
    fn bucket_counts_are_cumulative_and_monotone() {
        let mut m = MetricsRegistry::new();
        for i in 1..400u32 {
            m.observe("latency", (i % 97) as f64);
        }
        let text = prometheus(&m);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("megasw_latency_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.len() > 3);
        for w in counts.windows(2) {
            assert!(w[1] >= w[0], "{counts:?}");
        }
        assert_eq!(*counts.last().unwrap(), 399);
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\\b \"quoted\"\nnext"),
            "a\\\\b \\\"quoted\\\"\\nnext"
        );
        // Round-trip through the validator's label parser.
        let line = format!(
            "# HELP m x\n# TYPE m counter\nm{{device=\"{}\"}} 1\n",
            escape_label_value("GTX \"Titan\"\\slash\nline2")
        );
        validate_exposition(&line).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // Sample without metadata.
        assert!(validate_exposition("megasw_x 1\n").is_err());
        // TYPE without HELP is caught at the first sample.
        assert!(validate_exposition("# TYPE megasw_x counter\nmegasw_x 1\n").is_err());
        // Metadata after samples.
        assert!(
            validate_exposition("# HELP m x\n# TYPE m counter\nm 1\n# TYPE m counter\n").is_err()
        );
        // Negative counter.
        assert!(validate_exposition("# HELP m x\n# TYPE m counter\nm -4\n").is_err());
        // Bad escape in a label value.
        assert!(validate_exposition("# HELP m x\n# TYPE m counter\nm{l=\"a\\t\"} 1\n").is_err());
        // Histogram without +Inf.
        assert!(validate_exposition(
            "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n"
        )
        .is_err());
        // Histogram with decreasing cumulative counts.
        assert!(validate_exposition(
            "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
             h_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n"
        )
        .is_err());
        // +Inf bucket disagreeing with _count.
        assert!(validate_exposition(
            "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 4\n"
        )
        .is_err());
    }

    #[test]
    fn json_exposition_parses_and_roundtrips_values() {
        let doc = metrics_json(&sample());
        let v = json::parse(&doc).expect("writer must emit valid JSON");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("cells.total")
                .unwrap()
                .as_f64(),
            Some(100.0)
        );
        let h = v
            .get("histograms")
            .unwrap()
            .get("span.kernel.duration_ns")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(h.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("max").unwrap().as_f64(), Some(4.0));
        assert!(h.get("p50").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn empty_registry_is_still_valid_output() {
        let m = MetricsRegistry::new();
        assert!(prometheus(&m).is_empty());
        assert_eq!(validate_exposition(""), Ok(ExpositionSummary::default()));
        assert!(json::parse(&metrics_json(&m)).is_ok());
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("ring.d0.max-occ"), "megasw_ring_d0_max_occ");
    }
}
