//! Randomized property tests for the multi-GPU system: partition laws, ring
//! protocol, and pipeline-equals-reference on arbitrary shapes.
//!
//! Deterministic seeded sweeps: each property runs a fixed number of
//! ChaCha8-generated cases; a failure reproduces exactly from the printed
//! case index.

use megasw_gpusim::{catalog, Platform};
use megasw_multigpu::circbuf::CircularBuffer;
use megasw_multigpu::partition::{largest_remainder, make_slabs};
use megasw_multigpu::pipeline::PipelineRun;
use megasw_multigpu::{PartitionPolicy, RunConfig};
use megasw_seq::rng::ChaCha8Rng;
use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &megasw_sw::ScoreScheme) -> megasw_sw::BestCell {
    megasw_sw::kernel::scalar().best(a, b, scheme)
}

const CASES: u64 = 64;

fn weights(rng: &mut ChaCha8Rng) -> Vec<f64> {
    let n = rng.gen_range(1..8usize);
    (0..n).map(|_| 0.01 + rng.gen::<f64>() * 999.99).collect()
}

fn any_platform(rng: &mut ChaCha8Rng) -> Platform {
    let boards = catalog::all();
    let n = rng.gen_range(1..5usize);
    Platform::custom(
        "prop",
        (0..n)
            .map(|_| boards[rng.gen_range(0..boards.len())].clone())
            .collect(),
    )
}

#[test]
fn largest_remainder_conserves_total() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_01 + case);
        let total = rng.gen_range(0..100_000usize);
        let w = weights(&mut rng);
        let alloc = largest_remainder(total, &w);
        assert_eq!(alloc.len(), w.len(), "case {case}");
        assert_eq!(alloc.iter().sum::<usize>(), total, "case {case}");
    }
}

#[test]
fn largest_remainder_min_one_when_feasible() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_02 + case);
        let total = rng.gen_range(1..100_000usize);
        let w = weights(&mut rng);
        let alloc = largest_remainder(total, &w);
        if total >= w.len() {
            assert!(alloc.iter().all(|&x| x >= 1), "case {case}");
        }
    }
}

#[test]
fn largest_remainder_proportional_within_one() {
    let mut done = 0u64;
    let mut case = 0u64;
    while done < CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_03 + case);
        case += 1;
        let total = rng.gen_range(100..100_000usize);
        let w = weights(&mut rng);
        if total < w.len() {
            continue;
        }
        done += 1;
        let alloc = largest_remainder(total, &w);
        let sum: f64 = w.iter().sum();
        let spare = (total - w.len()) as f64;
        for (i, &wi) in w.iter().enumerate() {
            // Reserved unit + proportional share of the remainder, ±1 from
            // largest-remainder rounding.
            let exact = 1.0 + spare * wi / sum;
            assert!(
                (alloc[i] as f64 - exact).abs() <= 1.0 + 1e-9,
                "case {case}, i={i}: {} vs {exact}",
                alloc[i]
            );
        }
    }
}

#[test]
fn slabs_partition_exactly() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_04 + case);
        let n = rng.gen_range(0..500_000usize);
        let block_w = rng.gen_range(1..2_000usize);
        let platform = any_platform(&mut rng);
        let policy = if rng.gen::<bool>() {
            PartitionPolicy::Equal
        } else {
            PartitionPolicy::Proportional
        };
        let slabs = make_slabs(n, block_w, &platform, &policy);
        if n == 0 {
            assert!(slabs.is_empty(), "case {case}");
        } else {
            assert_eq!(slabs[0].j0, 1, "case {case}");
            for w in slabs.windows(2) {
                assert_eq!(w[0].j_end(), w[1].j0, "case {case}");
                // Interior slab boundaries land on tile-grid columns.
                assert_eq!((w[1].j0 - 1) % block_w, 0, "case {case}");
            }
            assert_eq!(slabs.last().unwrap().j_end(), n + 1, "case {case}");
            assert!(slabs.len() <= platform.len(), "case {case}");
            assert!(slabs.iter().all(|s| s.width >= 1), "case {case}");
        }
    }
}

#[test]
fn ring_preserves_order_and_counts() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_05 + case);
        let len = rng.gen_range(0..500usize);
        let items: Vec<u32> = (0..len).map(|_| rng.gen_range(0..u32::MAX)).collect();
        let cap = rng.gen_range(1..16usize);
        let ring = CircularBuffer::with_capacity(cap);
        let producer = {
            let ring = ring.clone();
            let items = items.clone();
            std::thread::spawn(move || {
                for v in items {
                    ring.push(v).unwrap();
                }
                ring.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = ring.pop().unwrap() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, items, "case {case}");
        let stats = ring.stats();
        assert_eq!(stats.pushed, items.len() as u64, "case {case}");
        assert_eq!(stats.popped, items.len() as u64, "case {case}");
        assert!(stats.max_occupancy <= cap, "case {case}");
    }
}

#[test]
fn poisoned_producer_unblocks_every_consumer_in_a_capacity_one_chain() {
    // The recovery driver depends on this liveness property: when a worker
    // dies it poisons its rings, and every device downstream — possibly
    // blocked on a pop, possibly mid-stream — must observe the poison and
    // exit rather than wait forever. Model a chain of 1..=5 devices as a
    // chain of capacity-1 rings with a relay thread per link, poison the
    // head after a random number of borders, and require the whole chain
    // to drain within a hard deadline.
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_09 + case);
        let devices = rng.gen_range(1..=5usize);
        let sent_before_poison = rng.gen_range(0..20usize);
        let rings: Vec<CircularBuffer<u32>> = (0..devices)
            .map(|_| CircularBuffer::with_capacity(1))
            .collect();
        // Relay d forwards ring d → ring d+1 until it sees the poison.
        let relays: Vec<_> = (0..devices - 1)
            .map(|d| {
                let src = rings[d].clone();
                let dst = rings[d + 1].clone();
                std::thread::spawn(move || loop {
                    match src.pop() {
                        Ok(Some(v)) => {
                            if dst.push(v).is_err() {
                                return false;
                            }
                        }
                        Ok(None) => return false, // closed, not poisoned
                        Err(_) => {
                            dst.poison();
                            return true;
                        }
                    }
                })
            })
            .collect();
        let head = rings[0].clone();
        let producer = std::thread::spawn(move || {
            for v in 0..sent_before_poison as u32 {
                if head.push(v).is_err() {
                    return;
                }
            }
            head.poison();
        });
        let tail = rings[devices - 1].clone();
        let consumer = std::thread::spawn(move || {
            let mut received = 0u32;
            loop {
                match tail.pop() {
                    Ok(Some(_)) => received += 1,
                    Ok(None) => return (received, false),
                    Err(_) => return (received, true),
                }
            }
        });

        // Liveness: every thread exits within the deadline. join() itself
        // would hang on a regression, so poll with a watchdog.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let handles: Vec<&std::thread::JoinHandle<_>> = relays.iter().collect();
        while handles.iter().any(|h| !h.is_finished())
            || !producer.is_finished()
            || !consumer.is_finished()
        {
            assert!(
                std::time::Instant::now() < deadline,
                "case {case}: chain of {devices} devices did not unblock \
                 after poison (sent {sent_before_poison})"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        producer.join().unwrap();
        let saw_poison: Vec<bool> = relays.into_iter().map(|h| h.join().unwrap()).collect();
        let (received, tail_poisoned) = consumer.join().unwrap();
        // Safety: the poison reached every link and the tail; nothing was
        // silently dropped before it.
        assert!(saw_poison.iter().all(|&p| p), "case {case}");
        assert!(tail_poisoned, "case {case}");
        assert!(received <= sent_before_poison as u32, "case {case}");
    }
}

#[test]
fn pipeline_equals_reference_on_arbitrary_shapes() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_06 + case);
        let seed = rng.gen::<u64>();
        let m = rng.gen_range(1..600usize);
        let n = rng.gen_range(1..600usize);
        let block = rng.gen_range(1..64usize);
        let cap = rng.gen_range(1..8usize);
        let platform = any_platform(&mut rng);
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(m, seed)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(n, seed ^ 0xABCD)).generate();
        let cfg = RunConfig::paper_default()
            .with_block(block)
            .with_buffer_capacity(cap);
        let report = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(
            report.best,
            gotoh_best(a.codes(), b.codes(), &cfg.scheme),
            "case {case}: {m}x{n}, block {block}, cap {cap}"
        );
    }
}

#[test]
fn pipeline_equals_reference_on_similar_pairs() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_07 + case);
        let seed = rng.gen::<u64>();
        let len = rng.gen_range(50..800usize);
        let block = rng.gen_range(8..96usize);
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed ^ 0x5A5A).apply(&a);
        let cfg = RunConfig::paper_default().with_block(block);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(
            report.best,
            gotoh_best(a.codes(), b.codes(), &cfg.scheme),
            "case {case}: len {len}, block {block}"
        );
    }
}

#[test]
fn transfer_accounting_matches_geometry() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4D_08 + case);
        let m = rng.gen_range(1..2_000usize);
        let n = rng.gen_range(100..2_000usize);
        let block = rng.gen_range(16..256usize);
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(m, 1)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(n, 2)).generate();
        let cfg = RunConfig::paper_default().with_block(block);
        let p = Platform::env1();
        let report = PipelineRun::new(a.codes(), b.codes(), &p)
            .config(cfg)
            .run()
            .unwrap();
        let rows = m.div_ceil(block);
        if report.devices.len() == 2 {
            // Each block-row border carries (height+1) H + (height+1) E
            // values at 4 bytes each.
            let expected: u64 = (0..rows)
                .map(|r| {
                    let h = ((r + 1) * block).min(m) - r * block;
                    2 * (h as u64 + 1) * 4
                })
                .sum();
            assert_eq!(report.devices[0].bytes_sent, expected, "case {case}");
        }
    }
}
