//! F1/F2 — scaling measurements on this host: the CPU wavefront's thread
//! scaling (real parallel speedup) and the DES planner's cost per device
//! count (the series itself is printed by `paper-tables f1 f2`).

use megasw::prelude::*;
use megasw_bench::{cached_pair, harness::Group};

fn bench_cpu_wavefront_scaling() {
    let group = Group::new("f1_cpu_wavefront");
    let (a, b) = cached_pair(8_000, 301);
    let scheme = ScoreScheme::cudalign();
    let cells = (a.len() * b.len()) as u64;
    for threads in [1usize, 2, 4, 8] {
        group.bench_cells(&format!("threads_{threads}"), cells, || {
            cpu_parallel(a.codes(), b.codes(), &scheme, 512, threads).0
        });
    }
}

fn bench_des_planner() {
    // The simulator itself must stay cheap: one megabase-scale plan per
    // device count. Regressions here break the harness's usability.
    let group = Group::new("f1_des_planner");
    let cfg = RunConfig::paper_default();
    for gpus in [1usize, 4, 8] {
        let platform = Platform::homogeneous(catalog::gtx680(), gpus);
        group.bench(&format!("plan_4mbp_{gpus}gpu"), || {
            DesSim::new(4_000_000, 4_000_000, &platform)
                .config(cfg.clone())
                .run()
                .report
                .sim_time
        });
    }
}

fn main() {
    bench_cpu_wavefront_scaling();
    bench_des_planner();
}
