//! Minimal JSON parser — just enough to structurally validate the Chrome
//! traces this crate emits, with no external dependencies.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers are parsed as `f64`. Duplicate object
//! keys keep the last value, like `JSON.parse`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup: `value.get("key")`, `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected `{}`, found end of input", b as char)),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos - 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".to_string());
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err("lone low surrogate".to_string());
                        } else {
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos - 1))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte by byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c)?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err("truncated UTF-8 sequence".to_string());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or("invalid \\u escape")?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

/// Length of a UTF-8 sequence from its lead byte.
fn utf8_len(lead: u8) -> Result<usize, String> {
    match lead {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".to_string()),
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""line\nquote\"tab\tA😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nquote\"tab\tA😀");
        let raw = parse("\"héllo\"").unwrap();
        assert_eq!(raw.as_str().unwrap(), "héllo");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{0001}f😀";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
    }
}
