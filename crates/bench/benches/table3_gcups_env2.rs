//! T3 — throughput of the threaded pipeline on Environment 2 (3
//! heterogeneous devices), 1/2/3-GPU sweep. The throughput column reads
//! directly in GCUPS (DP cells per second × 10⁻⁹).
//!
//! The paper-scale series for this table comes from
//! `cargo run -p megasw-bench --release --bin paper-tables t3`.

use megasw::prelude::*;
use megasw_bench::{cached_pair, harness::Group};

fn main() {
    let group = Group::new("table3_env2");
    let cfg = RunConfig::paper_default();
    let (a, b) = cached_pair(8_000, 201);
    let cells = (a.len() * b.len()) as u64;

    for gpus in [1usize, 2, 3] {
        let platform = Platform::env2().take(gpus);
        group.bench_cells(&format!("pair8k_{gpus}gpu"), cells, || {
            PipelineRun::new(a.codes(), b.codes(), &platform)
                .config(cfg.clone())
                .run()
                .expect("pipeline run failed")
                .best
        });
    }
}
