//! End-to-end contract of the resident alignment service over HTTP.
//!
//! These tests exercise ISSUE 10's acceptance bar through the real wire:
//! an [`AlignService`] behind a [`MetricsServer`] on a loopback port, jobs
//! submitted as `POST /jobs` JSON bodies, progress via `GET
//! /jobs/:id/events`, cancellation via `DELETE /jobs/:id`, and SLOs
//! scraped from `/metrics` — with every score checked bit-identically
//! against the scalar whole-sequence oracle.

use megasw::obs::json::{self, Value};
use megasw::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 7).apply(&a);
    (a, b)
}

fn oracle(a: &DnaSeq, b: &DnaSeq) -> Score {
    kernel::scalar()
        .best(a.codes(), b.codes(), &ScoreScheme::cudalign())
        .score
}

/// A service on a loopback port with small-geometry defaults, recovery
/// enabled (the mixed-stream test injects a device loss) and a checkpoint
/// cadence so both recovery and cancellation have boundaries to act on.
fn serve() -> (AlignService, MetricsServer, String) {
    let base = RunConfig::test_default()
        .with_policy(KernelPolicy::default().with_checkpoint(CheckpointCadence::EveryRows(2)));
    let cfg = ServiceConfig {
        base,
        recovery: Some(RecoveryPolicy {
            max_device_failures: 1,
        }),
        events_interval: Duration::from_millis(5),
    };
    let service = AlignService::start(Platform::env2(), cfg, MetricsHub::new());
    let server = MetricsServer::bind_routed("127.0.0.1:0", service.hub(), Some(service.handler()))
        .expect("bind loopback");
    let addr = server.local_addr().to_string();
    (service, server, addr)
}

fn post_job(addr: &str, body: &str) -> u64 {
    let (head, resp) = http_post(addr, "/jobs", body).expect("POST /jobs");
    assert!(head.starts_with("HTTP/1.1 202"), "{head}: {resp}");
    let v = json::parse(&resp).expect("submit response is JSON");
    v.get("job").and_then(Value::as_f64).expect("job id") as u64
}

fn get_job(addr: &str, id: u64) -> Value {
    let (head, body) = http_get(addr, &format!("/jobs/{id}")).expect("GET /jobs/:id");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
    json::parse(&body).expect("status response is JSON")
}

fn poll_terminal(addr: &str, id: u64) -> Value {
    loop {
        let v = get_job(addr, id);
        match v.get("state").and_then(Value::as_str).unwrap() {
            "queued" | "running" => std::thread::sleep(Duration::from_millis(5)),
            _ => return v,
        }
    }
}

/// The acceptance bar: a mixed stream of 20+ HTTP-submitted jobs —
/// single pairs (raw bases and FASTA text), a batch, one job with an
/// injected device loss — all complete with bit-identical scores, nothing
/// dropped, and the SLO counters land on `/metrics`.
#[test]
fn mixed_stream_of_twenty_http_jobs_is_bit_identical() {
    with_deadline(
        "service_api::mixed_stream",
        Duration::from_secs(300),
        || {
            let (service, server, addr) = serve();

            // 18 single-pair jobs + 1 faulted job + 1 six-pair batch = 20
            // HTTP submissions, 25 alignments.
            let mut singles: Vec<(u64, Score)> = Vec::new();
            for i in 0..18u64 {
                let (a, b) = pair(220 + 13 * i as usize, 100 + i);
                let body = if i % 3 == 0 {
                    // FASTA text bodies exercise the in-request parser.
                    format!(
                        "{{\"id\": \"s{i}\", \"a\": \">a{i}\\n{}\", \"b\": \">b{i}\\n{}\"}}",
                        a.to_ascii_string(),
                        b.to_ascii_string()
                    )
                } else {
                    format!(
                        "{{\"id\": \"s{i}\", \"a\": \"{}\", \"b\": \"{}\"}}",
                        a.to_ascii_string(),
                        b.to_ascii_string()
                    )
                };
                singles.push((post_job(&addr, &body), oracle(&a, &b)));
            }

            // One job loses device 1 mid-run; the service-level recovery
            // policy must bring it home bit-identically.
            let (fa, fb) = pair(700, 555);
            let faulted = post_job(
                &addr,
                &format!(
                    "{{\"id\": \"faulted\", \"a\": \"{}\", \"b\": \"{}\", \"fault\": \"1:2\"}}",
                    fa.to_ascii_string(),
                    fb.to_ascii_string()
                ),
            );

            let batch_pairs: Vec<(DnaSeq, DnaSeq)> = (0..6u64)
                .map(|i| pair(150 + 31 * i as usize, 400 + i))
                .collect();
            let rendered: Vec<String> = batch_pairs
                .iter()
                .enumerate()
                .map(|(i, (a, b))| {
                    format!(
                        "{{\"id\": \"b{i}\", \"a\": \"{}\", \"b\": \"{}\"}}",
                        a.to_ascii_string(),
                        b.to_ascii_string()
                    )
                })
                .collect();
            let batch = post_job(
                &addr,
                &format!("{{\"pairs\": [{}], \"bins\": 2}}", rendered.join(", ")),
            );

            for (id, want) in &singles {
                let v = poll_terminal(&addr, *id);
                assert_eq!(
                    v.get("state").and_then(Value::as_str),
                    Some("done"),
                    "{v:?}"
                );
                assert_eq!(
                    v.get("best_score").and_then(Value::as_f64),
                    Some(f64::from(*want)),
                    "job {id} must be bit-identical to the scalar oracle"
                );
            }

            let v = poll_terminal(&addr, faulted);
            assert_eq!(v.get("state").and_then(Value::as_str), Some("done"));
            assert_eq!(
                v.get("best_score").and_then(Value::as_f64),
                Some(f64::from(oracle(&fa, &fb))),
                "the faulted job must recover bit-identically"
            );
            let report = v.get("report").expect("done job has a report");
            assert!(
                report.get("recoveries").and_then(Value::as_f64).unwrap() >= 1.0,
                "{report:?}"
            );

            let v = poll_terminal(&addr, batch);
            assert_eq!(v.get("state").and_then(Value::as_str), Some("done"));
            let report = v.get("report").expect("batch report");
            let outcomes = report
                .get("outcomes")
                .and_then(Value::as_array)
                .expect("outcomes");
            assert_eq!(outcomes.len(), batch_pairs.len(), "no pair dropped");
            for (o, (a, b)) in outcomes.iter().zip(&batch_pairs) {
                assert_eq!(
                    o.get("score").and_then(Value::as_f64),
                    Some(f64::from(oracle(a, b))),
                    "batch pair must be bit-identical: {o:?}"
                );
            }

            // 20 jobs were submitted over HTTP and all completed.
            assert_eq!(service.completed_order().len(), 20);

            // The SLOs are scraped from /metrics in Prometheus text form.
            let (_, metrics) = http_get(&addr, "/metrics").expect("GET /metrics");
            assert!(
                metrics.contains("megasw_service_jobs_completed 20"),
                "{metrics}"
            );
            assert!(
                metrics.contains("megasw_service_jobs_failed 0"),
                "{metrics}"
            );
            assert!(
                metrics.contains("megasw_service_job_latency_p50_ms"),
                "{metrics}"
            );
            assert!(
                metrics.contains("megasw_service_job_latency_p99_ms"),
                "{metrics}"
            );
            assert!(metrics.contains("megasw_service_queue_peak"), "{metrics}");

            server.shutdown();
            drop(service);
        },
    )
}

/// `DELETE /jobs/:id` mid-run stops the job at a checkpoint boundary and
/// later jobs still complete — the queue survives a cancellation.
#[test]
fn delete_cancels_a_running_job_and_the_queue_survives() {
    with_deadline(
        "service_api::mid_run_delete",
        Duration::from_secs(300),
        || {
            let (service, server, addr) = serve();

            // A deliberately heavy job (forced scalar, tiny checkpointed
            // blocks) so the DELETE lands while it is running.
            let (a, b) = pair(6_000, 77);
            let heavy = post_job(
                &addr,
                &format!(
                    "{{\"id\": \"heavy\", \"a\": \"{}\", \"b\": \"{}\", \"policy\": {{\"kernel\": \"scalar\"}}}}",
                    a.to_ascii_string(),
                    b.to_ascii_string()
                ),
            );
            let (sa, sb) = pair(200, 88);
            let queued = post_job(
                &addr,
                &format!(
                    "{{\"id\": \"after\", \"a\": \"{}\", \"b\": \"{}\"}}",
                    sa.to_ascii_string(),
                    sb.to_ascii_string()
                ),
            );

            // Wait for the heavy job to actually start…
            loop {
                let v = get_job(&addr, heavy);
                match v.get("state").and_then(Value::as_str).unwrap() {
                    "queued" => std::thread::sleep(Duration::from_millis(1)),
                    _ => break,
                }
            }
            // …then cancel it mid-run.
            let (head, body) =
                http_delete(&addr, &format!("/jobs/{heavy}")).expect("DELETE /jobs/:id");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");

            let v = poll_terminal(&addr, heavy);
            assert_eq!(
                v.get("state").and_then(Value::as_str),
                Some("cancelled"),
                "mid-run DELETE must be honoured: {v:?}"
            );
            assert!(v.get("report").is_none(), "a cancelled job has no report");

            // The queued job is untouched by the cancellation.
            let v = poll_terminal(&addr, queued);
            assert_eq!(v.get("state").and_then(Value::as_str), Some("done"));
            assert_eq!(
                v.get("best_score").and_then(Value::as_f64),
                Some(f64::from(oracle(&sa, &sb)))
            );

            // DELETE on a terminal job reports its state; unknown is 404.
            let (head, body) = http_delete(&addr, &format!("/jobs/{queued}")).unwrap();
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(body.contains("done"), "{body}");
            let (head, _) = http_delete(&addr, "/jobs/9999").unwrap();
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");

            let (_, metrics) = http_get(&addr, "/metrics").unwrap();
            assert!(
                metrics.contains("megasw_service_jobs_cancelled 1"),
                "{metrics}"
            );

            server.shutdown();
            drop(service);
        },
    )
}

/// `GET /jobs/:id/events` streams NDJSON progress lines until the job is
/// terminal; every line parses and the last one reports the final state.
#[test]
fn events_endpoint_streams_parseable_ndjson_to_completion() {
    with_deadline("service_api::events", Duration::from_secs(300), || {
        let (service, server, addr) = serve();
        let (a, b) = pair(1_500, 31);
        let id = post_job(
            &addr,
            &format!(
                "{{\"id\": \"streamed\", \"a\": \"{}\", \"b\": \"{}\", \"policy\": {{\"kernel\": \"scalar\"}}}}",
                a.to_ascii_string(),
                b.to_ascii_string()
            ),
        );
        // The events request blocks until the job finishes, so read it on
        // this thread — the executor runs the job concurrently.
        let (head, body) =
            http_get(&addr, &format!("/jobs/{id}/events")).expect("GET /jobs/:id/events");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/x-ndjson"), "{head}");
        let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(!lines.is_empty(), "at least one progress line");
        for line in &lines {
            let v = json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON {line:?}: {e}"));
            assert_eq!(v.get("job").and_then(Value::as_f64), Some(id as f64));
            assert!(v.get("state").is_some(), "{line}");
        }
        let last = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("state").and_then(Value::as_str), Some("done"));
        assert_eq!(
            last.get("best_score").and_then(Value::as_f64),
            Some(f64::from(oracle(&a, &b)))
        );

        // Unknown job ids 404 instead of hanging the stream.
        let (head, _) = http_get(&addr, "/jobs/424242/events").unwrap();
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        drop(service);
    })
}

/// Priorities submitted over HTTP reorder the queue: while one job runs,
/// a later high-priority submission overtakes an earlier low-priority one.
#[test]
fn http_priorities_reorder_the_queue() {
    with_deadline("service_api::priorities", Duration::from_secs(300), || {
        let (service, server, addr) = serve();
        let (big_a, big_b) = pair(4_000, 61);
        let first = post_job(
            &addr,
            &format!(
                "{{\"id\": \"first\", \"a\": \"{}\", \"b\": \"{}\", \"policy\": {{\"kernel\": \"scalar\"}}}}",
                big_a.to_ascii_string(),
                big_b.to_ascii_string()
            ),
        );
        let (a, b) = pair(160, 62);
        let low = post_job(
            &addr,
            &format!(
                "{{\"id\": \"low\", \"a\": \"{}\", \"b\": \"{}\"}}",
                a.to_ascii_string(),
                b.to_ascii_string()
            ),
        );
        let high = post_job(
            &addr,
            &format!(
                "{{\"id\": \"high\", \"a\": \"{}\", \"b\": \"{}\", \"priority\": 9}}",
                a.to_ascii_string(),
                b.to_ascii_string()
            ),
        );
        for id in [first, low, high] {
            poll_terminal(&addr, id);
        }
        let order = service.completed_order();
        let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(high) < pos(low),
            "priority 9 must overtake priority 0: {order:?}"
        );

        // GET /jobs lists all three.
        let (_, body) = http_get(&addr, "/jobs").unwrap();
        let v = json::parse(&body).expect("job listing is JSON");
        assert_eq!(
            v.get("jobs")
                .and_then(Value::as_array)
                .map(|jobs| jobs.len()),
            Some(3)
        );

        server.shutdown();
        drop(service);
    })
}

/// The wire client helpers (`Arc` hub ownership ends with the service) —
/// shutting the service down mid-queue leaves queued jobs queued and the
/// listener answering.
#[test]
fn shutdown_cancels_the_running_job_and_parks_the_queue() {
    with_deadline("service_api::shutdown", Duration::from_secs(300), || {
        let (mut service, server, addr) = serve();
        let (a, b) = pair(6_000, 91);
        let running = post_job(
            &addr,
            &format!(
                "{{\"id\": \"doomed\", \"a\": \"{}\", \"b\": \"{}\", \"policy\": {{\"kernel\": \"scalar\"}}}}",
                a.to_ascii_string(),
                b.to_ascii_string()
            ),
        );
        let (sa, sb) = pair(150, 92);
        let parked = post_job(
            &addr,
            &format!(
                "{{\"id\": \"parked\", \"a\": \"{}\", \"b\": \"{}\"}}",
                sa.to_ascii_string(),
                sb.to_ascii_string()
            ),
        );
        loop {
            let v = get_job(&addr, running);
            if v.get("state").and_then(Value::as_str) != Some("queued") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        service.shutdown();
        let v = get_job(&addr, running);
        assert_eq!(
            v.get("state").and_then(Value::as_str),
            Some("cancelled"),
            "{v:?}"
        );
        let v = get_job(&addr, parked);
        assert_eq!(v.get("state").and_then(Value::as_str), Some("queued"));

        server.shutdown();
        let _ = Arc::strong_count(&service.hub());
    })
}
