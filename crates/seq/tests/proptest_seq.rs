//! Property-based tests for the sequence substrate.

use megasw_seq::fasta::{read_fasta, write_fasta, FastaRecord};
use megasw_seq::stats::seq_stats;
use megasw_seq::{
    ChromosomeGenerator, DivergenceModel, DnaSeq, GenerateConfig, Nucleotide, PackedDna,
};
use proptest::prelude::*;

/// Arbitrary DNA sequence as raw codes (0..=4).
fn dna_codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=4, 0..max_len)
}

proptest! {
    #[test]
    fn packing_roundtrips(codes in dna_codes(2_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let packed = PackedDna::pack(&seq);
        prop_assert_eq!(packed.unpack(), seq);
    }

    #[test]
    fn packed_random_access_matches(codes in dna_codes(500)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let packed = PackedDna::pack(&seq);
        for i in 0..seq.len() {
            prop_assert_eq!(packed.get(i), seq.get(i));
        }
        prop_assert_eq!(packed.get(seq.len()), None);
    }

    #[test]
    fn packed_is_at_most_a_quarter_plus_runs(codes in dna_codes(4_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let packed = PackedDna::pack(&seq);
        // 2 bits/base plus 16 bytes per N run; never larger than the
        // unpacked form for realistic N densities is NOT guaranteed for
        // adversarial alternating N patterns, but the word payload is.
        prop_assert!(packed.packed_bytes() >= seq.len().div_ceil(4));
    }

    #[test]
    fn reverse_complement_involution(codes in dna_codes(1_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq.clone());
        prop_assert_eq!(seq.reversed().reversed(), seq.clone());
        prop_assert_eq!(seq.reverse_complement().len(), seq.len());
    }

    #[test]
    fn reverse_complement_preserves_gc(codes in dna_codes(1_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let rc = seq.reverse_complement();
        // A<->T and C<->G swaps leave the GC count invariant.
        prop_assert!((seq.gc_fraction() - rc.gc_fraction()).abs() < 1e-12);
        prop_assert_eq!(seq.n_count(), rc.n_count());
    }

    #[test]
    fn ascii_roundtrip(codes in dna_codes(1_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let text = seq.to_ascii_string();
        let back = DnaSeq::from_ascii(text.as_bytes()).unwrap();
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn fasta_roundtrip_arbitrary_records(
        seqs in prop::collection::vec(dna_codes(300), 1..5),
        width in 1usize..100,
    ) {
        let records: Vec<FastaRecord> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, codes)| FastaRecord {
                header: format!("rec{i} synthetic"),
                seq: DnaSeq::from_codes(codes).unwrap(),
            })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let back = read_fasta(&buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn generator_is_deterministic_and_sized(len in 0usize..30_000, seed in any::<u64>()) {
        let cfg = GenerateConfig::sized(len, seed);
        let s1 = ChromosomeGenerator::new(cfg.clone()).generate();
        let s2 = ChromosomeGenerator::new(cfg).generate();
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(s1.len(), len);
    }

    #[test]
    fn snp_divergence_preserves_length_and_counts(
        len in 1usize..20_000,
        seed in any::<u64>(),
        rate in 0.0f64..0.3,
    ) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, summary) = DivergenceModel::snp_only(seed ^ 1, rate).apply(&a);
        prop_assert_eq!(a.len(), b.len());
        let diff = a.codes().iter().zip(b.codes()).filter(|(x, y)| x != y).count();
        prop_assert_eq!(diff, summary.substitutions);
    }

    #[test]
    fn divergence_channel_emits_valid_codes(
        len in 0usize..10_000,
        seed in any::<u64>(),
    ) {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
        let (b, _) = DivergenceModel::human_chimp_scaled(seed ^ 2, len).apply(&a);
        prop_assert!(b.codes().iter().all(|&c| c <= 4));
    }

    #[test]
    fn stats_counts_sum_to_length(codes in dna_codes(3_000)) {
        let seq = DnaSeq::from_codes(codes).unwrap();
        let st = seq_stats(&seq);
        prop_assert_eq!(st.counts.iter().sum::<usize>(), seq.len());
        prop_assert!(st.longest_homopolymer <= seq.len());
        prop_assert!(st.gc_fraction >= 0.0 && st.gc_fraction <= 1.0);
    }

    #[test]
    fn nucleotide_code_ascii_bijection(code in 0u8..=4) {
        let n = Nucleotide::from_code(code).unwrap();
        prop_assert_eq!(Nucleotide::from_ascii(n.to_ascii()), Some(n));
        prop_assert_eq!(n.code(), code);
    }
}
