//! Linear-space score-only Smith-Waterman (Gotoh) over whole sequences.
//!
//! This is the sequential CPU baseline: one rolling row, `O(n)` memory,
//! returns the best cell. It is also the primitive the traceback module
//! uses to locate alignment endpoints. Semantically it equals the block
//! kernel (`kernel::scalar().block(..)`) applied to the whole matrix as a
//! single tile; keeping a dedicated implementation (without border bookkeeping)
//! gives tests an independent implementation to cross-check and gives the
//! CPU baseline an honest inner loop.

use crate::cell::{BestCell, Score, NEG_INF};
use crate::scoring::ScoreScheme;

/// The rolling-row scalar scan backing [`crate::kernel::ScalarKernel`]'s
/// whole-sequence `best`. Reach it through the trait:
/// `kernel::scalar().best(a, b, scheme)` (or `kernel::auto()` for the SIMD
/// engines).
pub(crate) fn rolling_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    let n = b.len();
    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    let mut h_row = vec![0 as Score; n + 1];
    let mut f_row = vec![NEG_INF; n + 1];
    let mut best = BestCell::ZERO;

    for (k, &a_code) in a.iter().enumerate() {
        let i = k + 1;
        let mut h_diag = 0; // H[i-1][0]
        let mut h_left = 0; // H[i][0]
        let mut e = NEG_INF;
        // Zip-based traversal lets the compiler elide the bounds checks in
        // the hottest loop of the workspace.
        let cells = b
            .iter()
            .zip(h_row[1..].iter_mut().zip(f_row[1..].iter_mut()));
        for (l, (&b_code, (h_cell, f_cell))) in cells.enumerate() {
            let h_up = *h_cell;
            let f = (*f_cell - ext).max(h_up - open_ext);
            e = (e - ext).max(h_left - open_ext);
            let h = (h_diag + scheme.substitution(a_code, b_code))
                .max(e)
                .max(f)
                .max(0);
            if h > best.score {
                best.consider(h, i, l + 1);
            }
            h_diag = h_up;
            h_left = h;
            *h_cell = h;
            *f_cell = f;
        }
    }
    best
}

/// Final-row variant used by the traceback module: best cell **and** the
/// `H`/`E` values of the last matrix row (border convention: index 0 is
/// column 0).
///
/// Returns `(best, h_last_row, e_last_row)`.
pub fn gotoh_with_last_row(
    a: &[u8],
    b: &[u8],
    scheme: &ScoreScheme,
) -> (BestCell, Vec<Score>, Vec<Score>) {
    let n = b.len();
    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    let mut h_row = vec![0 as Score; n + 1];
    let mut f_row = vec![NEG_INF; n + 1];
    let mut e_row = vec![NEG_INF; n + 1];
    let mut best = BestCell::ZERO;

    for (k, &a_code) in a.iter().enumerate() {
        let i = k + 1;
        let mut h_diag = 0;
        let mut h_left = 0;
        let mut e = NEG_INF;
        for (l, &b_code) in b.iter().enumerate() {
            let j = l + 1;
            let h_up = h_row[j];
            let f = (f_row[j] - ext).max(h_up - open_ext);
            e = (e - ext).max(h_left - open_ext);
            let mut h = h_diag + scheme.substitution(a_code, b_code);
            if e > h {
                h = e;
            }
            if f > h {
                h = f;
            }
            if h < 0 {
                h = 0;
            }
            if h > best.score {
                best.consider(h, i, j);
            }
            h_diag = h_up;
            h_left = h;
            h_row[j] = h;
            f_row[j] = f;
            e_row[j] = e;
        }
    }
    (best, h_row, e_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{full_matrix, reference_best};
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    #[test]
    fn agrees_with_reference_on_fixed_cases() {
        let scheme = ScoreScheme::cudalign();
        for (a, b) in [
            ("", ""),
            ("A", ""),
            ("", "A"),
            ("A", "A"),
            ("A", "C"),
            ("ACGT", "ACGT"),
            ("ACGTT", "ACTT"),
            ("AAAAAAA", "TTTTTTT"),
            ("ACGTNNNACGT", "ACGTACGT"),
            ("TTTTTTTTACGTACGT", "GGGGACGTACGT"),
        ] {
            let (a, b) = (codes(a), codes(b));
            assert_eq!(
                rolling_best(&a, &b, &scheme),
                reference_best(&a, &b, &scheme),
                "case {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn agrees_with_reference_on_random_pairs() {
        for seed in 0..8 {
            let scheme = if seed % 2 == 0 {
                ScoreScheme::cudalign()
            } else {
                ScoreScheme::lenient()
            };
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(120, seed)).generate();
            let (b, _) = DivergenceModel::test_scale(seed).apply(&a);
            let got = rolling_best(a.codes(), b.codes(), &scheme);
            let want = reference_best(a.codes(), b.codes(), &scheme);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn last_row_matches_full_matrix() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("ACGTTGCAGG");
        let b = codes("TGCAACGT");
        let fm = full_matrix(&a, &b, &scheme);
        let (best, h_last, _e_last) = gotoh_with_last_row(&a, &b, &scheme);
        assert_eq!(best, fm.best);
        assert_eq!(h_last, fm.h[a.len()]);
    }

    #[test]
    fn highly_similar_megakilobase_pair_scores_high() {
        // A 30 kbp pair at ~1% divergence should align nearly end to end:
        // score close to len·match − mutation losses.
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(30_000, 99)).generate();
        let (b, _) = DivergenceModel::snp_only(7, 0.01).apply(&a);
        let best = rolling_best(a.codes(), b.codes(), &scheme);
        // Each SNP flips a +1 match to a −3 mismatch (−4), ≈300 SNPs.
        let expect_min = 30_000 - 350 * 4;
        assert!(best.score >= expect_min, "score = {}", best.score);
        assert!(best.score <= 30_000);
    }
}
