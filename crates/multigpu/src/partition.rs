//! Column-wise matrix partitioning.
//!
//! The matrix's columns are divided into one contiguous vertical slab per
//! device, in **block-column units** so slab boundaries coincide with the
//! global tile grid. Weights come from the partition policy: equal, or
//! proportional to device compute power (largest-remainder rounding keeps
//! the result deterministic and exactly proportional up to one block).

use crate::config::PartitionPolicy;
use megasw_gpusim::Platform;

/// One device's share of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slab {
    /// Index of the owning device in the platform chain.
    pub device: usize,
    /// First matrix column (1-based DP coordinate).
    pub j0: usize,
    /// Width in matrix columns.
    pub width: usize,
}

impl Slab {
    /// One-past-the-last matrix column.
    pub fn j_end(&self) -> usize {
        self.j0 + self.width
    }
}

/// Allocate `total` indivisible units according to `weights` using the
/// largest-remainder method, guaranteeing at least one unit per recipient
/// when `total ≥ weights.len()`.
///
/// Deterministic: remainder ties break to the lower index.
pub fn largest_remainder(total: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "weights must not be empty");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w > 0.0),
        "weights must be positive"
    );
    let g = weights.len();
    if total == 0 {
        return vec![0; g];
    }
    if total <= g {
        // Degenerate: hand single units to the heaviest recipients.
        let mut order: Vec<usize> = (0..g).collect();
        order.sort_by(|&x, &y| weights[y].partial_cmp(&weights[x]).unwrap().then(x.cmp(&y)));
        let mut out = vec![0; g];
        for &i in order.iter().take(total) {
            out[i] = 1;
        }
        return out;
    }

    let sum: f64 = weights.iter().sum();
    // Reserve one unit each, distribute the rest proportionally.
    let spare = total - g;
    let exact: Vec<f64> = weights.iter().map(|w| spare as f64 * w / sum).collect();
    let mut out: Vec<usize> = exact.iter().map(|x| 1 + x.floor() as usize).collect();
    let assigned: usize = out.iter().sum();
    let mut leftover = total - assigned;

    let mut order: Vec<usize> = (0..g).collect();
    order.sort_by(|&x, &y| {
        let rx = exact[x] - exact[x].floor();
        let ry = exact[y] - exact[y].floor();
        ry.partial_cmp(&rx).unwrap().then(x.cmp(&y))
    });
    let mut k = 0;
    while leftover > 0 {
        out[order[k % g]] += 1;
        leftover -= 1;
        k += 1;
    }
    out
}

/// Compute each device's slab for a matrix with `n` columns tiled at
/// `block_w`, under the given policy.
///
/// Devices that would receive zero columns (more devices than block
/// columns) are dropped from the returned list — the run simply uses fewer
/// GPUs, mirroring what the real system would do.
///
/// ```
/// use megasw_gpusim::Platform;
/// use megasw_multigpu::{make_slabs, PartitionPolicy};
///
/// let slabs = make_slabs(100_000, 512, &Platform::env2(), &PartitionPolicy::Proportional);
/// assert_eq!(slabs.len(), 3);
/// // Slabs tile the columns contiguously…
/// assert_eq!(slabs[0].j0, 1);
/// assert_eq!(slabs.last().unwrap().j_end(), 100_001);
/// // …and the fastest board (GTX Titan) gets the widest slab.
/// assert!(slabs[0].width > slabs[2].width);
/// ```
pub fn make_slabs(
    n: usize,
    block_w: usize,
    platform: &Platform,
    policy: &PartitionPolicy,
) -> Vec<Slab> {
    assert!(block_w >= 1);
    if n == 0 || platform.is_empty() {
        return Vec::new();
    }
    let total_bcols = n.div_ceil(block_w);
    let g = platform.len().min(total_bcols);

    let weights: Vec<f64> = match policy {
        PartitionPolicy::Equal => vec![1.0; g],
        PartitionPolicy::Proportional => platform.devices[..g]
            .iter()
            .map(|d| d.peak_cells_per_sec())
            .collect(),
        PartitionPolicy::Explicit(w) => {
            assert!(
                w.len() >= g,
                "explicit weights ({}) must cover every device used ({g})",
                w.len()
            );
            w[..g].to_vec()
        }
    };

    let bcols = largest_remainder(total_bcols, &weights);
    let mut slabs = Vec::with_capacity(g);
    let mut next_bcol = 0usize;
    for (device, &bc) in bcols.iter().enumerate() {
        if bc == 0 {
            continue;
        }
        let j0 = next_bcol * block_w + 1;
        let j_end = ((next_bcol + bc) * block_w).min(n) + 1;
        slabs.push(Slab {
            device,
            j0,
            width: j_end - j0,
        });
        next_bcol += bc;
    }
    slabs
}

/// Re-split `n` columns (tiled at `block_w`) across `devices` — platform
/// indices in chain order — proportionally to `weights` (parallel to
/// `devices`), with the same largest-remainder determinism as
/// [`make_slabs`]. Devices that would receive zero block-columns are
/// dropped, exactly like the initial split.
///
/// This is the shared primitive behind fault-time survivor repartitioning
/// and the checkpoint-boundary rebalance controller: both hand it the
/// devices that continue and the weights they should continue at.
pub fn resplit_slabs(n: usize, block_w: usize, devices: &[usize], weights: &[f64]) -> Vec<Slab> {
    assert!(block_w >= 1);
    assert_eq!(devices.len(), weights.len(), "one weight per device");
    if n == 0 || devices.is_empty() {
        return Vec::new();
    }
    let total_bcols = n.div_ceil(block_w);
    let g = devices.len().min(total_bcols);

    let bcols = largest_remainder(total_bcols, &weights[..g]);
    let mut slabs = Vec::with_capacity(g);
    let mut next_bcol = 0usize;
    for (slot, &bc) in bcols.iter().enumerate() {
        if bc == 0 {
            continue;
        }
        let j0 = next_bcol * block_w + 1;
        let j_end = ((next_bcol + bc) * block_w).min(n) + 1;
        slabs.push(Slab {
            device: devices[slot],
            j0,
            width: j_end - j0,
        });
        next_bcol += bc;
    }
    slabs
}

/// [`make_slabs`] over the surviving devices only: every device whose
/// platform index appears in `exclude` (the coordinator's blacklist) is
/// removed from the chain before partitioning, and the survivors keep
/// their **original platform indices** so fault plans, device reports and
/// catalog lookups stay stable across recoveries.
///
/// Weights follow the policy, restricted to the survivors. `Proportional`
/// uses the *measured* per-device throughput from
/// [`crate::balance::default_weights`] — after a failure the coordinator
/// redistributes by what each survivor actually delivers, not by its
/// nameplate peak. Returns an empty list when no survivor remains.
pub fn make_slabs_excluding(
    n: usize,
    block_w: usize,
    platform: &Platform,
    policy: &PartitionPolicy,
    exclude: &[usize],
) -> Vec<Slab> {
    let measured = match policy {
        PartitionPolicy::Proportional => Some(crate::balance::default_weights(platform)),
        _ => None,
    };
    make_slabs_excluding_with_weights(n, block_w, platform, policy, exclude, measured.as_deref())
}

/// [`make_slabs_excluding`] with the calibrated weights supplied by the
/// caller, so a run that repartitions repeatedly (multiple recoveries,
/// rebalance evaluations) probes [`crate::balance::default_weights`] once
/// and reuses the result. `measured` must cover every platform device when
/// the policy is `Proportional`; it is ignored otherwise.
pub fn make_slabs_excluding_with_weights(
    n: usize,
    block_w: usize,
    platform: &Platform,
    policy: &PartitionPolicy,
    exclude: &[usize],
    measured: Option<&[f64]>,
) -> Vec<Slab> {
    assert!(block_w >= 1);
    let survivors: Vec<usize> = (0..platform.len())
        .filter(|d| !exclude.contains(d))
        .collect();
    if n == 0 || survivors.is_empty() {
        return Vec::new();
    }

    let weights: Vec<f64> = match policy {
        PartitionPolicy::Equal => vec![1.0; survivors.len()],
        PartitionPolicy::Proportional => {
            let measured = measured.expect("proportional repartition needs calibrated weights");
            assert!(
                measured.len() >= platform.len(),
                "calibrated weights ({}) must cover every platform device ({})",
                measured.len(),
                platform.len()
            );
            survivors.iter().map(|&d| measured[d]).collect()
        }
        PartitionPolicy::Explicit(w) => {
            assert!(
                w.len() >= platform.len(),
                "explicit weights ({}) must cover every platform device ({})",
                w.len(),
                platform.len()
            );
            survivors.iter().map(|&d| w[d]).collect()
        }
    };

    resplit_slabs(n, block_w, &survivors, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_gpusim::{catalog, Platform};

    #[test]
    fn largest_remainder_sums_and_floors() {
        let out = largest_remainder(100, &[1.0, 1.0, 1.0]);
        assert_eq!(out.iter().sum::<usize>(), 100);
        assert_eq!(out, vec![34, 33, 33]);

        let out = largest_remainder(10, &[3.0, 1.0]);
        assert_eq!(out.iter().sum::<usize>(), 10);
        assert!(out[0] > out[1]);
    }

    #[test]
    fn largest_remainder_guarantees_minimum_one() {
        // Tiny weight still receives its reserved unit.
        let out = largest_remainder(10, &[1000.0, 0.001]);
        assert_eq!(out.iter().sum::<usize>(), 10);
        assert!(out[1] >= 1);
    }

    #[test]
    fn largest_remainder_degenerate_totals() {
        assert_eq!(largest_remainder(0, &[1.0, 2.0]), vec![0, 0]);
        // One unit goes to the heaviest.
        assert_eq!(largest_remainder(1, &[1.0, 2.0]), vec![0, 1]);
        assert_eq!(largest_remainder(2, &[1.0, 2.0]), vec![1, 1]);
    }

    #[test]
    fn largest_remainder_proportionality() {
        let weights = [65.0, 50.0, 45.0];
        let out = largest_remainder(1_000, &weights);
        assert_eq!(out.iter().sum::<usize>(), 1_000);
        let sum: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let exact = 1_000.0 * w / sum;
            assert!(
                (out[i] as f64 - exact).abs() <= 2.0,
                "device {i}: {} vs exact {exact}",
                out[i]
            );
        }
    }

    #[test]
    fn slabs_tile_matrix_exactly() {
        let p = Platform::env2();
        for n in [1usize, 31, 32, 33, 1000, 4097] {
            for policy in [PartitionPolicy::Equal, PartitionPolicy::Proportional] {
                let slabs = make_slabs(n, 32, &p, &policy);
                assert!(!slabs.is_empty());
                assert_eq!(slabs[0].j0, 1);
                for w in slabs.windows(2) {
                    assert_eq!(w[0].j_end(), w[1].j0, "slabs must be contiguous");
                }
                assert_eq!(slabs.last().unwrap().j_end(), n + 1);
                let total: usize = slabs.iter().map(|s| s.width).sum();
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn proportional_gives_faster_device_more_columns() {
        let p = Platform::env2(); // Titan (65) + K20 (45) + GTX 580 (33)
        let slabs = make_slabs(160_000, 512, &p, &PartitionPolicy::Proportional);
        assert_eq!(slabs.len(), 3);
        assert!(slabs[0].width > slabs[1].width);
        assert!(slabs[1].width > slabs[2].width);
        // Ratios within a block of exact proportionality.
        let exact0 = 160_000.0 * 65.0 / 143.0;
        assert!((slabs[0].width as f64 - exact0).abs() < 2.0 * 512.0);
    }

    #[test]
    fn equal_split_on_heterogeneous_platform_is_uniform() {
        let p = Platform::env2();
        let slabs = make_slabs(3 * 512 * 10, 512, &p, &PartitionPolicy::Equal);
        assert_eq!(slabs.len(), 3);
        assert!(slabs.iter().all(|s| s.width == 512 * 10));
    }

    #[test]
    fn more_devices_than_block_columns_drops_devices() {
        let p = Platform::homogeneous(catalog::gtx680(), 8);
        let slabs = make_slabs(100, 64, &p, &PartitionPolicy::Equal);
        // Two block columns only → two devices used.
        assert_eq!(slabs.len(), 2);
        assert_eq!(slabs.iter().map(|s| s.width).sum::<usize>(), 100);
    }

    #[test]
    fn empty_inputs() {
        let p = Platform::env1();
        assert!(make_slabs(0, 32, &p, &PartitionPolicy::Equal).is_empty());
    }

    #[test]
    fn explicit_weights_respected() {
        let p = Platform::env1();
        let slabs = make_slabs(1_000, 10, &p, &PartitionPolicy::Explicit(vec![3.0, 1.0]));
        assert_eq!(slabs.len(), 2);
        assert_eq!(slabs[0].width, 750);
        assert_eq!(slabs[1].width, 250);
    }

    #[test]
    fn excluding_keeps_original_device_indices_and_tiles_exactly() {
        let p = Platform::env2();
        let slabs = make_slabs_excluding(4_000, 32, &p, &PartitionPolicy::Proportional, &[1]);
        assert_eq!(slabs.len(), 2);
        assert_eq!(slabs[0].device, 0);
        assert_eq!(slabs[1].device, 2);
        assert_eq!(slabs[0].j0, 1);
        assert_eq!(slabs[0].j_end(), slabs[1].j0);
        assert_eq!(slabs.last().unwrap().j_end(), 4_001);
        assert_eq!(slabs.iter().map(|s| s.width).sum::<usize>(), 4_000);
    }

    #[test]
    fn excluding_nothing_covers_every_device() {
        let p = Platform::env2();
        let slabs = make_slabs_excluding(4_000, 32, &p, &PartitionPolicy::Equal, &[]);
        assert_eq!(slabs.len(), 3);
        assert_eq!(
            slabs.iter().map(|s| s.device).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn excluding_everyone_leaves_no_slabs() {
        let p = Platform::env1();
        assert!(make_slabs_excluding(1_000, 32, &p, &PartitionPolicy::Equal, &[0, 1]).is_empty());
    }

    /// Shared invariant check: slabs are contiguous from column 1, cover
    /// every column exactly once, and widths sum to `n`.
    fn assert_exact_cover(slabs: &[Slab], n: usize) {
        assert!(!slabs.is_empty());
        assert_eq!(slabs[0].j0, 1);
        for w in slabs.windows(2) {
            assert_eq!(w[0].j_end(), w[1].j0, "slabs must be contiguous");
        }
        assert_eq!(slabs.last().unwrap().j_end(), n + 1);
        assert_eq!(slabs.iter().map(|s| s.width).sum::<usize>(), n);
    }

    #[test]
    fn resplit_covers_all_columns_exactly_once() {
        for n in [1usize, 31, 32, 33, 1000, 4097] {
            for weights in [vec![1.0, 1.0, 1.0], vec![65.0, 50.0, 45.0], vec![0.1, 9.9]] {
                let devices: Vec<usize> = (0..weights.len()).collect();
                let slabs = resplit_slabs(n, 32, &devices, &weights);
                assert_exact_cover(&slabs, n);
            }
        }
    }

    #[test]
    fn resplit_is_deterministic_under_permuted_equal_weights() {
        // Equal weights in any device order must yield the same widths in
        // chain position order: remainder ties break by index, never by
        // float comparison quirks.
        let n = 3 * 32 * 7 + 5;
        let base = resplit_slabs(n, 32, &[0, 1, 2], &[1.0, 1.0, 1.0]);
        for devices in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]] {
            let slabs = resplit_slabs(n, 32, &devices, &[1.0, 1.0, 1.0]);
            assert_exact_cover(&slabs, n);
            let widths: Vec<usize> = slabs.iter().map(|s| s.width).collect();
            let base_widths: Vec<usize> = base.iter().map(|s| s.width).collect();
            assert_eq!(widths, base_widths, "devices {devices:?}");
            assert_eq!(
                slabs.iter().map(|s| s.device).collect::<Vec<_>>(),
                devices.to_vec()
            );
        }
    }

    #[test]
    fn resplit_drops_devices_beyond_the_block_columns() {
        let slabs = resplit_slabs(100, 64, &[0, 1, 2, 3], &[1.0; 4]);
        assert_eq!(slabs.len(), 2);
        assert_exact_cover(&slabs, 100);
        assert!(resplit_slabs(0, 64, &[0, 1], &[1.0; 2]).is_empty());
        assert!(resplit_slabs(100, 64, &[], &[]).is_empty());
    }

    #[test]
    fn resplit_matches_the_initial_split_on_identical_weights() {
        // The rebalance controller's no-drift case: re-splitting with the
        // same weights the initial partition used must reproduce it
        // exactly, so a rebalance evaluation under steady state migrates
        // nothing.
        let p = Platform::env2();
        let n = 160_000;
        let weights: Vec<f64> = p.devices.iter().map(|d| d.peak_cells_per_sec()).collect();
        let initial = make_slabs(n, 512, &p, &PartitionPolicy::Proportional);
        let resplit = resplit_slabs(n, 512, &[0, 1, 2], &weights);
        assert_eq!(initial, resplit);
    }

    #[test]
    fn excluding_with_cached_weights_matches_the_probing_path() {
        let p = Platform::env2();
        let cached = crate::balance::default_weights(&p);
        for exclude in [vec![], vec![0], vec![1], vec![2], vec![0, 2]] {
            let probed =
                make_slabs_excluding(4_000, 32, &p, &PartitionPolicy::Proportional, &exclude);
            let reused = make_slabs_excluding_with_weights(
                4_000,
                32,
                &p,
                &PartitionPolicy::Proportional,
                &exclude,
                Some(&cached),
            );
            assert_eq!(probed, reused, "exclude {exclude:?}");
            if !probed.is_empty() {
                assert_exact_cover(&probed, 4_000);
            }
        }
    }

    #[test]
    fn every_split_api_covers_columns_exactly_once() {
        let p = Platform::env2();
        for n in [1usize, 33, 4097] {
            for policy in [PartitionPolicy::Equal, PartitionPolicy::Proportional] {
                assert_exact_cover(&make_slabs(n, 32, &p, &policy), n);
                assert_exact_cover(&make_slabs_excluding(n, 32, &p, &policy, &[1]), n);
            }
        }
    }

    #[test]
    fn excluding_with_explicit_weights_indexes_by_platform_device() {
        let p = Platform::env2();
        // Device 0 excluded: survivors 1 and 2 split by weights 3:1.
        let slabs = make_slabs_excluding(
            1_000,
            10,
            &p,
            &PartitionPolicy::Explicit(vec![99.0, 3.0, 1.0]),
            &[0],
        );
        assert_eq!(slabs.len(), 2);
        assert_eq!(slabs[0].device, 1);
        assert_eq!(slabs[1].device, 2);
        assert_eq!(slabs[0].width, 750);
        assert_eq!(slabs[1].width, 250);
    }
}
