//! Run configuration: [`RunConfig`] geometry plus the typed [`KernelPolicy`]
//! bundle of run-shaping knobs (pruning, partitioning, checkpoint cadence).

use megasw_sw::{KernelDispatch, ScoreScheme};

/// How matrix columns are divided among devices.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionPolicy {
    /// Equal block-column counts (what you'd do if all GPUs were alike).
    Equal,
    /// Proportional to each device's calibrated compute power — the
    /// paper's strategy for heterogeneous platforms.
    Proportional,
    /// Explicit weights (one per device), mostly for tests and ablations.
    Explicit(Vec<f64>),
}

/// Block-pruning mode (CUDAlign 2.1 bound, see `megasw_sw::prune`).
///
/// Pruning only ever applies under **local** (Smith-Waterman) semantics;
/// anchored stages ignore this knob entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// Never skip a tile (the paper's multi-GPU baseline).
    #[default]
    Off,
    /// Each device prunes against its **own** best score only — no
    /// cross-device watermark traffic, weakest bound.
    Local,
    /// Devices fold neighbour watermarks (piggybacked on ring border
    /// messages) and a low-frequency shared global watermark into their
    /// pruning bound — the distributed protocol of DESIGN.md §10.
    Distributed,
}

impl PruneMode {
    /// Parse a CLI-style name: `off` | `local` | `distributed`.
    pub fn parse(s: &str) -> Result<PruneMode, String> {
        match s {
            "off" => Ok(PruneMode::Off),
            "local" => Ok(PruneMode::Local),
            "distributed" => Ok(PruneMode::Distributed),
            other => Err(format!(
                "unknown prune mode {other:?} (expected off|local|distributed)"
            )),
        }
    }

    /// True unless pruning is [`PruneMode::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, PruneMode::Off)
    }
}

impl std::fmt::Display for PruneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PruneMode::Off => "off",
            PruneMode::Local => "local",
            PruneMode::Distributed => "distributed",
        })
    }
}

/// Live slab rebalancing at checkpoint boundaries (DESIGN.md §13).
///
/// When on, the run is executed in **segments** of `window_waves`
/// checkpoint intervals. At every segment boundary the controller measures
/// each device's effective throughput (cells per busy nanosecond, net of
/// pruned tiles) over the segment just finished and predicts the makespan
/// of a re-split proportional to those rates; when the predicted
/// improvement exceeds `threshold`, block-columns migrate between devices
/// by handing off the checkpointed H/F border wave — no recomputation, so
/// scores stay bit-identical by construction.
///
/// Rebalancing rides the checkpoint machinery and therefore requires an
/// enabled [`CheckpointCadence`]; a run that asks for it with
/// checkpointing disabled is rejected as invalid.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RebalanceMode {
    /// Static slabs for the whole run (the paper's baseline).
    #[default]
    Off,
    /// Evaluate a re-split at every segment boundary.
    On {
        /// Hysteresis: minimum predicted relative makespan improvement
        /// (`0.05` = 5%) before a migration is applied. Guards against
        /// thrashing on measurement noise.
        threshold: f64,
        /// Sliding-window length in checkpoint intervals: how many
        /// checkpoint waves each segment spans before the controller
        /// re-evaluates.
        window_waves: usize,
    },
}

impl RebalanceMode {
    /// Default hysteresis threshold for `--rebalance on`.
    pub const DEFAULT_THRESHOLD: f64 = 0.05;
    /// Default sliding-window length in checkpoint intervals.
    pub const DEFAULT_WINDOW_WAVES: usize = 8;

    /// `on` with the default threshold and window.
    pub fn on() -> RebalanceMode {
        RebalanceMode::On {
            threshold: Self::DEFAULT_THRESHOLD,
            window_waves: Self::DEFAULT_WINDOW_WAVES,
        }
    }

    /// Parse a CLI-style spec: `off` | `on` | `on:<threshold>`.
    pub fn parse(s: &str) -> Result<RebalanceMode, String> {
        match s {
            "off" => Ok(RebalanceMode::Off),
            "on" => Ok(RebalanceMode::on()),
            other => match other.strip_prefix("on:") {
                Some(t) => {
                    let threshold: f64 = t
                        .parse()
                        .map_err(|_| format!("bad rebalance threshold {t:?}"))?;
                    if !threshold.is_finite() || threshold < 0.0 {
                        return Err(format!(
                            "rebalance threshold must be a finite fraction ≥ 0, got {t}"
                        ));
                    }
                    Ok(RebalanceMode::On {
                        threshold,
                        window_waves: Self::DEFAULT_WINDOW_WAVES,
                    })
                }
                None => Err(format!(
                    "unknown rebalance mode {other:?} (expected off|on|on:<threshold>)"
                )),
            },
        }
    }

    /// True unless rebalancing is [`RebalanceMode::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, RebalanceMode::Off)
    }
}

impl std::fmt::Display for RebalanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceMode::Off => f.write_str("off"),
            RebalanceMode::On { threshold, .. } => write!(f, "on:{threshold}"),
        }
    }
}

/// How often workers deposit border checkpoints into the host-side
/// [`CheckpointStore`](crate::checkpoint::CheckpointStore).
///
/// The cadence only takes effect when a run is executed with a
/// [`RecoveryPolicy`](crate::checkpoint::RecoveryPolicy); without one, no
/// checkpoints are taken regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCadence {
    /// Never checkpoint. A run that requests recovery with this cadence is
    /// rejected as invalid.
    Disabled,
    /// Deposit one full-width border wave every `n` block-rows (`n ≥ 1`).
    EveryRows(usize),
}

impl CheckpointCadence {
    /// The block-row interval, or `None` when disabled.
    pub fn rows_interval(&self) -> Option<usize> {
        match self {
            CheckpointCadence::Disabled => None,
            CheckpointCadence::EveryRows(n) => Some(*n),
        }
    }
}

impl Default for CheckpointCadence {
    /// Every 8 block-rows — the knee of the EXPERIMENTS.md R1 sweep.
    fn default() -> Self {
        CheckpointCadence::EveryRows(8)
    }
}

/// The typed bundle of run-shaping knobs: what to skip, how to split, how
/// often to checkpoint. [`PipelineRun`](crate::PipelineRun) and
/// [`DesSim`](crate::DesSim) consume these knobs only through this struct
/// (via [`RunConfig::policy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPolicy {
    /// Block-pruning mode.
    pub pruning: PruneMode,
    /// Column partitioning policy.
    pub partition: PartitionPolicy,
    /// Checkpoint cadence (effective only under a recovery policy).
    pub checkpoint: CheckpointCadence,
    /// Which DP engine executes tiles (scalar / SSE4.1 / AVX2 / auto).
    pub dispatch: KernelDispatch,
    /// Live slab rebalancing at checkpoint boundaries.
    pub rebalance: RebalanceMode,
}

impl KernelPolicy {
    /// Builder-style: set the pruning mode.
    pub fn with_pruning(mut self, p: PruneMode) -> KernelPolicy {
        self.pruning = p;
        self
    }

    /// Builder-style: set the kernel dispatch mode.
    pub fn with_dispatch(mut self, d: KernelDispatch) -> KernelPolicy {
        self.dispatch = d;
        self
    }

    /// Builder-style: set the partition policy.
    pub fn with_partition(mut self, p: PartitionPolicy) -> KernelPolicy {
        self.partition = p;
        self
    }

    /// Builder-style: set the checkpoint cadence.
    pub fn with_checkpoint(mut self, c: CheckpointCadence) -> KernelPolicy {
        self.checkpoint = c;
        self
    }

    /// Builder-style: set the rebalance mode.
    pub fn with_rebalance(mut self, r: RebalanceMode) -> KernelPolicy {
        self.rebalance = r;
        self
    }

    /// Validate field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if let PartitionPolicy::Explicit(w) = &self.partition {
            if w.is_empty() {
                return Err("explicit weights must not be empty".into());
            }
            if w.iter().any(|x| !x.is_finite() || *x <= 0.0) {
                return Err("explicit weights must be positive and finite".into());
            }
        }
        if self.checkpoint == CheckpointCadence::EveryRows(0) {
            return Err("checkpoint cadence must be ≥ 1 block-row".into());
        }
        if let RebalanceMode::On {
            threshold,
            window_waves,
        } = self.rebalance
        {
            if !threshold.is_finite() || threshold < 0.0 {
                return Err("rebalance threshold must be a finite fraction ≥ 0".into());
            }
            if window_waves == 0 {
                return Err("rebalance window must be ≥ 1 checkpoint wave".into());
            }
            if self.checkpoint == CheckpointCadence::Disabled {
                return Err("rebalancing hands off checkpointed border waves; \
                     it requires an enabled checkpoint cadence"
                    .into());
            }
        }
        Ok(())
    }
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy {
            pruning: PruneMode::Off,
            partition: PartitionPolicy::Proportional,
            checkpoint: CheckpointCadence::default(),
            dispatch: KernelDispatch::Auto,
            rebalance: RebalanceMode::Off,
        }
    }
}

/// Parameters of one multi-GPU run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Tile height in matrix rows. Communication granularity: one border
    /// segment of this height flows to the neighbour per block-row.
    pub block_h: usize,
    /// Tile width in matrix columns.
    pub block_w: usize,
    /// Circular-buffer capacity, in border segments. 1 ≈ synchronous
    /// hand-off; larger values decouple producer and consumer.
    pub buffer_capacity: usize,
    /// Run-shaping policy: pruning, partitioning, checkpoint cadence.
    pub policy: KernelPolicy,
    /// Scoring scheme.
    pub scheme: ScoreScheme,
}

impl RunConfig {
    /// Defaults used throughout the evaluation: 512×512 tiles, capacity-8
    /// rings, proportional partitioning, CUDAlign scoring.
    pub fn paper_default() -> RunConfig {
        RunConfig {
            block_h: 512,
            block_w: 512,
            buffer_capacity: 8,
            policy: KernelPolicy::default(),
            scheme: ScoreScheme::cudalign(),
        }
    }

    /// Small tiles for unit tests (forces many pipeline interactions on
    /// tiny inputs).
    pub fn test_default() -> RunConfig {
        RunConfig {
            block_h: 32,
            block_w: 32,
            buffer_capacity: 4,
            policy: KernelPolicy::default(),
            scheme: ScoreScheme::cudalign(),
        }
    }

    /// Validate field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_h == 0 || self.block_w == 0 {
            return Err("block dimensions must be at least 1".into());
        }
        if self.buffer_capacity == 0 {
            return Err("buffer capacity must be at least 1".into());
        }
        self.policy.validate()?;
        self.scheme.validate().map_err(|e| e.to_string())
    }

    /// Builder-style: set the buffer capacity.
    pub fn with_buffer_capacity(mut self, cap: usize) -> RunConfig {
        self.buffer_capacity = cap;
        self
    }

    /// Builder-style: replace the whole kernel policy.
    pub fn with_policy(mut self, p: KernelPolicy) -> RunConfig {
        self.policy = p;
        self
    }

    /// Builder-style: set the partition policy.
    pub fn with_partition(mut self, p: PartitionPolicy) -> RunConfig {
        self.policy.partition = p;
        self
    }

    /// Builder-style: set the pruning mode.
    pub fn with_pruning(mut self, p: PruneMode) -> RunConfig {
        self.policy.pruning = p;
        self
    }

    /// Builder-style: set the checkpoint cadence.
    pub fn with_checkpoint(mut self, c: CheckpointCadence) -> RunConfig {
        self.policy.checkpoint = c;
        self
    }

    /// Builder-style: set the kernel dispatch mode.
    pub fn with_dispatch(mut self, d: KernelDispatch) -> RunConfig {
        self.policy.dispatch = d;
        self
    }

    /// Builder-style: set the rebalance mode.
    pub fn with_rebalance(mut self, r: RebalanceMode) -> RunConfig {
        self.policy.rebalance = r;
        self
    }

    /// Builder-style: set square tiles of the given side.
    pub fn with_block(mut self, side: usize) -> RunConfig {
        self.block_h = side;
        self.block_w = side;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(RunConfig::paper_default().validate().is_ok());
        assert!(RunConfig::test_default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RunConfig::paper_default().with_block(0).validate().is_err());
        assert!(RunConfig::paper_default()
            .with_buffer_capacity(0)
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![]))
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![1.0, -2.0]))
            .validate()
            .is_err());
        assert!(RunConfig::paper_default()
            .with_partition(PartitionPolicy::Explicit(vec![f64::NAN]))
            .validate()
            .is_err());
    }

    #[test]
    fn builders_compose() {
        let c = RunConfig::paper_default()
            .with_block(128)
            .with_buffer_capacity(2)
            .with_partition(PartitionPolicy::Equal)
            .with_pruning(PruneMode::Distributed)
            .with_checkpoint(CheckpointCadence::EveryRows(4));
        assert_eq!(c.block_h, 128);
        assert_eq!(c.block_w, 128);
        assert_eq!(c.buffer_capacity, 2);
        assert_eq!(c.policy.partition, PartitionPolicy::Equal);
        assert_eq!(c.policy.pruning, PruneMode::Distributed);
        assert_eq!(c.policy.checkpoint, CheckpointCadence::EveryRows(4));
    }

    #[test]
    fn kernel_policy_builders_and_validation() {
        let p = KernelPolicy::default()
            .with_pruning(PruneMode::Local)
            .with_partition(PartitionPolicy::Equal)
            .with_checkpoint(CheckpointCadence::Disabled)
            .with_dispatch(KernelDispatch::ForceScalar);
        assert_eq!(p.pruning, PruneMode::Local);
        assert_eq!(p.partition, PartitionPolicy::Equal);
        assert_eq!(p.checkpoint.rows_interval(), None);
        assert_eq!(p.dispatch, KernelDispatch::ForceScalar);
        assert_eq!(KernelPolicy::default().dispatch, KernelDispatch::Auto);
        assert_eq!(
            RunConfig::paper_default()
                .with_dispatch(KernelDispatch::ForceScalar)
                .policy
                .dispatch,
            KernelDispatch::ForceScalar
        );
        assert!(p.validate().is_ok());
        assert!(RunConfig::paper_default()
            .with_checkpoint(CheckpointCadence::EveryRows(0))
            .validate()
            .is_err());
    }

    #[test]
    fn rebalance_mode_parses_and_displays() {
        assert_eq!(RebalanceMode::parse("off"), Ok(RebalanceMode::Off));
        assert_eq!(RebalanceMode::parse("on"), Ok(RebalanceMode::on()));
        assert_eq!(
            RebalanceMode::parse("on:0.2"),
            Ok(RebalanceMode::On {
                threshold: 0.2,
                window_waves: RebalanceMode::DEFAULT_WINDOW_WAVES,
            })
        );
        assert!(RebalanceMode::parse("on:").is_err());
        assert!(RebalanceMode::parse("on:-1").is_err());
        assert!(RebalanceMode::parse("sometimes").is_err());
        assert_eq!(RebalanceMode::on().to_string(), "on:0.05");
        assert_eq!(RebalanceMode::Off.to_string(), "off");
        assert!(RebalanceMode::on().is_enabled());
        assert!(!RebalanceMode::default().is_enabled());
    }

    #[test]
    fn rebalance_requires_checkpointing() {
        // Rebalance on + default cadence: fine.
        assert!(RunConfig::paper_default()
            .with_rebalance(RebalanceMode::on())
            .validate()
            .is_ok());
        // Rebalance on + disabled cadence: rejected.
        assert!(RunConfig::paper_default()
            .with_rebalance(RebalanceMode::on())
            .with_checkpoint(CheckpointCadence::Disabled)
            .validate()
            .is_err());
        // Zero-wave window is meaningless.
        assert!(RunConfig::paper_default()
            .with_rebalance(RebalanceMode::On {
                threshold: 0.05,
                window_waves: 0,
            })
            .validate()
            .is_err());
        // Disabled cadence without rebalance stays valid.
        assert!(RunConfig::paper_default()
            .with_checkpoint(CheckpointCadence::Disabled)
            .validate()
            .is_ok());
    }

    #[test]
    fn prune_mode_parses_and_displays() {
        for m in [PruneMode::Off, PruneMode::Local, PruneMode::Distributed] {
            assert_eq!(PruneMode::parse(&m.to_string()), Ok(m));
        }
        assert!(PruneMode::parse("sometimes").is_err());
        assert!(!PruneMode::Off.is_enabled());
        assert!(PruneMode::Distributed.is_enabled());
    }
}
