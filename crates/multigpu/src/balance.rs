//! Static load-balance calibration.
//!
//! The paper sizes each device's slab proportionally to its compute power,
//! measured once before the run. Here the "measurement" is a micro-run of
//! the kernel timing model on a representative block-row (rather than
//! reading `peak_gcups()` off the spec sheet) — the distinction matters
//! because short slabs run below peak on wide devices, so calibrated
//! weights can differ from nameplate ratios, exactly as on real hardware.

use megasw_gpusim::{KernelModel, Platform};

/// Calibrated relative weights, one per device (arbitrary scale).
///
/// `probe_cells` is the size of the timing probe (a representative
/// block-row's cell count); `probe_blocks` its parallel width in tiles.
pub fn calibrate_weights(platform: &Platform, probe_blocks: u32, probe_cells: u64) -> Vec<f64> {
    platform
        .devices
        .iter()
        .map(|d| {
            let model = KernelModel::new(d.clone());
            let t = model.launch_time(probe_blocks, probe_cells).as_secs_f64();
            if t <= 0.0 {
                1.0
            } else {
                probe_cells as f64 / t
            }
        })
        .collect()
}

/// Default probe: a 512-row block-row of a 64-tile slab (≈ 16.8M cells).
pub fn default_weights(platform: &Platform) -> Vec<f64> {
    calibrate_weights(platform, 64, 64 * 512 * 512)
}

/// The theoretical best-case GCUPS of a proportionally balanced pipeline:
/// the aggregate of the per-device sustained rates on probe-shaped rows.
pub fn balanced_peak_gcups(platform: &Platform) -> f64 {
    default_weights(platform).iter().sum::<f64>() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_gpusim::catalog;

    #[test]
    fn weights_order_matches_device_power() {
        let p = Platform::env2(); // Titan > 680 > K20
        let w = default_weights(&p);
        assert_eq!(w.len(), 3);
        assert!(w[0] > w[1]);
        assert!(w[1] > w[2]);
    }

    #[test]
    fn homogeneous_weights_are_equal() {
        let p = Platform::homogeneous(catalog::gtx680(), 3);
        let w = default_weights(&p);
        assert!((w[0] - w[1]).abs() / w[0] < 1e-9);
        assert!((w[1] - w[2]).abs() / w[1] < 1e-9);
    }

    #[test]
    fn calibrated_weights_sit_below_nameplate_peak() {
        let p = Platform::single(catalog::gtx_titan());
        let w = default_weights(&p);
        let sustained_gcups = w[0] / 1e9;
        let peak = p.devices[0].peak_gcups();
        assert!(sustained_gcups < peak);
        assert!(sustained_gcups > 0.9 * peak, "{sustained_gcups} vs {peak}");
    }

    #[test]
    fn narrow_probes_penalize_wide_devices() {
        // With a 4-tile probe, a 16-SM board runs at 1/4 duty while an
        // 8-SM board runs at 1/2: calibration must see that.
        let p = Platform::custom("t", vec![catalog::gtx580(), catalog::gtx680()]);
        let wide = calibrate_weights(&p, 64, 64 * 512 * 512);
        let narrow = calibrate_weights(&p, 4, 4 * 512 * 512);
        let wide_ratio = wide[0] / wide[1];
        let narrow_ratio = narrow[0] / narrow[1];
        assert!(
            narrow_ratio < wide_ratio,
            "narrow {narrow_ratio} vs wide {wide_ratio}"
        );
    }

    #[test]
    fn balanced_peak_below_aggregate_peak() {
        let p = Platform::env2();
        let balanced = balanced_peak_gcups(&p);
        assert!(balanced < p.aggregate_peak_gcups());
        assert!(balanced > 0.9 * p.aggregate_peak_gcups());
    }
}
