//! F1/F2 — scaling measurements on this host: the CPU wavefront's thread
//! scaling (real parallel speedup) and the DES planner's cost per device
//! count (the series itself is printed by `paper-tables f1 f2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::multigpu::desrun::run_des;
use megasw::prelude::*;
use megasw_bench::cached_pair;
use std::time::Duration;

fn bench_cpu_wavefront_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_cpu_wavefront");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair(8_000, 301);
    let scheme = ScoreScheme::cudalign();
    let cells = (a.len() * b.len()) as u64;
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| cpu_parallel(a.codes(), b.codes(), &scheme, 512, threads).0)
            },
        );
    }
    group.finish();
}

fn bench_des_planner(c: &mut Criterion) {
    // The simulator itself must stay cheap: one megabase-scale plan per
    // device count. Regressions here break the harness's usability.
    let mut group = c.benchmark_group("f1_des_planner");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    let cfg = RunConfig::paper_default();
    for gpus in [1usize, 4, 8] {
        let platform = Platform::homogeneous(catalog::gtx680(), gpus);
        group.bench_with_input(
            BenchmarkId::new("plan_4mbp", gpus),
            &platform,
            |bench, platform| {
                bench.iter(|| {
                    run_des(4_000_000, 4_000_000, platform, &cfg)
                        .report
                        .sim_time
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_wavefront_scaling, bench_des_planner);
criterion_main!(benches);
