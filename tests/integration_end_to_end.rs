//! End-to-end integration: every execution backend in the workspace must
//! produce the identical Smith-Waterman result on realistic homologous
//! pairs, from the quadratic reference up to the multi-GPU pipeline.

use megasw::prelude::*;
use megasw::sw::grid::{run_sequential, BlockGrid};
use megasw::sw::prune::run_pruned;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

fn homologous_pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 99).apply(&a);
    (a, b)
}

#[test]
fn all_backends_agree_on_homologous_pair() {
    let (a, b) = homologous_pair(6_000, 11);
    let scheme = ScoreScheme::cudalign();

    let want = gotoh_best(a.codes(), b.codes(), &scheme);
    assert!(want.score > 0);

    // Sequential blocked grid.
    let grid = BlockGrid::new(a.len(), b.len(), 192, 192);
    let seq = run_sequential(a.codes(), b.codes(), &grid, &scheme);
    assert_eq!(seq.best, want);

    // Pruned diagonal executor.
    let pruned = run_pruned(a.codes(), b.codes(), &grid, &scheme);
    assert_eq!(pruned.best, want);

    // Multicore CPU wavefront.
    let (par, _) = cpu_parallel(a.codes(), b.codes(), &scheme, 256, 4);
    assert_eq!(par, want);

    // Multi-GPU threaded pipeline, both environments.
    for platform in [Platform::env1(), Platform::env2()] {
        let cfg = RunConfig::paper_default().with_block(128);
        let report = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "platform {}", platform.name);
    }
}

#[test]
fn pipeline_matches_reference_on_all_test_catalog_pairs() {
    // The four benchmark pairs at test scale (tens of KBP): the paper's
    // Table 1 shape, kept small enough for CI.
    let catalog = PairCatalog::test_scale();
    let scheme = ScoreScheme::cudalign();
    for spec in &catalog.specs {
        let pair = ChromosomePair::generate(spec.clone());
        let want = gotoh_best(pair.human.codes(), pair.chimp.codes(), &scheme);
        let cfg = RunConfig::paper_default().with_block(512);
        let report = PipelineRun::new(pair.human.codes(), pair.chimp.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(report.best, want, "pair {}", spec.name);
        assert_eq!(report.total_cells, pair.cells());
    }
}

#[test]
fn alignment_retrieval_composes_with_pipeline_result() {
    // Stage 1 (pipeline) finds the endpoint; the traceback stages must
    // recover an alignment whose score and endpoint match it exactly.
    let (a, b) = homologous_pair(3_000, 23);
    let cfg = RunConfig::paper_default().with_block(128);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
        .config(cfg.clone())
        .run()
        .unwrap();

    let aln = local_align(a.codes(), b.codes(), &cfg.scheme);
    assert_eq!(aln.score, report.best.score);
    assert_eq!((aln.end_i, aln.end_j), (report.best.i, report.best.j));
    assert!(aln.identity() > 0.9);
}

#[test]
fn fasta_roundtrip_feeds_the_pipeline() {
    // Write a pair to FASTA, read it back, compare — the external-data path.
    use megasw::seq::fasta::{read_fasta, write_fasta, FastaRecord};

    let (a, b) = homologous_pair(2_000, 31);
    let mut buf = Vec::new();
    write_fasta(
        &mut buf,
        &[
            FastaRecord {
                header: "human chr-test".into(),
                seq: a.clone(),
            },
            FastaRecord {
                header: "chimp chr-test".into(),
                seq: b.clone(),
            },
        ],
        70,
    )
    .unwrap();

    let records = read_fasta(&buf[..]).unwrap();
    assert_eq!(records.len(), 2);
    let cfg = RunConfig::paper_default().with_block(128);
    let report = PipelineRun::new(
        records[0].seq.codes(),
        records[1].seq.codes(),
        &Platform::env1(),
    )
    .config(cfg.clone())
    .run()
    .unwrap();
    assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
}

#[test]
fn reverse_complement_strand_scores_differently_but_validly() {
    // Comparing against the opposite strand is a legal workload; scores
    // stay within bounds and backends agree.
    let (a, b) = homologous_pair(1_500, 41);
    let rc = b.reverse_complement();
    let scheme = ScoreScheme::cudalign();
    let want = gotoh_best(a.codes(), rc.codes(), &scheme);
    let cfg = RunConfig::paper_default().with_block(96);
    let report = PipelineRun::new(a.codes(), rc.codes(), &Platform::env2())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(report.best, want);
    assert!(want.score <= scheme.max_possible(a.len(), rc.len()));
}
