//! `bench-diff` — compare two `BENCH_<n>.json` artifacts and fail on
//! regression.
//!
//! ```text
//! bench-diff BASELINE.json CURRENT.json [--threshold-pct P] [--shape-only]
//!            [--min-gcups NAME=FLOOR]...
//! ```
//!
//! Exit status:
//! * `0` — artifacts parse, cover the same experiments, no experiment's
//!   median GCUPS dropped by more than the threshold (default 10%), and
//!   every `--min-gcups` floor holds;
//! * `1` — a regression past the threshold, a floor violation, or (always)
//!   a shape mismatch;
//! * `2` — an artifact is missing, unreadable, or schema-invalid.
//!
//! `--shape-only` skips the performance comparison and only verifies the
//! two artifacts describe the same experiment set — what CI uses when
//! comparing a fresh smoke run against the committed baseline from a
//! different machine.
//!
//! `--min-gcups NAME=FLOOR` (repeatable) asserts an *absolute* floor on the
//! named experiment's median GCUPS in the **current** artifact. Relative
//! thresholds can't catch a slow leak across many runs; a floor pins the
//! number itself (e.g. the SIMD kernel's required speedup over the scalar
//! anchor). Floors are checked even under `--shape-only`, since they do not
//! depend on the baseline's host. Naming an experiment the current artifact
//! does not contain is an error (exit 2).

use megasw_bench::artifact::{diff, Artifact};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(regressed) => {
            if regressed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench-diff BASELINE.json CURRENT.json [--threshold-pct P] [--shape-only] [--min-gcups NAME=FLOOR]..."
            );
            ExitCode::from(2)
        }
    }
}

fn run(mut args: Vec<String>) -> Result<bool, String> {
    let shape_only = take_flag(&mut args, "--shape-only");
    let mut floors: Vec<(String, f64)> = Vec::new();
    while let Some(spec) = take_value(&mut args, "--min-gcups")? {
        let (name, floor) = spec
            .split_once('=')
            .ok_or_else(|| format!("--min-gcups expects NAME=FLOOR, got {spec:?}"))?;
        let floor: f64 = floor
            .parse()
            .map_err(|_| format!("invalid --min-gcups floor {floor:?}"))?;
        if !(floor.is_finite() && floor >= 0.0) {
            return Err(format!(
                "--min-gcups floor must be a finite non-negative number, got {floor}"
            ));
        }
        floors.push((name.to_string(), floor));
    }
    let threshold_pct = take_value(&mut args, "--threshold-pct")?
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("invalid --threshold-pct {s:?}"))
        })
        .transpose()?
        .unwrap_or(10.0);
    if !(0.0..=100.0).contains(&threshold_pct) {
        return Err("--threshold-pct must be within [0, 100]".into());
    }
    if args.len() != 2 {
        return Err(format!("expected 2 artifact paths, got {}", args.len()));
    }

    let baseline = load(&args[0])?;
    let current = load(&args[1])?;
    let report = diff(&baseline, &current);
    print!("{}", report.render());

    // Absolute floors come first: they hold regardless of shape drift and
    // must error (not silently pass) on a name the artifact doesn't have.
    let mut floor_broken = false;
    for (name, floor) in &floors {
        let exp = current
            .experiments
            .iter()
            .find(|e| &e.name == name)
            .ok_or_else(|| format!("--min-gcups {name}: no such experiment in {}", args[1]))?;
        if exp.gcups_median < *floor {
            println!(
                "FAIL: {name} median {:.3} GCUPS below required floor {floor} [kernel {}/{}]",
                exp.gcups_median, exp.kernel_dispatch, exp.kernel_resolved
            );
            floor_broken = true;
        } else {
            println!(
                "OK: {name} median {:.3} GCUPS meets floor {floor}",
                exp.gcups_median
            );
        }
    }

    if !report.shapes_match() {
        println!("FAIL: experiment sets differ");
        return Ok(true);
    }
    if shape_only {
        println!("OK: shapes match ({} experiments)", report.deltas.len());
        return Ok(floor_broken);
    }
    let regressions = report.regressions(threshold_pct / 100.0);
    if regressions.is_empty() {
        println!("OK: no regression beyond {threshold_pct}%");
        Ok(floor_broken)
    } else {
        for r in &regressions {
            println!(
                "FAIL: {} regressed {:.1}% (threshold {threshold_pct}%)",
                r.name,
                -100.0 * r.delta
            );
        }
        Ok(true)
    }
}

fn load(path: &str) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Artifact::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(idx) = args.iter().position(|a| a == name) {
        args.remove(idx);
        true
    } else {
        false
    }
}

fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(idx) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if idx + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Ok(Some(value))
}
