//! Per-run metrics: named counters and percentile histograms.
//!
//! The registry is built once per run, after the workers have joined, from
//! the run report and the recorded spans — so it needs no interior locking.
//! Names are dotted paths (`ring.d0.max_occupancy`, `gcups.wall`), kept in
//! sorted order so rendered summaries are deterministic.
//!
//! [`Histogram`] is a dependency-free log-bucketed summary: observations
//! land in geometric buckets with [`BUCKETS_PER_OCTAVE`] sub-buckets per
//! power of two, so any quantile estimate carries a bounded *relative*
//! error of at most `2^(1/(2·BUCKETS_PER_OCTAVE)) − 1` (< 4.5% at the
//! default resolution) while the memory cost stays proportional to the
//! number of occupied buckets, not the number of observations.

use std::collections::BTreeMap;
use std::fmt;

/// Geometric sub-buckets per power of two. 8 gives a worst-case relative
/// quantile error below 4.5% (`2^(1/16) − 1`), which is far below the
/// run-to-run noise of any wall-clock measurement this crate summarizes.
pub const BUCKETS_PER_OCTAVE: u32 = 8;

/// Streaming summary of a set of `f64` observations with log-bucketed
/// percentiles.
///
/// Non-finite observations (NaN, ±∞) are **rejected**: they bump
/// [`Histogram::rejected`] and leave every other statistic untouched, so a
/// single bad sample cannot poison `min`/`max`/`mean` or the quantiles.
/// Zero and negative observations are finite and legal; they share a
/// dedicated floor bucket (a log scale cannot spread them further apart)
/// whose representative value is 0, clamped into the observed `[min, max]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Non-finite observations rejected by [`Histogram::record`].
    pub rejected: u64,
    /// Occupied log buckets: key is the bucket index from [`bucket_index`],
    /// value the number of observations that landed there.
    buckets: BTreeMap<i32, u64>,
}

/// Bucket index for a finite observation: `floor(log2(v) ·
/// BUCKETS_PER_OCTAVE)` for positive `v`, and `i32::MIN` as the shared
/// floor bucket for zero and negative values.
fn bucket_index(value: f64) -> i32 {
    if value <= 0.0 {
        return i32::MIN;
    }
    (value.log2() * BUCKETS_PER_OCTAVE as f64).floor() as i32
}

/// Representative value for a bucket: the geometric midpoint of its bounds.
fn bucket_mid(index: i32) -> f64 {
    if index == i32::MIN {
        return 0.0;
    }
    ((index as f64 + 0.5) / BUCKETS_PER_OCTAVE as f64).exp2()
}

impl Histogram {
    /// Record one observation. Non-finite values are rejected (counted in
    /// [`Histogram::rejected`]) so they cannot poison the summary.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the log buckets.
    ///
    /// Returns 0 for an empty histogram. The estimate is the geometric
    /// midpoint of the bucket holding the target rank, clamped to the
    /// observed `[min, max]` — so a single-sample histogram returns that
    /// sample exactly, and the relative error is bounded by the bucket
    /// resolution (< 4.5% at [`BUCKETS_PER_OCTAVE`] = 8).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q · n), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Cumulative bucket counts for exposition: `(upper_bound, count ≤
    /// upper_bound)` pairs in ascending bound order, one per occupied log
    /// bucket. The floor bucket (zero and negative observations) reports
    /// bound 0. Counts are cumulative and therefore monotone nondecreasing;
    /// the last entry's count equals [`Histogram::count`]. Prometheus
    /// histogram exposition appends the implicit `+Inf` bucket itself.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            let bound = if idx == i32::MIN {
                0.0
            } else {
                ((idx as f64 + 1.0) / BUCKETS_PER_OCTAVE as f64).exp2()
            };
            out.push((bound, cum));
        }
        out
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Named counters + histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    help: BTreeMap<String, String>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record one observation into a histogram, creating it if absent.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Attach a one-line help string to a metric. Exposition formats that
    /// carry metadata (`# HELP` in Prometheus text) render it; metrics
    /// without a description get a generated fallback line.
    pub fn describe(&mut self, name: &str, help: &str) {
        self.help.insert(name.to_string(), help.to_string());
    }

    /// The help string attached via [`MetricsRegistry::describe`], if any.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.help.get(name).map(String::as_str)
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name:<40} {value}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name:<40} n={} mean={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
                h.count,
                h.mean(),
                h.min,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.incr("blocks", 3);
        m.incr("blocks", 4);
        assert_eq!(m.counter("blocks"), Some(7));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histogram_summary() {
        let mut m = MetricsRegistry::new();
        for v in [2.0, 4.0, 9.0] {
            m.observe("occupancy", v);
        }
        let h = m.histogram("occupancy").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 9.0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_mean_and_quantiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::default();
        h.record(123.456);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123.456, "q = {q}");
        }
    }

    #[test]
    fn non_finite_observations_are_rejected_not_poisoning() {
        let mut h = Histogram::default();
        h.record(2.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(8.0);
        assert_eq!(h.count, 2);
        assert_eq!(h.rejected, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 8.0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!(h.p50().is_finite());
        assert!(h.p99() <= 8.0);
    }

    #[test]
    fn nan_first_observation_does_not_seed_min_max() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        assert_eq!(h.count, 0);
        assert_eq!(h.rejected, 1);
        h.record(3.0);
        assert_eq!(h.min, 3.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn zero_and_negative_values_are_recorded() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(10.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -5.0);
        assert_eq!(h.max, 10.0);
        // The floor bucket holds the two non-positive samples; its
        // representative value is 0 (within the observed range).
        assert_eq!(h.quantile(0.5), 0.0);
        assert!((h.quantile(1.0) - 10.0).abs() / 10.0 < 0.05);
    }

    /// Seeded-sweep comparison of the log-bucket quantiles against a
    /// sorted-array oracle, within the bucket-resolution relative error.
    #[test]
    fn quantiles_match_sorted_oracle_within_bucket_resolution() {
        // Tiny xorshift so the sweep is seeded and dependency-free.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Half-bucket relative error bound, plus float-boundary slack.
        let bound = 2f64.powf(1.0 / (2.0 * BUCKETS_PER_OCTAVE as f64)) - 1.0 + 1e-9;
        for scale in [1.0, 1e3, 1e9] {
            for n in [2usize, 7, 100, 1000] {
                let mut h = Histogram::default();
                let mut values: Vec<f64> = (0..n)
                    .map(|_| {
                        // Uniform mantissa across three decades.
                        let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                        scale * 1000f64.powf(u)
                    })
                    .collect();
                for &v in &values {
                    h.record(v);
                }
                values.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                    let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
                    let oracle = values[rank.min(n - 1)];
                    let est = h.quantile(q);
                    let rel = (est - oracle).abs() / oracle;
                    assert!(
                        rel <= bound,
                        "scale {scale} n {n} q {q}: oracle {oracle}, est {est}, rel {rel}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::default();
        for i in 1..=500u32 {
            h.record(i as f64);
        }
        let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(w[1] >= w[0], "{qs:?}");
        }
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total_to_count() {
        let mut h = Histogram::default();
        for i in 0..1000u32 {
            h.record(((i * 37) % 991) as f64 - 10.0);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[1].0 > w[0].0, "bounds ascend: {buckets:?}");
            assert!(w[1].1 >= w[0].1, "counts nondecreasing: {buckets:?}");
        }
        assert_eq!(buckets.last().unwrap().1, h.count);
        // The floor bucket (bound 0) holds the negative-and-zero samples.
        assert_eq!(buckets[0].0, 0.0);
        assert!(buckets[0].1 > 0);
    }

    #[test]
    fn describe_attaches_help_text() {
        let mut m = MetricsRegistry::new();
        m.incr("cells.total", 1);
        m.describe("cells.total", "DP cells computed");
        assert_eq!(m.help("cells.total"), Some("DP cells computed"));
        assert_eq!(m.help("missing"), None);
    }

    #[test]
    fn display_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.observe("m.mid", 1.5);
        let text = m.to_string();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z);
        assert!(text.contains("mean=1.500"));
        assert!(text.contains("p50=1.500"));
        assert!(text.contains("p99=1.500"));
    }
}
