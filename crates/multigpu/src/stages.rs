//! Multi-GPU alignment retrieval (CUDAlign stages 1–3 analogue).
//!
//! The paper's system computes stage 1 (best score + end point) on the
//! GPUs; the CUDAlign pipeline it belongs to then recovers the alignment:
//!
//! 1. **Stage 1** — [`crate::pipeline::PipelineRun`] (local semantics)
//!    over the whole matrix ⇒ score `S` and end point `(iₑ, jₑ)`.
//! 2. **Stage 2** — the *same multi-GPU pipeline* under anchored semantics
//!    over the **reversed prefixes** `rev(a[..iₑ])`, `rev(b[..jₑ])` ⇒ the
//!    start point `(iₛ, jₛ)` (the anchored maximum, mapped back). This is
//!    the step that genuinely needs the multi-GPU machinery again: the
//!    reverse matrix is as big as the prefix of the forward one.
//! 3. **Stage 3** — Myers–Miller on the bounded segment
//!    `a[iₛ..=iₑ] × b[jₛ..=jₑ]` (host-side, linear memory) ⇒ the op list.
//!    CUDAlign splits this across further GPU passes; for the simulated
//!    platform the host implementation from `megasw-sw` is the honest
//!    equivalent (the segment is tiny next to the full matrix).
//!
//! The result re-scores to exactly `S` (asserted), and the whole flow is
//! covered by tests against the single-threaded
//! [`megasw_sw::traceback::local_align`].

use crate::config::RunConfig;
use crate::pipeline::{run_pipeline_live, FaultSchedule, PipelineError, Semantics};
use megasw_gpusim::Platform;
use megasw_obs::{LiveTelemetry, ObsKind, Recorder};
use megasw_sw::traceback::{myers_miller, score_of_ops, LocalAlignment};
use std::sync::Arc;
use std::time::Duration;

/// Where each stage spent its wall-clock time.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    pub stage1: Duration,
    pub stage2: Duration,
    pub stage3: Duration,
}

/// Retrieve the optimal local alignment using the multi-GPU pipeline for
/// the quadratic stages. See the module docs for the stage breakdown.
pub fn multigpu_local_align(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
) -> Result<(LocalAlignment, StageTimes), PipelineError> {
    multigpu_local_align_observed(a, b, platform, config, &Recorder::disabled())
}

/// [`multigpu_local_align`] with a span recorder attached: stages 1 and 2
/// contribute the pipeline's `Kernel`/ring spans, stage 3 a host-side
/// `Traceback` span.
pub fn multigpu_local_align_observed(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    obs: &Recorder,
) -> Result<(LocalAlignment, StageTimes), PipelineError> {
    multigpu_local_align_live(a, b, platform, config, obs, None)
}

/// [`multigpu_local_align_observed`] with in-flight telemetry threaded
/// through both pipeline stages. Size the handle for `m × n` total cells:
/// stage 2 re-runs the pipeline over the reversed prefixes, so the live
/// cell count can exceed the forward matrix — the snapshot's
/// `fraction_done` clamps at 100% rather than overshooting.
pub fn multigpu_local_align_live(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    obs: &Recorder,
    live: Option<&Arc<LiveTelemetry>>,
) -> Result<(LocalAlignment, StageTimes), PipelineError> {
    let mut times = StageTimes::default();

    // Stage 1: forward local pipeline.
    let t0 = std::time::Instant::now();
    let stage1 = run_pipeline_live(
        a,
        b,
        platform,
        config,
        &FaultSchedule::default(),
        Semantics::Local,
        obs,
        live,
        None,
        None,
    )?;
    times.stage1 = t0.elapsed();
    let best = stage1.best;
    if best.score <= 0 {
        return Ok((LocalAlignment::empty(), times));
    }
    let (ie, je) = (best.i, best.j);

    // Stage 2: reversed anchored pipeline over the prefixes.
    let t0 = std::time::Instant::now();
    let ar: Vec<u8> = a[..ie].iter().rev().copied().collect();
    let br: Vec<u8> = b[..je].iter().rev().copied().collect();
    let stage2 = run_pipeline_live(
        &ar,
        &br,
        platform,
        config,
        &FaultSchedule::default(),
        Semantics::Anchored,
        obs,
        live,
        None,
        None,
    )?;
    times.stage2 = t0.elapsed();
    debug_assert_eq!(
        stage2.best.score, best.score,
        "anchored reverse pipeline must reproduce the stage-1 score"
    );
    let is = ie - stage2.best.i + 1;
    let js = je - stage2.best.j + 1;

    // Stage 3: Myers–Miller on the bounded segment — host work, so the
    // span lands on the host lane (no device).
    let t0 = std::time::Instant::now();
    let tb_start = obs.now_ns();
    let a_seg = &a[is - 1..ie];
    let b_seg = &b[js - 1..je];
    let ops = myers_miller(a_seg, b_seg, &config.scheme);
    obs.record_since(ObsKind::Traceback, None, None, tb_start);
    times.stage3 = t0.elapsed();
    debug_assert_eq!(
        score_of_ops(a_seg, b_seg, &ops, &config.scheme),
        Ok(best.score),
        "retrieved path must re-score to the stage-1 score"
    );

    Ok((
        LocalAlignment {
            score: best.score,
            start_i: is,
            start_j: js,
            end_i: ie,
            end_j: je,
            ops,
        },
        times,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};
    use megasw_sw::traceback::local_align;

    fn pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed + 3).apply(&a);
        (a, b)
    }

    #[test]
    fn matches_host_local_align_on_similar_pairs() {
        for seed in [1u64, 2, 3] {
            let (a, b) = pair(2_000, seed);
            let cfg = RunConfig::paper_default().with_block(96);
            let (aln, times) =
                multigpu_local_align(a.codes(), b.codes(), &Platform::env2(), &cfg).unwrap();
            let want = local_align(a.codes(), b.codes(), &cfg.scheme);
            assert_eq!(aln.score, want.score, "seed {seed}");
            assert_eq!(
                (aln.start_i, aln.start_j, aln.end_i, aln.end_j),
                (want.start_i, want.start_j, want.end_i, want.end_j),
                "seed {seed}"
            );
            assert!(times.stage1 > Duration::ZERO);
            assert!(times.stage2 > Duration::ZERO);
        }
    }

    #[test]
    fn rescoring_holds_on_dissimilar_pairs() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(1_200, 9)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(1_100, 10)).generate();
        let cfg = RunConfig::paper_default().with_block(64);
        let (aln, _) = multigpu_local_align(a.codes(), b.codes(), &Platform::env1(), &cfg).unwrap();
        if aln.score > 0 {
            let a_seg = &a.codes()[aln.start_i - 1..aln.end_i];
            let b_seg = &b.codes()[aln.start_j - 1..aln.end_j];
            assert_eq!(
                score_of_ops(a_seg, b_seg, &aln.ops, &cfg.scheme),
                Ok(aln.score)
            );
        }
    }

    #[test]
    fn empty_and_hopeless_inputs() {
        let cfg = RunConfig::paper_default().with_block(32);
        let (aln, _) = multigpu_local_align(&[], &[], &Platform::env1(), &cfg).unwrap();
        assert!(aln.is_empty());
        // All-N sequences can never score.
        let n = vec![4u8; 500];
        let (aln, _) = multigpu_local_align(&n, &n, &Platform::env2(), &cfg).unwrap();
        assert!(aln.is_empty());
    }

    #[test]
    fn anchored_pipeline_matches_host_anchored_scan() {
        use crate::pipeline::PipelineRun;
        use megasw_sw::traceback::anchored_best;
        for seed in [11u64, 12] {
            let (a, b) = pair(1_500, seed);
            let cfg = RunConfig::paper_default().with_block(64);
            let rep = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .semantics(Semantics::Anchored)
                .run()
                .unwrap();
            assert_eq!(
                rep.best,
                anchored_best(a.codes(), b.codes(), &cfg.scheme),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn anchored_pipeline_invariant_to_partitioning() {
        use crate::config::PartitionPolicy;
        use crate::pipeline::PipelineRun;
        use megasw_sw::traceback::anchored_best;
        let (a, b) = pair(1_000, 21);
        let want = anchored_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign());
        for policy in [
            PartitionPolicy::Equal,
            PartitionPolicy::Explicit(vec![1.0, 9.0, 3.0]),
        ] {
            let cfg = RunConfig::paper_default()
                .with_block(48)
                .with_partition(policy);
            let rep = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg)
                .semantics(Semantics::Anchored)
                .run()
                .unwrap();
            assert_eq!(rep.best, want);
        }
    }

    #[test]
    fn observed_retrieval_emits_a_host_traceback_span() {
        use megasw_obs::ObsLevel;
        let (a, b) = pair(1_500, 31);
        let cfg = RunConfig::paper_default().with_block(64);
        let obs = Recorder::new(ObsLevel::Full);
        let (aln, _) =
            multigpu_local_align_observed(a.codes(), b.codes(), &Platform::env1(), &cfg, &obs)
                .unwrap();
        assert!(aln.score > 0);
        let spans = obs.spans();
        let tb: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == ObsKind::Traceback)
            .collect();
        assert_eq!(tb.len(), 1);
        assert_eq!(tb[0].device, None);
        // Stage-1 and stage-2 pipelines both contributed kernel spans.
        assert!(spans.iter().filter(|s| s.kind == ObsKind::Kernel).count() >= 2);
    }
}
