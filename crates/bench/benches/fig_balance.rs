//! F4/F5 — load-balance and overlap ablations on the threaded runtime:
//! equal vs proportional vs inverted partitioning on a heterogeneous-shaped
//! split. (On the host all threads run at CPU speed, so "proportional"
//! deliberately *mis*-balances the CPU run — what this bench shows is the
//! cost of slab-size skew in the real pipeline, the same mechanism the
//! simulated F4 quantifies with truly heterogeneous device speeds.)

use megasw::prelude::*;
use megasw_bench::{cached_pair, harness::Group};

fn bench_partition_policies() {
    let group = Group::new("f4_partition_policy");
    let (a, b) = cached_pair(8_000, 501);
    let cells = (a.len() * b.len()) as u64;
    let platform = Platform::env2();
    let policies = [
        ("equal", PartitionPolicy::Equal),
        ("proportional", PartitionPolicy::Proportional),
        (
            "skewed_4_1_1",
            PartitionPolicy::Explicit(vec![4.0, 1.0, 1.0]),
        ),
    ];
    for (name, policy) in policies {
        let cfg = RunConfig::paper_default()
            .with_block(256)
            .with_partition(policy);
        group.bench_cells(name, cells, || {
            PipelineRun::new(a.codes(), b.codes(), &platform)
                .config(cfg.clone())
                .run()
                .expect("pipeline run failed")
                .best
        });
    }
}

fn bench_device_count_overlap() {
    // F5 on the host: 1 device (no comms at all) vs 3 devices (fine-grain
    // rings): the delta is the real synchronization cost of the pipeline.
    let group = Group::new("f5_overlap_cost");
    let (a, b) = cached_pair(8_000, 502);
    let cells = (a.len() * b.len()) as u64;
    for gpus in [1usize, 3] {
        let platform = Platform::env2().take(gpus);
        let cfg = RunConfig::paper_default().with_block(256);
        group.bench_cells(&format!("devices_{gpus}"), cells, || {
            PipelineRun::new(a.codes(), b.codes(), &platform)
                .config(cfg.clone())
                .run()
                .expect("pipeline run failed")
                .best
        });
    }
}

fn main() {
    bench_partition_policies();
    bench_device_count_overlap();
}
