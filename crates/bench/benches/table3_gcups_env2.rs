//! T3 — throughput of the threaded pipeline on Environment 2 (3
//! heterogeneous devices), 1/2/3-GPU sweep. Throughput unit = DP cells.
//!
//! The paper-scale series for this table comes from
//! `cargo run -p megasw-bench --release --bin paper-tables t3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::prelude::*;
use megasw_bench::cached_pair;
use std::time::Duration;

fn bench_env2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_env2");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let cfg = RunConfig::paper_default();
    let (a, b) = cached_pair(8_000, 201);
    let cells = (a.len() * b.len()) as u64;

    for gpus in [1usize, 2, 3] {
        let platform = Platform::env2().take(gpus);
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(
            BenchmarkId::new("pair8k", format!("{gpus}gpu")),
            &platform,
            |bench, platform| {
                bench.iter(|| {
                    run_pipeline(a.codes(), b.codes(), platform, &cfg)
                        .expect("pipeline run failed")
                        .best
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_env2);
criterion_main!(benches);
