#!/usr/bin/env bash
# Offline CI gate for the megasw workspace: release build, full test
# suite, and a warning-free clippy pass. No network access required —
# the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
