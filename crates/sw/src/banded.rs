//! Banded Smith-Waterman.
//!
//! Homologous chromosome pairs align along a near-diagonal corridor; a
//! band of diagonals around it contains the whole optimal path, so the
//! `O(m·n)` matrix collapses to `O(m·w)`. Banding is the classic CPU-side
//! complement to the exhaustive GPU computation: the harness uses it to
//! cross-check megabase pairs the full CPU DP would take hours on.
//!
//! Semantics: [`banded_best`] computes the best local alignment **whose
//! entire path stays inside the band** — a lower bound on the true score,
//! equal to it whenever the band covers the optimal path.
//! [`banded_adaptive`] doubles the width until the score stops improving
//! and the optimum keeps clear of the band edge, which is the standard
//! practical convergence criterion (and is exact for every pair whose
//! optimal alignment is unique and bounded; a pathological tie at every
//! width could in principle stop early).
//!
//! The band covers diagonals `k = j − i ∈ [min(0, d) − w, max(0, d) + w]`
//! where `d = n − m`, i.e. it always contains the main corridor between
//! the two sequence ends plus `w` diagonals of slack on each side.

use crate::cell::{BestCell, Score, NEG_INF};
use crate::scoring::ScoreScheme;

/// Result of a banded scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandedResult {
    /// Best cell of any in-band alignment (≤ the unbanded best).
    pub best: BestCell,
    /// DP cells actually computed.
    pub cells_computed: u128,
    /// The best cell sits within one diagonal of the band edge — a sign
    /// the band may be clipping the optimum.
    pub touched_edge: bool,
    /// Highest `H` seen on a band-clipped boundary cell. A large value
    /// means a strong alignment path reaches the band edge — the optimum
    /// may dip outside the band mid-path even when the best *endpoint*
    /// stays comfortably interior.
    pub edge_best: Score,
    /// Band half-width used.
    pub width: usize,
}

impl BandedResult {
    /// Could this result be limited by the band? True when the best cell
    /// touches the edge, or when some boundary cell carries at least half
    /// the best score (a serious candidate path crosses out of the band).
    /// Random off-path matches score near zero, so they never trigger this
    /// on pairs with a real alignment.
    pub fn band_limited(&self) -> bool {
        self.touched_edge || 2 * self.edge_best >= self.best.score.max(1)
    }
}

/// Banded local alignment with half-width `width` (clamped to ≥ 1).
///
/// ```
/// use megasw_sw::kernel::scalar;
/// use megasw_sw::ScoreScheme;
/// use megasw_seq::DnaSeq;
///
/// let a = DnaSeq::from_str_unwrap("ACGTACGTACGTACGT");
/// let scheme = ScoreScheme::cudalign();
/// let banded = scalar().banded(a.codes(), a.codes(), &scheme, 2);
/// // Identical sequences align on the main diagonal: a 2-wide band is exact.
/// assert_eq!(banded.best, scalar().best(a.codes(), a.codes(), &scheme));
/// assert!(banded.cells_computed < 16 * 16);
/// ```
/// The band scan backing [`crate::kernel::Kernel::banded`].
pub(crate) fn banded_best_impl(
    a: &[u8],
    b: &[u8],
    scheme: &ScoreScheme,
    width: usize,
) -> BandedResult {
    let m = a.len();
    let n = b.len();
    let width = width.max(1);
    if m == 0 || n == 0 {
        return BandedResult {
            best: BestCell::ZERO,
            cells_computed: 0,
            touched_edge: false,
            edge_best: 0,
            width,
        };
    }

    let d = n as i64 - m as i64;
    let lo = 0i64.min(d) - width as i64;
    let hi = 0i64.max(d) + width as i64;

    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    // Row 0 boundary: H = 0 everywhere (fresh starts), F = −∞.
    let mut h_row = vec![0 as Score; n + 1];
    let mut f_row = vec![NEG_INF; n + 1];
    let mut best = BestCell::ZERO;
    let mut edge_best: Score = 0;
    let mut cells: u128 = 0;

    for i in 1..=m {
        let j_lo = (i as i64 + lo).max(1);
        let j_hi = (i as i64 + hi).min(n as i64);
        if j_lo > n as i64 {
            break;
        }
        if j_hi < 1 {
            continue;
        }
        let (j_lo, j_hi) = (j_lo as usize, j_hi as usize);

        // The band's right edge advanced: the cell at j_hi was outside the
        // band on row i−1, so its stale H/F must read as out-of-band…
        // except on row 1, where row 0 is the true all-zero boundary.
        if i > 1 && (j_hi as i64) == i as i64 + hi {
            h_row[j_hi] = NEG_INF;
            f_row[j_hi] = NEG_INF;
        }

        // Left-of-band seed values. When the band reaches column 0, the
        // matrix boundary (H = 0) applies; otherwise the cell left of the
        // band is out of band ⇒ −∞. The diagonal seed at `j_lo − 1` was
        // the leftmost in-band cell of row i−1, still intact in `h_row`.
        let mut h_diag = if j_lo == 1 { 0 } else { h_row[j_lo - 1] };
        let mut h_left = if j_lo == 1 { 0 } else { NEG_INF };
        let mut e = NEG_INF;

        for j in j_lo..=j_hi {
            let h_up = h_row[j];
            let f = (f_row[j] - ext).max(h_up - open_ext);
            e = (e - ext).max(h_left - open_ext);
            let h = (h_diag + scheme.substitution(a[i - 1], b[j - 1]))
                .max(e)
                .max(f)
                .max(0);
            if h > best.score {
                best.consider(h, i, j);
            }
            h_diag = h_up;
            h_left = h;
            h_row[j] = h;
            f_row[j] = f;
        }
        cells += (j_hi - j_lo + 1) as u128;

        // Boundary cells clipped by the *band* (not the matrix edge): a
        // positive score here belongs to a path that widening could extend.
        if j_lo as i64 == i as i64 + lo {
            edge_best = edge_best.max(h_row[j_lo]);
        }
        if j_hi as i64 == i as i64 + hi {
            edge_best = edge_best.max(h_row[j_hi]);
        }
    }

    let touched_edge = if best.score > 0 {
        let diag = best.j as i64 - best.i as i64;
        diag <= lo + 1 || diag >= hi - 1
    } else {
        false
    };

    BandedResult {
        best,
        cells_computed: cells,
        touched_edge,
        edge_best,
        width,
    }
}

/// Double the band until the result is stable across **two consecutive
/// doublings** with no sign of band limitation. Returns the converged
/// result.
///
/// Two signals force another doubling (see [`BandedResult::band_limited`]):
/// the best endpoint sits on the band edge, or a boundary cell carries a
/// score comparable to the best — the latter catches optimal paths whose
/// *middle* dips outside the band (e.g. across a segmental insertion)
/// while both endpoints stay interior. Requiring two stable doublings on
/// top defends against score plateaus. The criterion remains a heuristic —
/// only a band covering all `m + n` diagonals is a proof — but it converges
/// on every divergence model this workspace generates (asserted by the
/// property tests).
/// The doubling scan backing [`crate::kernel::Kernel::banded_adaptive`].
pub(crate) fn banded_adaptive_impl(
    a: &[u8],
    b: &[u8],
    scheme: &ScoreScheme,
    initial_width: usize,
) -> BandedResult {
    let mut width = initial_width.max(1);
    let mut result = banded_best_impl(a, b, scheme, width);
    let mut stable = 0usize;
    loop {
        // A band this wide covers every diagonal: nothing left to widen.
        if width >= a.len() + b.len() {
            return result;
        }
        let wider = banded_best_impl(a, b, scheme, width * 2);
        if wider.best == result.best && !result.band_limited() && !wider.band_limited() {
            stable += 1;
            if stable >= 2 {
                return result;
            }
        } else {
            stable = 0;
        }
        width *= 2;
        result = wider;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotoh::rolling_best;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    #[test]
    fn full_width_band_equals_unbanded() {
        let scheme = ScoreScheme::cudalign();
        for seed in 0..5 {
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(150, seed)).generate();
            let b = ChromosomeGenerator::new(GenerateConfig::uniform(130, seed + 9)).generate();
            let banded = banded_best_impl(a.codes(), b.codes(), &scheme, a.len() + b.len());
            assert_eq!(
                banded.best,
                rolling_best(a.codes(), b.codes(), &scheme),
                "seed {seed}"
            );
            assert!(!banded.touched_edge);
        }
    }

    #[test]
    fn banded_score_is_a_lower_bound_and_monotone_in_width() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(300, 3)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(300, 4)).generate();
        let full = rolling_best(a.codes(), b.codes(), &scheme);
        let mut prev = 0;
        for w in [1usize, 4, 16, 64, 256, 1024] {
            let r = banded_best_impl(a.codes(), b.codes(), &scheme, w);
            assert!(r.best.score <= full.score, "w = {w}");
            assert!(r.best.score >= prev, "w = {w}: lost score when widening");
            prev = r.best.score;
        }
    }

    #[test]
    fn narrow_band_suffices_for_snp_only_pairs() {
        // No indels ⇒ the optimal path sits on the main diagonal.
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(5_000, 7)).generate();
        let (b, _) = DivergenceModel::snp_only(8, 0.02).apply(&a);
        let full = rolling_best(a.codes(), b.codes(), &scheme);
        let banded = banded_best_impl(a.codes(), b.codes(), &scheme, 4);
        assert_eq!(banded.best, full);
        // The banded scan touched a tiny fraction of the matrix.
        assert!(banded.cells_computed < (a.len() as u128) * 12);
    }

    #[test]
    fn band_covers_length_difference() {
        // Very different lengths: the corridor is wide but the band must
        // still cover end-to-end paths.
        let scheme = ScoreScheme::lenient();
        let a = codes("ACGTACGTACGT");
        let mut long = codes("TTTTTT");
        long.extend_from_slice(&codes("ACGTACGTACGT"));
        long.extend_from_slice(&codes("GGGG"));
        let full = rolling_best(&a, &long, &scheme);
        let banded = banded_best_impl(&a, &long, &scheme, 2);
        // d = 10 diagonals are inside the band by construction.
        assert_eq!(banded.best, full);
    }

    #[test]
    fn adaptive_converges_to_full_on_indel_pairs() {
        let scheme = ScoreScheme::cudalign();
        for seed in 0..4 {
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(2_000, seed)).generate();
            let (b, _) = DivergenceModel::test_scale(seed + 40).apply(&a);
            let full = rolling_best(a.codes(), b.codes(), &scheme);
            let adaptive = banded_adaptive_impl(a.codes(), b.codes(), &scheme, 8);
            assert_eq!(adaptive.best, full, "seed {seed}");
        }
    }

    #[test]
    fn edge_touch_detected_when_band_clips() {
        // Optimal path needs a long horizontal run; a 1-wide band clips it.
        let scheme = ScoreScheme::lenient();
        let a = codes("AAAACCCC");
        let b = codes("AAAATTTTTTTTTTCCCC"); // needs a 10-gap
        let full = rolling_best(&a, &b, &scheme);
        let narrow = banded_best_impl(&a, &b, &scheme, 1);
        assert!(narrow.best.score <= full.score);
        let adaptive = banded_adaptive_impl(&a, &b, &scheme, 1);
        assert_eq!(adaptive.best, full);
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoreScheme::cudalign();
        let r = banded_best_impl(&[], &codes("ACGT"), &scheme, 5);
        assert_eq!(r.best, BestCell::ZERO);
        assert_eq!(r.cells_computed, 0);
    }

    #[test]
    fn cells_computed_bounded_by_band_area() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(1_000, 1)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(1_100, 2)).generate();
        let w = 16usize;
        let r = banded_best_impl(a.codes(), b.codes(), &scheme, w);
        // Band width per row ≤ (hi − lo + 1) = d + 2w + 1.
        let d = b.len() - a.len();
        let per_row = (d + 2 * w + 1) as u128;
        assert!(r.cells_computed <= per_row * a.len() as u128);
    }
}
