//! Property-based tests for the schedule engine and timing models:
//! causality, FIFO serialization, determinism and conservation laws.

use megasw_gpusim::{
    catalog, DeviceSpec, KernelModel, LinkSpec, Schedule, SimTime, SpanKind, TaskId,
};
use proptest::prelude::*;

/// A random DAG workload: tasks assigned round-robin to resources, each
/// depending on a random subset of earlier tasks.
#[derive(Debug, Clone)]
struct Workload {
    resources: usize,
    // (resource, duration_ns, dep_indices as offsets into earlier tasks)
    tasks: Vec<(usize, u64, Vec<usize>)>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (1usize..5, 0usize..60).prop_flat_map(|(resources, n_tasks)| {
        let task = move |idx: usize| {
            (
                0..resources,
                1u64..10_000,
                prop::collection::vec(0..idx.max(1), 0..3),
            )
        };
        let mut strat: Vec<_> = Vec::new();
        for i in 0..n_tasks {
            strat.push(task(i));
        }
        strat.prop_map(move |tasks| Workload { resources, tasks })
    })
}

fn build(w: &Workload) -> (Schedule, Vec<TaskId>) {
    let mut s = Schedule::new();
    let res: Vec<_> = (0..w.resources)
        .map(|i| s.add_resource(format!("r{i}")))
        .collect();
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, (r, dur, deps)) in w.tasks.iter().enumerate() {
        let dep_ids: Vec<TaskId> = if i == 0 {
            Vec::new()
        } else {
            deps.iter().map(|&d| ids[d % i]).collect()
        };
        let id = s.add_task(
            res[*r],
            &dep_ids,
            SimTime::from_nanos(*dur),
            SpanKind::Other,
            i as u64,
        );
        ids.push(id);
    }
    (s, ids)
}

proptest! {
    #[test]
    fn causality_deps_finish_before_start(w in workload()) {
        let (s, ids) = build(&w);
        for (i, (_, _, deps)) in w.tasks.iter().enumerate() {
            for &d in deps {
                if i > 0 {
                    let dep = ids[d % i];
                    prop_assert!(s.finish_of(dep) <= s.start_of(ids[i]));
                }
            }
        }
    }

    #[test]
    fn fifo_resources_never_overlap(w in workload()) {
        let (s, ids) = build(&w);
        // Spans on one resource are disjoint and in insertion order.
        for r in 0..w.resources {
            let mut last_finish = SimTime::ZERO;
            for (i, (tr, _, _)) in w.tasks.iter().enumerate() {
                if *tr == r {
                    prop_assert!(s.start_of(ids[i]) >= last_finish);
                    last_finish = s.finish_of(ids[i]);
                }
            }
        }
    }

    #[test]
    fn makespan_and_busy_conservation(w in workload()) {
        let (s, ids) = build(&w);
        let max_finish = ids
            .iter()
            .map(|&t| s.finish_of(t))
            .fold(SimTime::ZERO, SimTime::max);
        prop_assert_eq!(s.makespan(), max_finish);
        // Busy time per resource = sum of its durations; utilization ≤ 1.
        for r in 0..w.resources {
            let rid = s.resource_list()[r].0;
            let total: u64 = w
                .tasks
                .iter()
                .filter(|(tr, _, _)| *tr == r)
                .map(|(_, d, _)| *d)
                .sum();
            prop_assert_eq!(s.busy_of(rid), SimTime::from_nanos(total));
            prop_assert!(s.utilization(rid) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn replay_determinism(w in workload()) {
        let (s1, _) = build(&w);
        let (s2, _) = build(&w);
        prop_assert_eq!(s1.makespan(), s2.makespan());
        prop_assert_eq!(s1.spans(), s2.spans());
    }

    #[test]
    fn durations_add_up_in_spans(w in workload()) {
        let (s, _) = build(&w);
        let span_total: u64 = s.spans().iter().map(|sp| sp.duration().as_nanos()).sum();
        let task_total: u64 = w.tasks.iter().map(|(_, d, _)| *d).sum();
        prop_assert_eq!(span_total, task_total);
    }

    #[test]
    fn link_transfer_time_is_monotone(
        bytes1 in 0u64..100_000_000,
        bytes2 in 0u64..100_000_000,
        lat in 0u64..100_000,
        bw_mbps in 1u32..100_000,
    ) {
        let link = LinkSpec {
            latency_ns: lat,
            bandwidth_bytes_per_sec: bw_mbps as f64 * 1e6,
        };
        let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        prop_assert!(link.transfer_time(lo) >= SimTime::from_nanos(lat));
    }

    #[test]
    fn kernel_time_monotone_in_cells_and_antitone_in_blocks(
        cells1 in 0u64..10_000_000_000,
        cells2 in 0u64..10_000_000_000,
        blocks in 1u32..64,
    ) {
        let model = KernelModel::new(catalog::gtx680());
        let (lo, hi) = if cells1 <= cells2 { (cells1, cells2) } else { (cells2, cells1) };
        prop_assert!(model.launch_time(blocks, lo) <= model.launch_time(blocks, hi));
        // More blocks never slow a launch down.
        prop_assert!(model.launch_time(blocks + 1, hi) <= model.launch_time(blocks, hi));
    }

    #[test]
    fn peak_gcups_scales_with_sms(sms in 1u32..64, clock in 100u32..2_000) {
        let base = DeviceSpec {
            name: "x".into(),
            sms,
            clock_mhz: clock,
            cells_per_cycle_per_sm: 3.0,
            mem_mib: 1024,
            link: LinkSpec::pcie2_x16(),
            launch_overhead_ns: 0,
        };
        let double = DeviceSpec { sms: sms * 2, ..base.clone() };
        prop_assert!((double.peak_gcups() / base.peak_gcups() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simtime_arithmetic_laws(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let x = SimTime::from_nanos(a);
        let y = SimTime::from_nanos(b);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y).saturating_sub(y), x);
        prop_assert_eq!(x.max(y), y.max(x));
    }
}
