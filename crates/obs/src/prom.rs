//! Machine-readable metric exposition: Prometheus text format and JSON.
//!
//! The CLI's `--metrics-format prom|json` flags render a
//! [`MetricsRegistry`] through these writers instead of the human summary.
//! The Prometheus output follows the text exposition format version 0.0.4:
//! counters become `megasw_<name>` counters, histograms become summaries
//! with `quantile` labels plus `_sum`/`_count` series — scrapeable by an
//! actual Prometheus if the text is served over HTTP, and diffable as a
//! stable artifact either way. Everything is emitted in sorted name order,
//! so two runs of the same workload produce line-comparable documents.

use crate::json::escape;
use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// Turn a dotted metric name into a Prometheus-legal one:
/// `ring.pop_wait_ns` → `megasw_ring_pop_wait_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("megasw_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a finite `f64` the way Prometheus expects (no exponent games
/// needed for our value ranges; integers stay integral).
fn prom_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Prometheus text exposition of the registry.
pub fn prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in metrics.histograms() {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} summary");
        for (label, q) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
            let _ = writeln!(out, "{p}{{quantile=\"{label}\"}} {}", prom_value(q));
        }
        let _ = writeln!(out, "{p}_sum {}", prom_value(h.sum));
        let _ = writeln!(out, "{p}_count {}", h.count);
    }
    out
}

/// JSON exposition of the registry: one object with `counters` and
/// `histograms` members, histogram values carrying count/sum/min/max and
/// the three standard quantiles.
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in metrics.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {value}", escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for (name, h) in metrics.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            escape(name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            json_num(h.p50()),
            json_num(h.p90()),
            json_num(h.p99()),
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// JSON has no NaN/Infinity literals; a histogram can only hold finite
/// statistics (non-finite observations are rejected), but an *empty* one
/// reports min/max of 0.0 via Default, which is already finite. Guard
/// anyway so the writer can never emit an unparseable document.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.incr("cells.total", 100);
        m.incr("ring.pushed", 7);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("span.kernel.duration_ns", v);
        }
        m
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample());
        assert!(text.contains("# TYPE megasw_cells_total counter"));
        assert!(text.contains("megasw_cells_total 100"));
        assert!(text.contains("# TYPE megasw_span_kernel_duration_ns summary"));
        assert!(text.contains("megasw_span_kernel_duration_ns{quantile=\"0.5\"}"));
        assert!(text.contains("megasw_span_kernel_duration_ns_sum 10"));
        assert!(text.contains("megasw_span_kernel_duration_ns_count 4"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(parts.next().unwrap().starts_with("megasw_"), "{line:?}");
        }
    }

    #[test]
    fn json_exposition_parses_and_roundtrips_values() {
        let doc = metrics_json(&sample());
        let v = json::parse(&doc).expect("writer must emit valid JSON");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("cells.total")
                .unwrap()
                .as_f64(),
            Some(100.0)
        );
        let h = v
            .get("histograms")
            .unwrap()
            .get("span.kernel.duration_ns")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(h.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("max").unwrap().as_f64(), Some(4.0));
        assert!(h.get("p50").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn empty_registry_is_still_valid_output() {
        let m = MetricsRegistry::new();
        assert!(prometheus(&m).is_empty());
        assert!(json::parse(&metrics_json(&m)).is_ok());
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("ring.d0.max-occ"), "megasw_ring_d0_max_occ");
    }
}
