#!/usr/bin/env bash
# Offline CI gate for the megasw workspace: release build, full test
# suite, a warning-free clippy pass, formatting, and a bench-artifact
# smoke pipeline. No network access required — the workspace has zero
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Pruning conformance: distributed block pruning must stay bit-identical
# to the unpruned reference on every geometry, survive recovery, and keep
# the live watermark monotone and below the true best.
cargo test -q -p megasw --test integration_conformance -- \
    pruned_threaded_pipeline_stays_bit_identical_on_every_combo \
    pruned_recovery_after_fault_stays_bit_identical \
    pruned_des_mirror_is_structurally_sound \
    watermark_is_monotone_and_never_exceeds_the_true_best

# Rebalance conformance: checkpoint-boundary dynamic repartitioning must
# stay bit-identical to the static reference — alone, crossed with
# distributed pruning, and crossed with fault recovery — on both backends.
cargo test -q -p megasw --test integration_conformance -- \
    rebalanced_threaded_pipeline_stays_bit_identical_on_sampled_combos \
    rebalanced_recovery_after_fault_stays_bit_identical \
    rebalanced_des_mirror_is_structurally_sound

# Kernel-dispatch conformance: the full matrix under the default Auto
# dispatch ran as part of the workspace suite above; re-run the pipeline
# rows with the SIMD engines disabled via the env override, then the
# dispatch-axis tests that force every engine the host supports. Every
# engine must be bit-identical — a SIMD bug must fail here, not ship.
MEGASW_KERNEL=scalar cargo test -q -p megasw --test integration_conformance -- \
    threaded_pipeline_matches_reference_on_every_combo \
    pruned_threaded_pipeline_stays_bit_identical_on_every_combo
cargo test -q -p megasw --test integration_conformance -- \
    every_dispatch_mode_is_bit_identical_on_sampled_combos \
    every_dispatch_mode_survives_fault_recovery_bit_identically \
    forced_scalar_equals_auto_on_random_megabase_windows

# Chaos suite: deterministic seeded fault schedules through both backends
# (bit-identity under recovery, auto-shrunk repros on failure), plus an
# explicit replay of one pinned scenario through the env-var repro path so
# the one-line reproduction mechanism itself stays wired.
cargo test -q -p megasw --test chaos_recovery
MEGASW_CHAOS_REPRO='len=2000 seed=7 block=32 cap=2 ckpt=4 max=1 faults=1:10:ring-push' \
    cargo test -q -p megasw --test chaos_recovery repro_from_env

# Batch conformance: a 100+-pair mixed-size batch must stay bit-identical
# to pair-at-a-time solo runs on both backends, across dispatch × pruning
# × recovery combos, with exact bin tiling under seeded shuffles. The
# headline identity test re-runs with SIMD disabled so batch routing can
# never paper over an engine divergence.
cargo test -q -p megasw --test batch_conformance
MEGASW_KERNEL=scalar cargo test -q -p megasw --test batch_conformance -- \
    batch_of_100_mixed_pairs_is_bit_identical_to_solo_runs

# Batch chaos: seeded device-loss schedules against whole-pair and slab
# routes (auto-shrunk repros on failure), plus a pinned replay through the
# MEGASW_CHAOS_REPRO path so the batch one-liner stays wired too.
cargo test -q -p megasw --test chaos_batch
MEGASW_CHAOS_REPRO='pairs=10 seed=11 block=32 ckpt=4 thr=90000 bins=3 max=2 faults=2@0:1:compute,6@0:0:ring-push' \
    cargo test -q -p megasw --test chaos_batch repro_from_env

# Perf-regression artifact smoke: produce a 1-sample artifact, check it
# parses against the schema, and shape-check it against the committed
# baseline (absolute GCUPS are host-dependent, so CI compares shapes
# only). Also prove bench-diff's exit-code contract both ways: zero on
# self-compare, nonzero on the synthetic-regression fixture.
MEGASW_BENCH_SAMPLES=1 ./target/release/bench-artifact BENCH_ci.json
./target/release/bench-diff BENCH_ci.json BENCH_ci.json
./target/release/bench-diff --shape-only \
    crates/bench/fixtures/BENCH_baseline.json BENCH_ci.json
rc=0
./target/release/bench-diff \
    crates/bench/fixtures/BENCH_baseline.json \
    crates/bench/fixtures/BENCH_regressed.json || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "ci: FAIL — bench-diff exit $rc on regressed fixture (want 1)" >&2
    exit 1
fi
# Schema v8 carries recovery, pruning, rebalance, kernel-dispatch,
# per-phase stall-attribution, many-pair batch AND resident-service
# accounting in every experiment; the recovery anchor must report an
# actual recovery, the pruning anchor a nonzero pruned tile count, the
# rebalance anchor at least one applied migration, the batch anchor a
# nonzero pair count, the service anchor its full 22-job stream, and
# every experiment a nonzero compute attribution.
grep -q '"schema_version": 8' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json is not schema v8" >&2
    exit 1
}
grep -q '"attribution": {"compute": [1-9]' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks per-phase stall attribution" >&2
    exit 1
}
grep -q '"kernel": {"dispatch": "auto", "resolved": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks kernel dispatch fields" >&2
    exit 1
}
grep -q '"recovery": {"recoveries": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks recovery metrics fields" >&2
    exit 1
}
grep -q '"name": "recover.env2.3gpu".*"recovery": {"recoveries": 1' BENCH_ci.json || {
    echo "ci: FAIL — recovery anchor experiment did not record a recovery" >&2
    exit 1
}
grep -q '"pruning": {"tiles_pruned": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks pruning metrics fields" >&2
    exit 1
}
grep -q '"name": "prune.env2.3gpu".*"pruning": {"tiles_pruned": [1-9]' BENCH_ci.json || {
    echo "ci: FAIL — pruning anchor experiment pruned no tiles" >&2
    exit 1
}
grep -q '"rebalance": {"migrations": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks rebalance metrics fields" >&2
    exit 1
}
grep -q '"name": "rebalance.env2.3gpu".*"rebalance": {"migrations": [1-9]' BENCH_ci.json || {
    echo "ci: FAIL — rebalance anchor experiment applied no migration" >&2
    exit 1
}
grep -q '"batch": {"pairs": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks batch metrics fields" >&2
    exit 1
}
grep -q '"name": "batch.env2.3gpu".*"batch": {"pairs": [1-9]' BENCH_ci.json || {
    echo "ci: FAIL — batch anchor experiment ran no pairs" >&2
    exit 1
}
grep -q '"service": {"jobs": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks service metrics fields" >&2
    exit 1
}
grep -q '"name": "service.env2.3gpu".*"service": {"jobs": 22' BENCH_ci.json || {
    echo "ci: FAIL — service anchor experiment did not drain its 22-job stream" >&2
    exit 1
}
# Drifting-clock rebalance floor: the anchor is a deterministic DES run
# (host-independent), where the Titan halves its clock mid-matrix. Static
# slabs deliver ~95 simulated GCUPS on that drift; the controller's
# migrations recover it to ~118. The 110 floor fails loudly if the
# rebalance protocol stops moving columns (or moves them wrongly) while
# staying clear of legitimate model adjustments.
./target/release/bench-diff --shape-only \
    --min-gcups rebalance.env2.3gpu=110 \
    crates/bench/fixtures/BENCH_baseline.json BENCH_ci.json
# SIMD throughput floor, only where the wide engine exists. The anchor
# runs ~2 GCUPS with AVX2 on a quiet host vs ~0.19 scalar; the floor is
# derated to 0.8 because shared CI hosts throttle by up to ~2×, while
# still sitting ~4× above anything the scalar engine can reach — a
# dispatch regression (silently losing the SIMD path) fails loudly.
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    ./target/release/bench-diff --shape-only \
        --min-gcups pipeline.env1.2gpu=0.8 \
        crates/bench/fixtures/BENCH_baseline.json BENCH_ci.json
fi
rm -f BENCH_ci.json

# Live-metrics smoke: stand up the std-only HTTP endpoint on an ephemeral
# port with runs looping in the background, then scrape /health and
# /metrics mid-run with the std TcpStream client, which validates the
# Prometheus exposition (conformance helper) before exiting zero. A fixed
# localhost port keeps the test hermetic; 9187 is outside the range
# anything else in CI binds.
./target/release/megasw serve-metrics --metrics-addr 127.0.0.1:9187 \
    --length 120000 --env2 --runs 1000 >/dev/null 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
./target/release/megasw-metrics-scrape 127.0.0.1:9187 --retries 40 || {
    echo "ci: FAIL — could not scrape /metrics from a live run" >&2
    exit 1
}
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT

# Resident-service smoke: stand up `megasw serve` on a fixed port (9188,
# outside anything else CI binds), submit one pair and a 20-pair batch
# over HTTP with `megasw submit`, and diff every score against solo
# `megasw compare` / `megasw batch` runs of the same inputs — the service
# must be a transport, never a different answer. Finish by scraping the
# per-job SLO counters off /metrics.
./target/release/megasw generate --length 20000 --seed 23 \
    --out-human /tmp/ci_sva.fa --out-chimp /tmp/ci_svb.fa >/dev/null
rm -f /tmp/ci_sba.fa /tmp/ci_sbb.fa
for i in $(seq 0 19); do
    ./target/release/megasw generate --length $((1500 + 37 * i)) \
        --seed $((100 + i)) \
        --out-human /tmp/ci_bh.fa --out-chimp /tmp/ci_bc.fa >/dev/null
    cat /tmp/ci_bh.fa >>/tmp/ci_sba.fa
    cat /tmp/ci_bc.fa >>/tmp/ci_sbb.fa
done
./target/release/megasw serve --addr 127.0.0.1:9188 --env2 >/dev/null 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
./target/release/megasw-metrics-scrape 127.0.0.1:9188 --retries 40 || {
    echo "ci: FAIL — resident service never became scrapeable" >&2
    exit 1
}
solo_score=$(./target/release/megasw compare /tmp/ci_sva.fa /tmp/ci_svb.fa \
    --env2 | awk '/^best score/{print $3}')
svc_score=$(./target/release/megasw submit --addr 127.0.0.1:9188 \
    /tmp/ci_sva.fa /tmp/ci_svb.fa | awk '/done: best/{print $5}')
if [ -z "$solo_score" ] || [ "$svc_score" != "$solo_score" ]; then
    echo "ci: FAIL — served score '$svc_score' != solo score '$solo_score'" >&2
    exit 1
fi
./target/release/megasw batch /tmp/ci_sba.fa /tmp/ci_sbb.fa --env2 --scores \
    | awk '$1=="pair"{for(i=1;i<NF;i++) if($i=="score") print $2, $(i+1)}' \
    >/tmp/ci_solo_scores.txt
./target/release/megasw submit --addr 127.0.0.1:9188 \
    --batch /tmp/ci_sba.fa /tmp/ci_sbb.fa --scores \
    | awk '$1=="pair"{for(i=1;i<NF;i++) if($i=="score") print $2, $(i+1)}' \
    >/tmp/ci_svc_scores.txt
if [ "$(wc -l </tmp/ci_solo_scores.txt)" -ne 20 ]; then
    echo "ci: FAIL — solo batch did not report 20 per-pair scores" >&2
    exit 1
fi
diff /tmp/ci_solo_scores.txt /tmp/ci_svc_scores.txt || {
    echo "ci: FAIL — served batch scores diverge from the solo batch run" >&2
    exit 1
}
exec 3<>/dev/tcp/127.0.0.1/9188
printf 'GET /metrics HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
metrics_body=$(cat <&3)
exec 3<&- 3>&-
echo "$metrics_body" | grep -q '^megasw_service_jobs_completed 2$' || {
    echo "ci: FAIL — /metrics does not report 2 completed service jobs" >&2
    exit 1
}
echo "$metrics_body" | grep -q '^megasw_service_job_latency_p99_ms ' || {
    echo "ci: FAIL — /metrics lacks the per-job p99 latency SLO" >&2
    exit 1
}
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT
rm -f /tmp/ci_sva.fa /tmp/ci_svb.fa /tmp/ci_sba.fa /tmp/ci_sbb.fa \
    /tmp/ci_bh.fa /tmp/ci_bc.fa /tmp/ci_solo_scores.txt /tmp/ci_svc_scores.txt

# Flight-recorder smoke: a faulted compare must leave a JSONL black box
# with the fault event on the failed device's lane.
./target/release/megasw generate --length 60000 --seed 11 \
    --out-human /tmp/ci_h.fa --out-chimp /tmp/ci_c.fa >/dev/null
rc=0
./target/release/megasw compare /tmp/ci_h.fa /tmp/ci_c.fa --env1 \
    --fault 1:2 --flight-dump /tmp/ci_flight.jsonl >/dev/null 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
    echo "ci: FAIL — faulted compare exited zero" >&2
    exit 1
fi
grep -q '"kind": "fault", "device": 1' /tmp/ci_flight.jsonl || {
    echo "ci: FAIL — flight dump lacks the injected fault event" >&2
    exit 1
}
rm -f /tmp/ci_h.fa /tmp/ci_c.fa /tmp/ci_flight.jsonl

echo "ci: all gates passed"
