//! Run reports.

use crate::circbuf::RingStats;
use megasw_gpusim::SimTime;
use megasw_sw::BestCell;
use std::time::Duration;

/// Per-device section of a [`RunReport`].
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Index in the platform chain.
    pub device: usize,
    /// Board name.
    pub name: String,
    /// First matrix column of this device's slab (1-based).
    pub slab_j0: usize,
    /// Slab width in columns.
    pub slab_width: usize,
    /// DP cells this device computed.
    pub cells: u128,
    /// Bytes this device sent to its right-hand neighbour.
    pub bytes_sent: u64,
    /// Outgoing-ring statistics (None for the last device).
    pub ring_out: Option<RingStats>,
    /// Simulated busy time on the compute stream (None for wall-clock runs).
    pub sim_busy: Option<SimTime>,
    /// Simulated utilization: busy / makespan.
    pub sim_utilization: Option<f64>,
}

/// The result of one multi-GPU run (threaded, simulated, or both).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Best Smith-Waterman cell (score + end position), bit-identical to
    /// the sequential reference.
    pub best: BestCell,
    /// Total DP cells (`m · n`).
    pub total_cells: u128,
    /// Wall-clock duration of the threaded run (None for pure simulation).
    pub wall_time: Option<Duration>,
    /// Wall-clock GCUPS of the threaded run on this host's CPU.
    pub gcups_wall: Option<f64>,
    /// Simulated makespan (None for pure threaded runs).
    pub sim_time: Option<SimTime>,
    /// Simulated GCUPS — the paper-comparable number.
    pub gcups_sim: Option<f64>,
    /// Per-device details, in chain order.
    pub devices: Vec<DeviceReport>,
}

impl RunReport {
    /// GCUPS from a cell count and duration (0 for zero durations).
    pub fn gcups(cells: u128, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            cells as f64 / seconds / 1e9
        }
    }

    /// Pipeline efficiency versus an aggregate peak: `gcups_sim / peak`.
    pub fn sim_efficiency(&self, aggregate_peak_gcups: f64) -> Option<f64> {
        self.gcups_sim.map(|g| g / aggregate_peak_gcups)
    }

    /// Total bytes moved between devices.
    pub fn total_bytes_transferred(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_sent).sum()
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "best score {} at ({}, {}) over {} cells",
            self.best.score, self.best.i, self.best.j, self.total_cells
        )?;
        if let (Some(t), Some(g)) = (self.sim_time, self.gcups_sim) {
            writeln!(f, "  simulated: {t}  ({g:.2} GCUPS)")?;
        }
        if let (Some(t), Some(g)) = (self.wall_time, self.gcups_wall) {
            writeln!(f, "  wall:      {t:.3?}  ({g:.3} GCUPS on host CPU)")?;
        }
        for d in &self.devices {
            write!(
                f,
                "  gpu{} {:<22} cols {:>9}..{:<9} ({:>5.1}%)",
                d.device,
                d.name,
                d.slab_j0,
                d.slab_j0 + d.slab_width,
                100.0 * d.cells as f64 / self.total_cells.max(1) as f64
            )?;
            if let Some(u) = d.sim_utilization {
                write!(f, "  util {:>5.1}%", u * 100.0)?;
            }
            if let Some(rs) = &d.ring_out {
                write!(
                    f,
                    "  ring: {} sent, max occ {}, blocked {}p/{}c",
                    rs.pushed, rs.max_occupancy, rs.producer_blocks, rs.consumer_blocks
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        assert_eq!(RunReport::gcups(2_000_000_000, 2.0), 1.0);
        assert_eq!(RunReport::gcups(1_000, 0.0), 0.0);
    }

    fn report() -> RunReport {
        RunReport {
            best: BestCell::new(42, 7, 9),
            total_cells: 1_000_000,
            wall_time: Some(Duration::from_millis(10)),
            gcups_wall: Some(0.1),
            sim_time: Some(SimTime::from_millis(2)),
            gcups_sim: Some(0.5),
            devices: vec![DeviceReport {
                device: 0,
                name: "TestBoard".into(),
                slab_j0: 1,
                slab_width: 1_000,
                cells: 1_000_000,
                bytes_sent: 512,
                ring_out: Some(RingStats::default()),
                sim_busy: Some(SimTime::from_millis(1)),
                sim_utilization: Some(0.5),
            }],
        }
    }

    #[test]
    fn efficiency_and_totals() {
        let r = report();
        assert!((r.sim_efficiency(1.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(r.total_bytes_transferred(), 512);
    }

    #[test]
    fn display_contains_key_facts() {
        let text = report().to_string();
        assert!(text.contains("best score 42"));
        assert!(text.contains("GCUPS"));
        assert!(text.contains("TestBoard"));
    }
}
