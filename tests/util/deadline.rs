//! A shared watchdog for tests that must *terminate*, not merely pass.
//!
//! Deadlock regressions in the pipeline (a poisoned ring that fails to wake
//! a blocked neighbour, a recovery driver waiting on a dead worker) would
//! otherwise hang the whole suite until the harness-level timeout. Running
//! the suspect body on a watchdog thread turns "hung forever" into a
//! failing assertion with a useful label.
//!
//! Included via `#[path]` from the root integration tests and from
//! `crates/multigpu/tests/stress_pipeline.rs`, so keep it dependency-free.

use std::time::{Duration, Instant};

/// Run `f` on a fresh thread and panic with `label` if it has not finished
/// within `limit`. Returns `f`'s result; propagates `f`'s panics.
pub fn with_deadline<T, F>(label: &str, limit: Duration, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let handle = std::thread::spawn(f);
    let deadline = Instant::now() + limit;
    while !handle.is_finished() {
        assert!(
            Instant::now() < deadline,
            "{label}: did not terminate within {limit:?} (deadlock?)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    match handle.join() {
        Ok(v) => v,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}
