//! Per-run metrics: named counters and histograms.
//!
//! The registry is built once per run, after the workers have joined, from
//! the run report and the recorded spans — so it needs no interior locking.
//! Names are dotted paths (`ring.d0.max_occupancy`, `gcups.wall`), kept in
//! sorted order so rendered summaries are deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Streaming summary of a set of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Named counters + histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Record one observation into a histogram, creating it if absent.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name:<40} {value}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name:<40} n={} mean={:.3} min={:.3} max={:.3}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.incr("blocks", 3);
        m.incr("blocks", 4);
        assert_eq!(m.counter("blocks"), Some(7));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histogram_summary() {
        let mut m = MetricsRegistry::new();
        for v in [2.0, 4.0, 9.0] {
            m.observe("occupancy", v);
        }
        let h = m.histogram("occupancy").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 9.0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn display_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.observe("m.mid", 1.5);
        let text = m.to_string();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z);
        assert!(text.contains("mean=1.500"));
    }
}
