//! The circular buffer.
//!
//! This is the communication mechanism the paper's abstract calls out: each
//! GPU streams the border columns of its slab to its right-hand neighbour
//! through a bounded ring. The producer pushes one border segment per
//! block-row as soon as the row's last tile finishes; the consumer pops one
//! segment before starting each of its own block-rows. The ring's capacity
//! is what decouples the two devices:
//!
//! * capacity 1 behaves like a synchronous hand-off (the producer blocks
//!   until the consumer has taken the previous segment);
//! * larger capacities let the producer run ahead, so transfer latency and
//!   consumer hiccups hide behind the producer's own computation.
//!
//! The implementation is a mutex + condvar bounded deque rather than a
//! lock-free ring: border segments are kilobytes, pushed thousands — not
//! millions — of times per second, so correctness, blocking semantics and
//! **occupancy statistics** (which the buffer-sensitivity figure needs)
//! matter more than nanosecond enqueue latency. Poisoning mirrors what a
//! failed device must do so neighbours blocked on the ring wake up with an
//! error instead of deadlocking.
//!
//! Besides counting blocking events, the ring accumulates how *long* each
//! side spent blocked ([`RingStats::producer_wait`] /
//! [`RingStats::consumer_wait`]) — the raw material for the stall accounting
//! in [`crate::stats::StallBreakdown`] and the `RingPush`/`RingPopWait`
//! spans of the observability layer.

use megasw_obs::RingGauge;
use megasw_sw::border::ColBorder;
use megasw_sw::cell::Score;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The message the pipeline streams between neighbouring devices: one
/// column border plus the sender's **pruning watermark** piggybacked on it
/// (0 when pruning is off — see DESIGN.md §10).
///
/// Piggybacking keeps watermark propagation on the channel that already
/// exists per block-row, so distributed pruning adds no synchronization to
/// the hot path beyond one `i32` per border segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BorderMsg {
    /// The slab's right border for one block-row.
    pub border: ColBorder,
    /// The sender's best-score watermark at send time.
    pub watermark: Score,
}

/// Why a ring operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The other side poisoned the ring (its device failed).
    Poisoned,
    /// Push after `close()`.
    Closed,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Poisoned => write!(f, "ring poisoned: the peer device failed"),
            RingError::Closed => write!(f, "push on a closed ring"),
        }
    }
}

impl std::error::Error for RingError {}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    closed: bool,
    poisoned: bool,
    // Statistics.
    pushed: u64,
    popped: u64,
    max_occupancy: usize,
    producer_blocks: u64,
    consumer_blocks: u64,
    producer_wait: Duration,
    consumer_wait: Duration,
    /// Optional live-telemetry gauge mirroring the current occupancy.
    /// Updated while the ring lock is already held, so attaching one costs
    /// a single relaxed atomic store per push/pop.
    gauge: Option<RingGauge>,
}

impl<T> Inner<T> {
    fn publish_occupancy(&self) {
        if let Some(g) = &self.gauge {
            g.set(self.queue.len());
        }
    }
}

/// A bounded blocking SPSC ring carrying border segments between
/// neighbouring devices. Cloning the handle shares the ring.
///
/// ```
/// use megasw_multigpu::circbuf::CircularBuffer;
///
/// let ring = CircularBuffer::with_capacity(2);
/// let producer = {
///     let ring = ring.clone();
///     std::thread::spawn(move || {
///         for i in 0..100u32 {
///             ring.push(i).unwrap();
///         }
///         ring.close();
///     })
/// };
/// let mut received = 0u32;
/// while let Some(v) = ring.pop().unwrap() {
///     assert_eq!(v, received);
///     received += 1;
/// }
/// producer.join().unwrap();
/// assert_eq!(received, 100);
/// assert!(ring.stats().max_occupancy <= 2);
/// ```
#[derive(Debug)]
pub struct CircularBuffer<T> {
    inner: Arc<(Mutex<Inner<T>>, Condvar, Condvar)>,
}

impl<T> Clone for CircularBuffer<T> {
    fn clone(&self) -> Self {
        CircularBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Snapshot of ring statistics, taken after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Segments pushed over the ring's lifetime.
    pub pushed: u64,
    /// Segments popped.
    pub popped: u64,
    /// Highest occupancy ever observed.
    pub max_occupancy: usize,
    /// Times the producer found the ring full and had to wait.
    pub producer_blocks: u64,
    /// Times the consumer found the ring empty and had to wait.
    pub consumer_blocks: u64,
    /// Total wall-clock time the producer spent blocked on a full ring.
    pub producer_wait: Duration,
    /// Total wall-clock time the consumer spent blocked on an empty ring.
    pub consumer_wait: Duration,
}

impl<T> CircularBuffer<T> {
    /// Create a ring with the given capacity (≥ 1).
    pub fn with_capacity(capacity: usize) -> CircularBuffer<T> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        CircularBuffer {
            inner: Arc::new((
                Mutex::new(Inner {
                    queue: VecDeque::with_capacity(capacity),
                    capacity,
                    closed: false,
                    poisoned: false,
                    pushed: 0,
                    popped: 0,
                    max_occupancy: 0,
                    producer_blocks: 0,
                    consumer_blocks: 0,
                    producer_wait: Duration::ZERO,
                    consumer_wait: Duration::ZERO,
                    gauge: None,
                }),
                Condvar::new(), // not_full  — producer waits here
                Condvar::new(), // not_empty — consumer waits here
            )),
        }
    }

    /// Lock the ring state. A panicked peer is reported through the ring's
    /// own `poisoned` flag, so std mutex poisoning is deliberately ignored.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocking push. Waits while the ring is full.
    pub fn push(&self, item: T) -> Result<(), RingError> {
        let (_, not_full, not_empty) = &*self.inner;
        let mut g = self.lock();
        if g.queue.len() >= g.capacity && !g.poisoned {
            g.producer_blocks += 1;
            let blocked_at = Instant::now();
            while g.queue.len() >= g.capacity && !g.poisoned {
                g = not_full.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.producer_wait += blocked_at.elapsed();
        }
        if g.poisoned {
            return Err(RingError::Poisoned);
        }
        if g.closed {
            return Err(RingError::Closed);
        }
        g.queue.push_back(item);
        g.pushed += 1;
        let occ = g.queue.len();
        g.max_occupancy = g.max_occupancy.max(occ);
        g.publish_occupancy();
        not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Waits while the ring is empty; returns `Ok(None)` once
    /// the ring is closed **and** drained.
    pub fn pop(&self) -> Result<Option<T>, RingError> {
        let (_, not_full, not_empty) = &*self.inner;
        let mut g = self.lock();
        let mut blocked_at: Option<Instant> = None;
        if g.queue.is_empty() && !g.closed && !g.poisoned {
            g.consumer_blocks += 1;
            blocked_at = Some(Instant::now());
        }
        loop {
            if g.poisoned {
                if let Some(t) = blocked_at {
                    g.consumer_wait += t.elapsed();
                }
                return Err(RingError::Poisoned);
            }
            if let Some(item) = g.queue.pop_front() {
                g.popped += 1;
                if let Some(t) = blocked_at {
                    g.consumer_wait += t.elapsed();
                }
                g.publish_occupancy();
                not_full.notify_one();
                return Ok(Some(item));
            }
            if g.closed {
                if let Some(t) = blocked_at {
                    g.consumer_wait += t.elapsed();
                }
                return Ok(None);
            }
            g = not_empty.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Producer side is done: consumers drain the remaining items and then
    /// see `Ok(None)`.
    pub fn close(&self) {
        let (_, _nf, not_empty) = &*self.inner;
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        not_empty.notify_all();
    }

    /// Mark the ring failed; all blocked and future operations return
    /// [`RingError::Poisoned`].
    pub fn poison(&self) {
        let (_, not_full, not_empty) = &*self.inner;
        let mut g = self.lock();
        g.poisoned = true;
        drop(g);
        not_full.notify_all();
        not_empty.notify_all();
    }

    /// Current occupancy (racy; for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Is the ring currently empty? (racy; for tests/diagnostics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attach a live-telemetry occupancy gauge (see
    /// [`megasw_obs::LiveTelemetry::ring_gauge`]). The ring keeps the gauge
    /// at its current occupancy from inside its own lock, so the extra cost
    /// is one relaxed store per push/pop.
    pub fn attach_occupancy_gauge(&self, gauge: RingGauge) {
        let mut g = self.lock();
        g.gauge = Some(gauge);
        g.publish_occupancy();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RingStats {
        let g = self.lock();
        RingStats {
            pushed: g.pushed,
            popped: g.popped,
            max_occupancy: g.max_occupancy,
            producer_blocks: g.producer_blocks,
            consumer_blocks: g.consumer_blocks,
            producer_wait: g.producer_wait,
            consumer_wait: g.consumer_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let ring = CircularBuffer::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        ring.close();
        let mut got = Vec::new();
        while let Ok(Some(v)) = ring.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_then_pop_drains_then_none() {
        let ring = CircularBuffer::with_capacity(2);
        ring.push("a").unwrap();
        ring.close();
        assert_eq!(ring.pop().unwrap(), Some("a"));
        assert_eq!(ring.pop().unwrap(), None);
        assert_eq!(ring.pop().unwrap(), None);
    }

    #[test]
    fn push_after_close_rejected() {
        let ring = CircularBuffer::with_capacity(2);
        ring.close();
        assert_eq!(ring.push(1), Err(RingError::Closed));
    }

    #[test]
    fn errors_display_and_source() {
        let err: Box<dyn std::error::Error> = Box::new(RingError::Poisoned);
        assert!(err.to_string().contains("poisoned"));
        assert!(RingError::Closed.to_string().contains("closed"));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = CircularBuffer::<u32>::with_capacity(0);
    }

    #[test]
    fn producer_blocks_on_full_ring() {
        let ring = CircularBuffer::with_capacity(1);
        ring.push(0u32).unwrap();
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.push(1).unwrap())
        };
        // Give the producer time to block.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.pop().unwrap(), Some(0));
        producer.join().unwrap();
        assert_eq!(ring.pop().unwrap(), Some(1));
        let stats = ring.stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.popped, 2);
        assert!(stats.producer_blocks >= 1);
        assert!(stats.producer_wait > Duration::ZERO);
    }

    #[test]
    fn consumer_blocks_until_producer_pushes() {
        let ring: CircularBuffer<u32> = CircularBuffer::with_capacity(2);
        let consumer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.pop().unwrap())
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
        let stats = ring.stats();
        assert!(stats.consumer_blocks >= 1);
        assert!(stats.consumer_wait > Duration::ZERO);
    }

    #[test]
    fn unblocked_operations_accumulate_no_wait() {
        let ring = CircularBuffer::with_capacity(8);
        for i in 0..4u32 {
            ring.push(i).unwrap();
        }
        for _ in 0..4 {
            ring.pop().unwrap();
        }
        let stats = ring.stats();
        assert_eq!(stats.producer_blocks, 0);
        assert_eq!(stats.consumer_blocks, 0);
        assert_eq!(stats.producer_wait, Duration::ZERO);
        assert_eq!(stats.consumer_wait, Duration::ZERO);
    }

    #[test]
    fn poison_wakes_blocked_producer() {
        let ring = CircularBuffer::with_capacity(1);
        ring.push(0u32).unwrap();
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.push(1))
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.poison();
        assert_eq!(producer.join().unwrap(), Err(RingError::Poisoned));
    }

    #[test]
    fn poison_wakes_blocked_consumer() {
        let ring: CircularBuffer<u32> = CircularBuffer::with_capacity(1);
        let consumer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.poison();
        assert_eq!(consumer.join().unwrap(), Err(RingError::Poisoned));
    }

    #[test]
    fn stream_many_items_through_small_ring() {
        const N: u64 = 50_000;
        let ring = CircularBuffer::with_capacity(8);
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..N {
                    ring.push(i).unwrap();
                }
                ring.close();
            })
        };
        let mut expected = 0u64;
        while let Some(v) = ring.pop().unwrap() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
        let stats = ring.stats();
        assert_eq!(stats.pushed, N);
        assert_eq!(stats.popped, N);
        assert!(stats.max_occupancy <= 8);
    }

    #[test]
    fn occupancy_gauge_mirrors_ring_state() {
        use megasw_obs::LiveTelemetry;
        let live = LiveTelemetry::new(1, 100);
        let ring = CircularBuffer::with_capacity(4);
        ring.attach_occupancy_gauge(live.ring_gauge(0).unwrap());
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 0);
        ring.push(1u32).unwrap();
        ring.push(2).unwrap();
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 2);
        ring.pop().unwrap();
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 1);
        ring.pop().unwrap();
        assert_eq!(live.snapshot().devices[0].ring_occupancy, 0);
    }

    #[test]
    fn max_occupancy_tracks_high_water_mark() {
        let ring = CircularBuffer::with_capacity(16);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        ring.pop().unwrap();
        ring.push(9).unwrap();
        assert_eq!(ring.stats().max_occupancy, 5);
    }
}
