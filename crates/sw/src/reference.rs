//! Full-matrix Smith-Waterman with affine gaps (Gotoh recurrences).
//!
//! Quadratic memory, zero cleverness: this module exists so every other
//! kernel in the workspace has an oracle. It keeps the whole `H` matrix,
//! which also lets tests inspect arbitrary cells and borders.
//!
//! Recurrences (1-based `i`, `j`; row 0 / column 0 are the zero boundary):
//!
//! ```text
//! E[i][j] = max(E[i][j-1], H[i][j-1] − open) − extend      (gap consuming b)
//! F[i][j] = max(F[i-1][j], H[i-1][j] − open) − extend      (gap consuming a)
//! H[i][j] = max(0, H[i-1][j-1] + sub(a_i, b_j), E[i][j], F[i][j])
//! ```

use crate::cell::{BestCell, Score, NEG_INF};
use crate::scoring::ScoreScheme;

/// The full DP result: every `H` value plus the best cell.
#[derive(Debug, Clone)]
pub struct FullMatrix {
    /// Rows of the `H` matrix, `(m + 1) × (n + 1)`.
    pub h: Vec<Vec<Score>>,
    pub best: BestCell,
    pub m: usize,
    pub n: usize,
}

impl FullMatrix {
    /// `H[i][j]` with bounds checking.
    pub fn h_at(&self, i: usize, j: usize) -> Score {
        self.h[i][j]
    }

    /// The `H` values of row `i` over columns `j0-1 ..= j1-1` in the border
    /// convention of [`crate::border::RowBorder`] (index 0 = corner).
    pub fn row_border_h(&self, i: usize, j0: usize, j1: usize) -> Vec<Score> {
        (j0 - 1..j1).map(|j| self.h[i][j]).collect()
    }

    /// The `H` values of column `j` over rows `i0-1 ..= i1-1` in the border
    /// convention of [`crate::border::ColBorder`] (index 0 = corner).
    pub fn col_border_h(&self, j: usize, i0: usize, i1: usize) -> Vec<Score> {
        (i0 - 1..i1).map(|i| self.h[i][j]).collect()
    }
}

/// Compute the full Smith-Waterman matrix for code slices `a` (rows) and
/// `b` (columns).
///
/// Memory is `O(m·n)` — only use this for test-scale inputs.
pub fn full_matrix(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> FullMatrix {
    let m = a.len();
    let n = b.len();
    let mut h = vec![vec![0 as Score; n + 1]; m + 1];
    let mut e = vec![vec![NEG_INF; n + 1]; m + 1];
    let mut f = vec![vec![NEG_INF; n + 1]; m + 1];
    let mut best = BestCell::ZERO;

    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    for i in 1..=m {
        for j in 1..=n {
            let e_ij = (e[i][j - 1] - ext).max(h[i][j - 1] - open_ext);
            let f_ij = (f[i - 1][j] - ext).max(h[i - 1][j] - open_ext);
            let diag = h[i - 1][j - 1] + scheme.substitution(a[i - 1], b[j - 1]);
            let h_ij = 0.max(diag).max(e_ij).max(f_ij);
            e[i][j] = e_ij;
            f[i][j] = f_ij;
            h[i][j] = h_ij;
            best.consider(h_ij, i, j);
        }
    }

    FullMatrix { h, best, m, n }
}

/// Convenience: just the best cell.
pub fn reference_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    full_matrix(a, b, scheme).best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    #[test]
    fn empty_sequences_score_zero() {
        let s = ScoreScheme::cudalign();
        assert_eq!(reference_best(&[], &[], &s), BestCell::ZERO);
        assert_eq!(reference_best(&codes("ACGT"), &[], &s), BestCell::ZERO);
        assert_eq!(reference_best(&[], &codes("ACGT"), &s), BestCell::ZERO);
    }

    #[test]
    fn perfect_match_scores_length_times_match() {
        let s = ScoreScheme::cudalign();
        let a = codes("ACGTACGT");
        let best = reference_best(&a, &a, &s);
        assert_eq!(best.score, 8);
        assert_eq!((best.i, best.j), (8, 8));
    }

    #[test]
    fn single_base_match_and_mismatch() {
        let s = ScoreScheme::cudalign();
        assert_eq!(reference_best(&codes("A"), &codes("A"), &s).score, 1);
        assert_eq!(reference_best(&codes("A"), &codes("C"), &s).score, 0);
    }

    #[test]
    fn known_small_alignment_with_gap() {
        // a = ACGTT, b = ACTT: best local alignment under CUDAlign scoring.
        // Aligning ACGTT/AC-TT = 4 matches + gap(1) = 4 − 5 = −1 is worse
        // than the plain run "TT" (2) or "AC" (2)… DP decides; verify the
        // value against a hand-checked table.
        let s = ScoreScheme::cudalign();
        let best = reference_best(&codes("ACGTT"), &codes("ACTT"), &s);
        assert_eq!(best.score, 2);
    }

    #[test]
    fn gap_friendly_scheme_bridges_gap() {
        // With lenient scoring (match 2, mismatch −1, open 2, ext 1),
        // ACGTT vs ACTT scores 5 two ways: gapped AC-TT (4·2 − 3, ending at
        // (5,4)) and ungapped ACGT/ACTT (2+2−1+2, ending at (4,4)). The
        // deterministic tie-break picks the smaller end row.
        let s = ScoreScheme::lenient();
        let best = reference_best(&codes("ACGTT"), &codes("ACTT"), &s);
        assert_eq!(best.score, 5);
        assert_eq!((best.i, best.j), (4, 4));
    }

    #[test]
    fn n_bases_never_match() {
        let s = ScoreScheme::cudalign();
        let best = reference_best(&codes("NNNN"), &codes("NNNN"), &s);
        assert_eq!(best.score, 0);
    }

    #[test]
    fn score_never_negative_and_bounded() {
        let s = ScoreScheme::cudalign();
        let fm = full_matrix(&codes("ACGTGGC"), &codes("TTTACGA"), &s);
        for row in &fm.h {
            for &v in row {
                assert!(v >= 0);
                assert!(v <= s.max_possible(7, 7));
            }
        }
    }

    #[test]
    fn symmetric_in_sequence_swap() {
        // Swapping a and b transposes the matrix; the best score is equal.
        let s = ScoreScheme::cudalign();
        let a = codes("ACGTGGCATCG");
        let b = codes("GGTACGTTAC");
        let fwd = reference_best(&a, &b, &s);
        let rev = reference_best(&b, &a, &s);
        assert_eq!(fwd.score, rev.score);
    }

    #[test]
    fn local_alignment_ignores_leading_garbage() {
        let s = ScoreScheme::cudalign();
        // The shared block "ACGTACGT" should dominate regardless of prefix.
        let a = codes("TTTTTTTTACGTACGT");
        let b = codes("GGGGACGTACGT");
        let best = reference_best(&a, &b, &s);
        assert_eq!(best.score, 8);
        assert_eq!((best.i, best.j), (16, 12));
    }

    #[test]
    fn borders_extractable() {
        let s = ScoreScheme::cudalign();
        let fm = full_matrix(&codes("ACGT"), &codes("ACGT"), &s);
        let row = fm.row_border_h(2, 1, 5); // row 2, cols 0..=4 (corner + 4)
        assert_eq!(row.len(), 5);
        assert_eq!(row[0], fm.h_at(2, 0));
        assert_eq!(row[4], fm.h_at(2, 4));
        let col = fm.col_border_h(4, 1, 5);
        assert_eq!(col.len(), 5);
        assert_eq!(col[0], fm.h_at(0, 4));
        assert_eq!(col[4], fm.h_at(4, 4));
    }
}
