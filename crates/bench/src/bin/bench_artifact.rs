//! `bench-artifact` — run the regression-tracked benchmark set and write a
//! schema-versioned `BENCH_<n>.json` artifact.
//!
//! ```text
//! bench-artifact [OUT.json]          # default BENCH_1.json
//! MEGASW_BENCH_SAMPLES=1 bench-artifact BENCH_ci.json   # CI smoke run
//! ```
//!
//! The experiment set deliberately mirrors the paper's environments on
//! workloads small enough to finish in seconds: the threaded pipeline on
//! env1 and env2 (host-CPU GCUPS — noisy, threshold accordingly) plus the
//! deterministic discrete-event run of env2 (simulated GCUPS — bit-stable
//! across hosts, the anchor `bench-diff` can hold tight). Each experiment
//! carries its stall breakdown and span-duration quantiles, so a diff can
//! say not just "slower" but "slower because input stalls doubled".

use megasw::prelude::*;
use megasw_bench::artifact::{Artifact, Experiment};
use megasw_bench::{cached_pair, gcups};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let samples: u64 = std::env::var("MEGASW_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let mut artifact = Artifact::new(samples);
    let pair_len = 20_000;
    let (a, b) = cached_pair(pair_len, 11);
    let config = RunConfig::paper_default();

    for (name, platform) in [
        ("pipeline.env1.2gpu", Platform::env1()),
        ("pipeline.env2.3gpu", Platform::env2()),
    ] {
        eprintln!("running {name} ({samples} samples)…");
        artifact.experiments.push(run_pipeline_experiment(
            name,
            a.codes(),
            b.codes(),
            &platform,
            &config,
            samples,
        ));
    }

    eprintln!("running des.env2.3gpu…");
    artifact.experiments.push(run_des_experiment(
        "des.env2.3gpu",
        &Platform::env2(),
        &config,
    ));

    eprintln!("running recover.env2.3gpu…");
    artifact.experiments.push(run_recovery_experiment(
        "recover.env2.3gpu",
        &Platform::env2(),
        &config,
    ));

    eprintln!("running prune.env2.3gpu…");
    artifact.experiments.push(run_prune_experiment(
        "prune.env2.3gpu",
        &Platform::env2(),
        &config,
    ));

    eprintln!("running rebalance.env2.3gpu…");
    artifact.experiments.push(run_rebalance_experiment(
        "rebalance.env2.3gpu",
        &Platform::env2(),
        &config,
    ));

    eprintln!("running batch.env2.3gpu…");
    artifact.experiments.push(run_batch_experiment(
        "batch.env2.3gpu",
        &Platform::env2(),
        samples,
    ));

    eprintln!("running service.env2.3gpu…");
    artifact.experiments.push(run_service_experiment(
        "service.env2.3gpu",
        Platform::env2(),
    ));

    if let Err(e) = std::fs::write(&out, artifact.to_json()) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} experiments, {samples} samples each",
        artifact.experiments.len()
    );
    ExitCode::SUCCESS
}

/// Time the threaded pipeline `samples` times; attach the stall/span
/// metrics of one observed run.
fn run_pipeline_experiment(
    name: &str,
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    samples: u64,
) -> Experiment {
    let cells = (a.len() * b.len()) as u64;
    let mut rates: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            let report = PipelineRun::new(a, b, platform)
                .config(config.clone())
                .run()
                .expect("benchmark pipeline run failed");
            std::hint::black_box(report.best);
            gcups(u128::from(cells), t.elapsed().as_secs_f64())
        })
        .collect();
    rates.sort_by(|x, y| x.total_cmp(y));

    let obs = Recorder::new(ObsLevel::Full);
    let report = PipelineRun::new(a, b, platform)
        .config(config.clone())
        .observer(obs.clone())
        .run()
        .expect("observed benchmark pipeline run failed");
    Experiment {
        name: name.to_string(),
        cells,
        gcups_median: rates[rates.len() / 2],
        gcups_min: rates[0],
        gcups_max: rates[rates.len() - 1],
        ..Experiment::default()
    }
    .with_kernel(&report.kernel)
    .with_metrics(&report.metrics_with_spans(&obs.spans()))
}

/// The deterministic anchor: one simulated paper-scale run. Identical on
/// every host, so any delta here is a real behavioural change.
fn run_des_experiment(name: &str, platform: &Platform, config: &RunConfig) -> Experiment {
    let (m, n) = (1_000_000, 1_000_000);
    let obs = Recorder::new(ObsLevel::Full);
    let run = DesSim::new(m, n, platform)
        .config(config.clone())
        .observer(obs.clone())
        .run();
    let g = run.report.gcups_sim.unwrap_or(0.0);
    Experiment {
        name: name.to_string(),
        cells: (m * n) as u64,
        gcups_median: g,
        gcups_min: g,
        gcups_max: g,
        ..Experiment::default()
    }
    .with_kernel(&run.report.kernel)
    .with_metrics(&run.report.metrics_with_spans(&obs.spans()))
}

/// The pruning anchor: the 1M × 1M simulated run on a 99%-identity pair
/// with distributed block pruning. Deterministic like the DES experiment;
/// its pruned fraction and effective GCUPS track the pruning protocol, and
/// `bench-diff` reports pruned-fraction drift without calling it a perf
/// regression.
fn run_prune_experiment(name: &str, platform: &Platform, config: &RunConfig) -> Experiment {
    let (m, n) = (1_000_000, 1_000_000);
    let obs = Recorder::new(ObsLevel::Full);
    let run = DesSim::new(m, n, platform)
        .config(config.clone().with_pruning(PruneMode::Distributed))
        .identity(0.99)
        .observer(obs.clone())
        .run();
    assert!(
        run.aborted.is_none(),
        "pruning benchmark must complete: {:?}",
        run.aborted
    );
    let g = run.report.gcups_sim.unwrap_or(0.0);
    Experiment {
        name: name.to_string(),
        cells: (m * n) as u64,
        gcups_median: g,
        gcups_min: g,
        gcups_max: g,
        ..Experiment::default()
    }
    .with_kernel(&run.report.kernel)
    .with_metrics(&run.report.metrics_with_spans(&obs.spans()))
}

/// The drifting-clock rebalance anchor: the 1M × 1M simulated env2 run
/// where the Titan (the biggest proportional share) halves its clock at
/// the matrix midpoint, with checkpoint-boundary rebalancing on. The
/// controller migrates columns to the healthy boards, so this experiment's
/// GCUPS sits well above what static slabs would deliver on the same
/// drift; its migration accounting is bit-stable across hosts.
fn run_rebalance_experiment(name: &str, platform: &Platform, config: &RunConfig) -> Experiment {
    let (m, n) = (1_000_000, 1_000_000);
    let rows = m / config.block_h;
    let obs = Recorder::new(ObsLevel::Full);
    let run = DesSim::new(m, n, platform)
        .config(config.clone().with_rebalance(RebalanceMode::on()))
        .drift(ClockDrift {
            device: 0,
            after_row: rows / 2,
            factor: 0.5,
        })
        .observer(obs.clone())
        .run();
    assert!(
        run.aborted.is_none(),
        "rebalance benchmark must complete: {:?}",
        run.aborted
    );
    let g = run.report.gcups_sim.unwrap_or(0.0);
    Experiment {
        name: name.to_string(),
        cells: (m * n) as u64,
        gcups_median: g,
        gcups_min: g,
        gcups_max: g,
        ..Experiment::default()
    }
    .with_kernel(&run.report.kernel)
    .with_metrics(&run.report.metrics_with_spans(&obs.spans()))
}

/// The many-pair batch anchor: a small-pair-heavy mixed-size manifest (48
/// pairs, 2.0k–2.9k bases — the database-search shape, enough pairs that
/// every device stays packed) through the threaded batch engine for host
/// GCUPS, plus the deterministic DES twin pinning the inter-task packing
/// speedup. The speedup is asserted ≥ 2× over the serial
/// one-pair-at-a-time baseline, so a packing-schedule regression fails the
/// artifact run loudly rather than drifting in a table; the accounting
/// lands in the artifact's `batch` object.
fn run_batch_experiment(name: &str, platform: &Platform, samples: u64) -> Experiment {
    let jobs: Vec<BatchJob> = (0..48)
        .map(|i| {
            let len = 2_000 + 53 * (i % 17);
            let a = ChromosomeGenerator::new(GenerateConfig::sized(len, 900 + i as u64)).generate();
            let (b, _) = DivergenceModel::test_scale(900 + i as u64).apply(&a);
            BatchJob::new(format!("bench{i}"), a.codes().to_vec(), b.codes().to_vec())
        })
        .collect();
    let cfg = BatchConfig::default();
    let cells: u128 = jobs.iter().map(BatchJob::cells).sum();

    let mut last = None;
    let mut rates: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            let report = BatchRun::new(&jobs, platform)
                .config(cfg.clone())
                .run()
                .expect("benchmark batch run failed");
            let g = gcups(cells, t.elapsed().as_secs_f64());
            last = Some(report);
            g
        })
        .collect();
    rates.sort_by(|x, y| x.total_cmp(y));
    let report = last.expect("at least one sample ran");

    let specs: Vec<BatchSpec> = jobs
        .iter()
        .map(|j| BatchSpec {
            m: j.a.len(),
            n: j.b.len(),
        })
        .collect();
    let sim = BatchSim::new(&specs, platform).config(cfg).run();
    assert!(
        sim.packing_speedup() >= 2.0,
        "batch packing speedup {:.2} fell below the 2x anchor",
        sim.packing_speedup()
    );

    let mut e = Experiment {
        name: name.to_string(),
        cells: u64::try_from(cells).unwrap_or(u64::MAX),
        gcups_median: rates[rates.len() / 2],
        gcups_min: rates[0],
        gcups_max: rates[rates.len() - 1],
        ..Experiment::default()
    }
    .with_kernel(&KernelSelection::default())
    .with_metrics(&report.metrics());
    e.batch_packing_speedup = sim.packing_speedup();
    e
}

/// The resident-service anchor: a sustained stream of 22 small jobs (20
/// singles plus two 3-pair batches submitted up front, so the queue
/// actually builds depth) drained by an in-process [`AlignService`]. The
/// GCUPS is host-noisy like the pipeline experiments, but the accounting —
/// jobs completed, per-job p50/p99 latency, queue-depth high-water mark —
/// lands in the artifact's `service` object so a scheduling or queueing
/// regression in `megasw serve` fails the diff next to the kernel numbers.
fn run_service_experiment(name: &str, platform: Platform) -> Experiment {
    let base = RunConfig::test_default()
        .with_policy(KernelPolicy::default().with_checkpoint(CheckpointCadence::EveryRows(4)));
    let mut svc = AlignService::start(platform, ServiceConfig::new(base), MetricsHub::new());

    let mk = |seed: u64, len: usize| {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed).apply(&a);
        (a, b)
    };
    let mut cells: u128 = 0;
    let mut ids = Vec::new();
    let t = Instant::now();
    for i in 0..20u64 {
        let (a, b) = mk(700 + i, 1_200 + 43 * (i as usize % 13));
        cells += (a.len() as u128) * (b.len() as u128);
        ids.push(svc.submit(JobSpec::single(
            format!("s{i}"),
            a.codes().to_vec(),
            b.codes().to_vec(),
        )));
    }
    for batch in 0..2u64 {
        let jobs: Vec<BatchJob> = (0..3u64)
            .map(|i| {
                let (a, b) = mk(760 + 10 * batch + i, 900 + 60 * i as usize);
                cells += (a.len() as u128) * (b.len() as u128);
                BatchJob::new(
                    format!("b{batch}p{i}"),
                    a.codes().to_vec(),
                    b.codes().to_vec(),
                )
            })
            .collect();
        ids.push(svc.submit(JobSpec::batch(jobs)));
    }
    for id in ids {
        let status = svc
            .wait(id, std::time::Duration::from_secs(600))
            .expect("service job reached a terminal state");
        assert_eq!(
            status.state,
            JobState::Done,
            "service benchmark job {id} did not complete: {status:?}"
        );
    }
    let g = gcups(cells, t.elapsed().as_secs_f64());

    let registry = svc.hub().registry();
    svc.shutdown();
    assert_eq!(
        registry.counter("service.jobs_completed"),
        Some(22),
        "service benchmark must drain the whole stream"
    );
    Experiment {
        name: name.to_string(),
        cells: u64::try_from(cells).unwrap_or(u64::MAX),
        gcups_median: g,
        gcups_min: g,
        gcups_max: g,
        ..Experiment::default()
    }
    .with_kernel(&KernelSelection::default())
    .with_metrics(&registry)
}

/// The fault-tolerance anchor: the same simulated paper-scale run with a
/// mid-matrix device death and checkpoint recovery. Deterministic like the
/// DES experiment, so its GCUPS *and* recovery accounting (recoveries,
/// rewound cells, checkpoints) are bit-stable across hosts — a change in
/// any of them is a real behavioural change in the recovery protocol.
fn run_recovery_experiment(name: &str, platform: &Platform, config: &RunConfig) -> Experiment {
    let (m, n) = (1_000_000, 1_000_000);
    let obs = Recorder::new(ObsLevel::Full);
    let run = DesSim::new(m, n, platform)
        .config(config.clone())
        .observer(obs.clone())
        .faults(FaultPlan {
            device: 1,
            fail_at_block_row: 976,
        })
        .recover(RecoveryPolicy::default())
        .run();
    assert!(
        run.aborted.is_none(),
        "recovery benchmark must complete: {:?}",
        run.aborted
    );
    let g = run.report.gcups_sim.unwrap_or(0.0);
    Experiment {
        name: name.to_string(),
        cells: (m * n) as u64,
        gcups_median: g,
        gcups_min: g,
        gcups_max: g,
        ..Experiment::default()
    }
    .with_kernel(&run.report.kernel)
    .with_metrics(&run.report.metrics_with_spans(&obs.spans()))
}
