//! Affine-gap scoring scheme.

use crate::cell::Score;

/// Smith-Waterman scoring parameters with affine gaps.
///
/// A gap of length `k` costs `gap_open + k * gap_extend` (both stored as
/// positive costs and subtracted). This is the convention CUDAlign uses; the
/// first base of a gap therefore costs `gap_open + gap_extend`.
///
/// `N` (unknown base) never matches anything, including another `N`, so
/// assembly gaps cannot manufacture score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreScheme {
    /// Score added for a match (positive).
    pub match_score: Score,
    /// Score added for a mismatch (negative).
    pub mismatch_score: Score,
    /// Cost of opening a gap (positive; subtracted once per gap).
    pub gap_open: Score,
    /// Cost of extending a gap by one base (positive; subtracted per base).
    pub gap_extend: Score,
}

impl ScoreScheme {
    /// The scheme used by CUDAlign and this paper's evaluation:
    /// match +1, mismatch −3, gap open 3, gap extend 2.
    pub const fn cudalign() -> Self {
        ScoreScheme {
            match_score: 1,
            mismatch_score: -3,
            gap_open: 3,
            gap_extend: 2,
        }
    }

    /// A gentler scheme (useful in tests for exercising longer alignments):
    /// match +2, mismatch −1, open 2, extend 1.
    pub const fn lenient() -> Self {
        ScoreScheme {
            match_score: 2,
            mismatch_score: -1,
            gap_open: 2,
            gap_extend: 1,
        }
    }

    /// Validate invariants the DP kernels rely on. Returns a description of
    /// the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.match_score <= 0 {
            return Err("match_score must be positive");
        }
        if self.mismatch_score >= 0 {
            return Err("mismatch_score must be negative");
        }
        if self.gap_open < 0 {
            return Err("gap_open must be non-negative (it is a cost)");
        }
        if self.gap_extend <= 0 {
            return Err("gap_extend must be positive (it is a cost)");
        }
        Ok(())
    }

    /// Substitution score for base codes `a`, `b` (`0..=4`, 4 = N).
    #[inline(always)]
    pub fn substitution(&self, a: u8, b: u8) -> Score {
        if a == b && a < 4 {
            self.match_score
        } else {
            self.mismatch_score
        }
    }

    /// Cost of the *first* base of a gap (`open + extend`), as a negative
    /// delta to add.
    #[inline(always)]
    pub fn gap_first(&self) -> Score {
        -(self.gap_open + self.gap_extend)
    }

    /// Cost of each subsequent gap base, as a negative delta to add.
    #[inline(always)]
    pub fn gap_next(&self) -> Score {
        -self.gap_extend
    }

    /// Upper bound on the score of any local alignment between sequences of
    /// length `m` and `n`: every aligned pair can at best be a match.
    pub fn max_possible(&self, m: usize, n: usize) -> Score {
        let pairs = m.min(n) as i64;
        let bound = pairs * self.match_score as i64;
        bound.min(Score::MAX as i64) as Score
    }
}

impl Default for ScoreScheme {
    fn default() -> Self {
        Self::cudalign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cudalign_defaults() {
        let s = ScoreScheme::cudalign();
        assert_eq!(s.match_score, 1);
        assert_eq!(s.mismatch_score, -3);
        assert_eq!(s.gap_open, 3);
        assert_eq!(s.gap_extend, 2);
        assert_eq!(s.gap_first(), -5);
        assert_eq!(s.gap_next(), -2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn substitution_matrix() {
        let s = ScoreScheme::cudalign();
        assert_eq!(s.substitution(0, 0), 1);
        assert_eq!(s.substitution(0, 1), -3);
        assert_eq!(s.substitution(3, 3), 1);
        // N never matches, even against N.
        assert_eq!(s.substitution(4, 4), -3);
        assert_eq!(s.substitution(4, 0), -3);
    }

    #[test]
    fn validation_catches_bad_schemes() {
        let mut s = ScoreScheme::cudalign();
        s.match_score = 0;
        assert!(s.validate().is_err());

        let mut s = ScoreScheme::cudalign();
        s.mismatch_score = 1;
        assert!(s.validate().is_err());

        let mut s = ScoreScheme::cudalign();
        s.gap_extend = 0;
        assert!(s.validate().is_err());

        let mut s = ScoreScheme::cudalign();
        s.gap_open = -1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn max_possible_bound() {
        let s = ScoreScheme::cudalign();
        assert_eq!(s.max_possible(10, 20), 10);
        assert_eq!(s.max_possible(0, 20), 0);
        // Does not overflow for chromosome-scale inputs.
        assert!(s.max_possible(250_000_000, 250_000_000) > 0);
    }
}
