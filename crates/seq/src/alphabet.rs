//! The DNA alphabet.
//!
//! The dynamic-programming kernels compare bases millions of times per
//! second, so the representation is a plain `u8` code in `0..=4` with `N`
//! (unknown base) mapped to code 4. Codes 0–3 fit in two bits, which
//! [`crate::PackedDna`] exploits for storage.

/// A single DNA base.
///
/// `N` represents an unknown/ambiguous base (assembly gaps in real
/// chromosomes are runs of `N`). Following CUDAlign's convention, an `N`
/// never matches anything — not even another `N` — so assembly gaps cannot
/// inflate alignment scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Nucleotide {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
    N = 4,
}

/// Number of distinct concrete bases (excluding `N`).
pub const CONCRETE_BASES: usize = 4;

/// Code value used for `N`.
pub const N_CODE: u8 = 4;

impl Nucleotide {
    /// All concrete (non-`N`) bases in code order.
    pub const CONCRETE: [Nucleotide; 4] =
        [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// Parse from an ASCII character (case-insensitive).
    ///
    /// Any IUPAC ambiguity code other than ACGT (R, Y, S, W, …) maps to `N`,
    /// mirroring how megabase aligners treat ambiguous bases. Returns `None`
    /// for characters that are not plausible sequence symbols.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Nucleotide> {
        match c.to_ascii_uppercase() {
            b'A' => Some(Nucleotide::A),
            b'C' => Some(Nucleotide::C),
            b'G' => Some(Nucleotide::G),
            b'T' | b'U' => Some(Nucleotide::T),
            // IUPAC ambiguity codes degrade to N.
            b'N' | b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' | b'B' | b'D' | b'H' | b'V' => {
                Some(Nucleotide::N)
            }
            _ => None,
        }
    }

    /// The numeric code (`0..=4`) consumed by the DP kernels.
    #[inline(always)]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Nucleotide::code`]. Codes `> 4` are invalid.
    #[inline(always)]
    pub fn from_code(code: u8) -> Option<Nucleotide> {
        match code {
            0 => Some(Nucleotide::A),
            1 => Some(Nucleotide::C),
            2 => Some(Nucleotide::G),
            3 => Some(Nucleotide::T),
            4 => Some(Nucleotide::N),
            _ => None,
        }
    }

    /// ASCII representation (uppercase).
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Nucleotide::A => b'A',
            Nucleotide::C => b'C',
            Nucleotide::G => b'G',
            Nucleotide::T => b'T',
            Nucleotide::N => b'N',
        }
    }

    /// Watson–Crick complement. `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Nucleotide {
        match self {
            Nucleotide::A => Nucleotide::T,
            Nucleotide::C => Nucleotide::G,
            Nucleotide::G => Nucleotide::C,
            Nucleotide::T => Nucleotide::A,
            Nucleotide::N => Nucleotide::N,
        }
    }

    /// Is this a G or C? (Used for GC-content statistics.)
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Nucleotide::C | Nucleotide::G)
    }

    /// Is this a concrete base (not `N`)?
    #[inline]
    pub fn is_concrete(self) -> bool {
        !matches!(self, Nucleotide::N)
    }
}

impl std::fmt::Display for Nucleotide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// Complement of a raw base code, branch-free for the hot path.
///
/// Codes 0..=3 map via `3 - code` (A<->T, C<->G); code 4 (N) maps to itself.
#[inline(always)]
pub fn complement_code(code: u8) -> u8 {
    if code < 4 {
        3 - code
    } else {
        N_CODE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for n in [
            Nucleotide::A,
            Nucleotide::C,
            Nucleotide::G,
            Nucleotide::T,
            Nucleotide::N,
        ] {
            assert_eq!(Nucleotide::from_code(n.code()), Some(n));
        }
        assert_eq!(Nucleotide::from_code(5), None);
        assert_eq!(Nucleotide::from_code(255), None);
    }

    #[test]
    fn ascii_roundtrip_upper_and_lower() {
        for (c, n) in [
            (b'A', Nucleotide::A),
            (b'c', Nucleotide::C),
            (b'G', Nucleotide::G),
            (b't', Nucleotide::T),
            (b'n', Nucleotide::N),
        ] {
            assert_eq!(Nucleotide::from_ascii(c), Some(n));
        }
        assert_eq!(Nucleotide::from_ascii(b'X'), None);
        assert_eq!(Nucleotide::from_ascii(b'-'), None);
        assert_eq!(Nucleotide::from_ascii(b' '), None);
    }

    #[test]
    fn uracil_reads_as_thymine() {
        assert_eq!(Nucleotide::from_ascii(b'U'), Some(Nucleotide::T));
        assert_eq!(Nucleotide::from_ascii(b'u'), Some(Nucleotide::T));
    }

    #[test]
    fn iupac_ambiguity_degrades_to_n() {
        for c in [b'R', b'y', b'S', b'w', b'K', b'm', b'B', b'd', b'H', b'v'] {
            assert_eq!(
                Nucleotide::from_ascii(c),
                Some(Nucleotide::N),
                "{}",
                c as char
            );
        }
    }

    #[test]
    fn complement_is_involution() {
        for n in Nucleotide::CONCRETE {
            assert_eq!(n.complement().complement(), n);
        }
        assert_eq!(Nucleotide::N.complement(), Nucleotide::N);
    }

    #[test]
    fn complement_code_matches_enum() {
        for code in 0u8..=4 {
            let n = Nucleotide::from_code(code).unwrap();
            assert_eq!(complement_code(code), n.complement().code());
        }
    }

    #[test]
    fn gc_flags() {
        assert!(Nucleotide::G.is_gc());
        assert!(Nucleotide::C.is_gc());
        assert!(!Nucleotide::A.is_gc());
        assert!(!Nucleotide::T.is_gc());
        assert!(!Nucleotide::N.is_gc());
    }

    #[test]
    fn display_matches_ascii() {
        assert_eq!(Nucleotide::A.to_string(), "A");
        assert_eq!(Nucleotide::N.to_string(), "N");
    }
}
