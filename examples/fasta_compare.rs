//! Compare two FASTA files — the workflow a genomicist would actually run
//! (the paper's tool consumed chromosome FASTA downloads).
//!
//! ```text
//! cargo run --release --example fasta_compare <a.fasta> <b.fasta> [--align]
//! ```
//!
//! With no arguments, writes a demo pair to a temporary directory first and
//! compares that, so the example is runnable out of the box.

use megasw::prelude::*;
use megasw::seq::fasta::{read_single_fasta, write_fasta, FastaRecord};
use megasw::seq::stats::seq_stats;
use std::fs::File;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let do_align = args.iter().any(|a| a == "--align");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let (path_a, path_b) = if paths.len() >= 2 {
        (PathBuf::from(paths[0]), PathBuf::from(paths[1]))
    } else {
        println!("no inputs given — writing a demo pair first\n");
        demo_pair()
    };

    let rec_a = load(&path_a);
    let rec_b = load(&path_b);
    for (path, rec) in [(&path_a, &rec_a), (&path_b, &rec_b)] {
        let st = seq_stats(&rec.seq);
        println!(
            "{}: '{}' — {} bp, GC {:.1}%, {} N-runs",
            path.display(),
            rec.id(),
            st.len,
            st.gc_fraction * 100.0,
            st.n_runs
        );
    }

    let platform = Platform::env2();
    let config = RunConfig::paper_default();
    println!("\ncomparing on {}…", platform.name);
    let report = PipelineRun::new(rec_a.seq.codes(), rec_b.seq.codes(), &platform)
        .config(config.clone())
        .run()
        .expect("pipeline run failed");
    print!("\n{report}");

    if do_align {
        let aln = local_align(rec_a.seq.codes(), rec_b.seq.codes(), &config.scheme);
        println!(
            "\nalignment: {} columns, identity {:.2}%, CIGAR {}",
            aln.len(),
            aln.identity() * 100.0,
            aln.cigar()
        );
    } else {
        println!("\n(re-run with --align to also retrieve the optimal alignment)");
    }
}

fn load(path: &PathBuf) -> FastaRecord {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", path.display());
        std::process::exit(2);
    });
    read_single_fasta(file).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn demo_pair() -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("megasw-demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let a_path = dir.join("human_demo.fasta");
    let b_path = dir.join("chimp_demo.fasta");

    let human = ChromosomeGenerator::new(GenerateConfig::sized(100_000, 2024)).generate();
    let (chimp, _) = DivergenceModel::human_chimp(4).apply(&human);

    write_fasta(
        File::create(&a_path).expect("create demo file"),
        &[FastaRecord {
            header: "human_demo synthetic".into(),
            seq: human,
        }],
        70,
    )
    .expect("write demo FASTA");
    write_fasta(
        File::create(&b_path).expect("create demo file"),
        &[FastaRecord {
            header: "chimp_demo synthetic".into(),
            seq: chimp,
        }],
        70,
    )
    .expect("write demo FASTA");

    (a_path, b_path)
}
