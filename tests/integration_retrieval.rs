//! Integration of the full analysis workflow a user would run: k-mer
//! screening → banded estimate → multi-GPU stage 1 → multi-GPU alignment
//! retrieval → rendering. Every arrow in that chain must agree with the
//! exhaustive reference.

use megasw::prelude::*;
use megasw::seq::kmer::{estimate_band, jaccard};
use megasw::sw::banded::BandedResult;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

/// Banded scans via the kernel trait (same phase-out).
fn banded_best(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    kernel::scalar().banded(a, b, scheme, width)
}

fn banded_adaptive(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    kernel::scalar().banded_adaptive(a, b, scheme, width)
}

fn homologous_pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 31).apply(&a);
    (a, b)
}

#[test]
fn screening_predicts_what_alignment_finds() {
    let (a, b) = homologous_pair(8_000, 1);
    let unrelated = ChromosomeGenerator::new(GenerateConfig::uniform(8_000, 99)).generate();

    // Screening separates the homologous pair from the unrelated one…
    let j_hom = jaccard(&a, &b, 16);
    let j_unrel = jaccard(&a, &unrelated, 16);
    assert!(j_hom > 0.3, "homologous jaccard {j_hom}");
    assert!(j_unrel < 0.01, "unrelated jaccard {j_unrel}");

    // …and the alignment scores tell the same story.
    let scheme = ScoreScheme::cudalign();
    let hom = gotoh_best(a.codes(), b.codes(), &scheme);
    let unrel = gotoh_best(a.codes(), unrelated.codes(), &scheme);
    assert!(hom.score > 10 * unrel.score.max(1));
}

#[test]
fn kmer_band_estimate_makes_banded_exact() {
    let (a, b) = homologous_pair(10_000, 2);
    let scheme = ScoreScheme::cudalign();
    let full = gotoh_best(a.codes(), b.codes(), &scheme);

    let (lo, hi) = estimate_band(&a, &b, 16, 0.95, 64).expect("homologs share k-mers");
    // Convert the offset window into a banded half-width: the band in
    // `banded_best` is centred on [min(0,d), max(0,d)]; widen enough to
    // cover the estimated corridor.
    let d = b.len() as i64 - a.len() as i64;
    let need = (lo - 0i64.min(d)).abs().max((hi - 0i64.max(d)).abs()) as usize;
    let banded = banded_best(a.codes(), b.codes(), &scheme, need + 1);
    assert_eq!(
        banded.best, full,
        "band from k-mer estimate (w = {need}) must capture the optimum"
    );
    // And it should be much cheaper than the full matrix.
    assert!(banded.cells_computed < (a.len() as u128 * b.len() as u128) / 2);
}

#[test]
fn multigpu_retrieval_agrees_with_host_retrieval_and_renders() {
    let (a, b) = homologous_pair(4_000, 3);
    let cfg = RunConfig::paper_default().with_block(128);
    let (multi, _) = multigpu_local_align(a.codes(), b.codes(), &Platform::env2(), &cfg).unwrap();
    let host = local_align(a.codes(), b.codes(), &cfg.scheme);

    assert_eq!(multi.score, host.score);
    assert_eq!(
        (multi.start_i, multi.start_j, multi.end_i, multi.end_j),
        (host.start_i, host.start_j, host.end_i, host.end_j)
    );

    let rendered = render_alignment(a.codes(), b.codes(), &multi, 60);
    assert!(!rendered.is_empty());
    // Row coordinates in the rendering match the alignment span.
    let first = rendered.lines().next().unwrap();
    let tokens: Vec<&str> = first.split_whitespace().collect();
    assert_eq!(tokens[0], "a");
    assert_eq!(tokens[1], multi.start_i.to_string(), "{first}");
    // Match-bar count equals the CIGAR's match total.
    let bars: usize = rendered
        .lines()
        .skip(1)
        .step_by(4) // every block: a-line, bars, b-line, blank
        .map(|l| l.matches('|').count())
        .sum();
    let matches = multi.ops.iter().filter(|o| **o == AlignOp::Match).count();
    assert_eq!(bars, matches);
}

#[test]
fn banded_adaptive_agrees_with_pipeline_on_catalog_pair() {
    let pair = ChromosomePair::generate(PairCatalog::test_scale().specs[0].clone());
    let scheme = ScoreScheme::cudalign();
    let cfg = RunConfig::paper_default();

    let banded = banded_adaptive(pair.human.codes(), pair.chimp.codes(), &scheme, 32);
    let pipeline = PipelineRun::new(pair.human.codes(), pair.chimp.codes(), &Platform::env1())
        .config(cfg.clone())
        .run()
        .unwrap();
    assert_eq!(banded.best, pipeline.best);
}

#[test]
fn anchored_and_local_pipelines_relate_correctly() {
    // The anchored maximum is a lower bound on the local maximum (every
    // origin-anchored alignment is also a local alignment).
    let (a, b) = homologous_pair(3_000, 5);
    let cfg = RunConfig::paper_default().with_block(96);
    let p = Platform::env2();
    let local = PipelineRun::new(a.codes(), b.codes(), &p)
        .config(cfg.clone())
        .run()
        .unwrap();
    let anchored = PipelineRun::new(a.codes(), b.codes(), &p)
        .config(cfg.clone())
        .semantics(Semantics::Anchored)
        .run()
        .unwrap();
    assert!(anchored.best.score <= local.best.score);
    assert!(
        anchored.best.score >= 0,
        "origin score 0 is always anchored"
    );
}
