//! # megasw-multigpu — fine-grain multi-GPU megabase Smith-Waterman
//!
//! This crate is the paper's contribution: spreading the computation of a
//! *single* huge Smith-Waterman matrix over a chain of (simulated)
//! heterogeneous GPUs.
//!
//! * [`partition`] — column-wise decomposition of the matrix into one
//!   vertical **slab per device**, either equal or proportional to each
//!   device's measured compute power (the heterogeneous case);
//! * [`circbuf`] — the **circular buffer**: a bounded, blocking ring
//!   through which a device streams the border columns of its slab to its
//!   right-hand neighbour one block-row at a time, decoupling producer and
//!   consumer so communication hides behind computation;
//! * [`pipeline`] — the **threaded runtime**: one OS thread per simulated
//!   device executes the real block kernels over its slab and exchanges
//!   real borders through the rings; its result is bit-identical to the
//!   sequential reference (the integration tests prove it);
//! * [`desrun`] — the same schedule handed to the discrete-event simulator
//!   in `megasw-gpusim`, yielding the *simulated* GCUPS, per-device
//!   utilization and buffer-stall breakdowns that regenerate the paper's
//!   tables and figures;
//! * [`stages`] — multi-GPU **alignment retrieval** (CUDAlign stages 1–3
//!   analogue): forward local pipeline, reversed anchored pipeline, then
//!   Myers–Miller on the bounded segment;
//! * [`batch`] — the **many-pair batch engine**: length-sorted bins over a
//!   device work-queue, small pairs dispatched whole to idle devices
//!   (inter-task parallelism), large pairs through the slab pipeline, plus
//!   the DES twin that pins the packing speedup;
//! * [`job`] — the unified job abstraction ([`job::JobSpec`] /
//!   [`job::JobReport`]): single-pair and batch workloads behind one
//!   submit/report surface;
//! * [`service`] — the resident alignment service: a prioritized job
//!   queue with an executor thread, cooperative cancellation, per-job
//!   latency SLOs and an HTTP control surface mounted on `obs::http`;
//! * [`balance`] — device-weight calibration for proportional splits;
//! * [`baseline`] — the comparison points: single device, bulk-synchronous
//!   (non-overlapped) exchange, equal split on heterogeneous platforms, and
//!   a multicore CPU wavefront;
//! * [`stats`] — the [`stats::RunReport`] every executor produces.

pub mod autotune;
pub mod balance;
pub mod baseline;
pub mod batch;
pub mod checkpoint;
pub mod circbuf;
pub mod config;
pub mod desrun;
pub mod error;
pub mod job;
pub mod memory;
pub mod partition;
pub mod pipeline;
pub mod service;
pub mod stages;
pub mod stats;

#[allow(deprecated)]
pub use batch::PairOutcome;
pub use batch::{
    BatchConfig, BatchFault, BatchJob, BatchPlan, BatchReport, BatchRun, BatchSim, BatchSimReport,
    BatchSpec,
};
pub use checkpoint::{Checkpoint, CheckpointStore, RecoveryPolicy};
pub use circbuf::BorderMsg;
pub use config::{
    CheckpointCadence, KernelPolicy, PartitionPolicy, PruneMode, RebalanceMode, RunConfig,
};
pub use desrun::DesSim;
pub use error::MegaswError;
pub use job::{JobKind, JobOutcome, JobReport, JobSpec};
pub use partition::{
    make_slabs, make_slabs_excluding, make_slabs_excluding_with_weights, resplit_slabs, Slab,
};
pub use pipeline::{FaultPhase, FaultSchedule, PipelineRun, ScheduledFault, Semantics};
pub use service::{AlignService, JobState, JobStatus, ServiceConfig};
pub use stages::multigpu_local_align;
pub use stats::{
    DeviceReport, PruningReport, RebalanceReport, RecoveryReport, RunReport, StallBreakdown,
};

/// The types most callers need: builders, reports, errors, observability.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::batch::PairOutcome;
    pub use crate::batch::{
        jobs_from_fasta_pair, jobs_from_manifest, BatchConfig, BatchFault, BatchJob, BatchPlan,
        BatchReport, BatchRun, BatchSim, BatchSimReport, BatchSpec,
    };
    pub use crate::checkpoint::{Checkpoint, CheckpointStore, RecoveryPolicy};
    pub use crate::circbuf::BorderMsg;
    pub use crate::config::{
        CheckpointCadence, KernelPolicy, PartitionPolicy, PruneMode, RebalanceMode, RunConfig,
    };
    pub use crate::desrun::{DesRun, DesSim};
    pub use crate::error::MegaswError;
    pub use crate::job::{JobKind, JobOutcome, JobReport, JobSpec};
    pub use crate::pipeline::{
        FaultPhase, FaultPlan, FaultSchedule, PipelineRun, ScheduledFault, Semantics,
    };
    pub use crate::service::{AlignService, JobState, JobStatus, ServiceConfig};
    pub use crate::stats::{
        DeviceReport, PruningReport, RebalanceReport, RecoveryReport, RunReport, StallBreakdown,
    };
    pub use megasw_obs::{
        chrome_trace, metrics_json, prometheus, render_progress_line, LiveSnapshot, LiveTelemetry,
        MetricsRegistry, ObsKind, ObsLevel, ObsSpan, ProgressSampler, Recorder,
    };
}
