//! F3 — circular-buffer effects on the real runtime: pipeline throughput
//! across ring capacities, plus the raw ring's push/pop cost (the overhead
//! the capacity is amortizing). The simulated capacity curve is printed by
//! `paper-tables f3`.

use megasw::multigpu::circbuf::CircularBuffer;
use megasw::prelude::*;
use megasw_bench::{cached_pair, harness::Group};

fn bench_pipeline_capacity() {
    let group = Group::new("f3_pipeline_capacity");
    let (a, b) = cached_pair(8_000, 401);
    let cells = (a.len() * b.len()) as u64;
    let platform = Platform::env1();
    for cap in [1usize, 4, 32] {
        let cfg = RunConfig::paper_default()
            .with_block(256)
            .with_buffer_capacity(cap);
        group.bench_cells(&format!("capacity_{cap}"), cells, || {
            PipelineRun::new(a.codes(), b.codes(), &platform)
                .config(cfg.clone())
                .run()
                .expect("pipeline run failed")
                .best
        });
    }
}

fn bench_ring_throughput() {
    let group = Group::new("f3_ring_ops").samples(20);

    const ITEMS: u64 = 10_000;
    for cap in [1usize, 8, 64] {
        group.bench(&format!("stream_10k_cap{cap}"), || {
            let ring = CircularBuffer::with_capacity(cap);
            let producer = {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..ITEMS {
                        ring.push(i).unwrap();
                    }
                    ring.close();
                })
            };
            let mut sum = 0u64;
            while let Some(v) = ring.pop().unwrap() {
                sum = sum.wrapping_add(v);
            }
            producer.join().unwrap();
            sum
        });
    }
}

fn main() {
    bench_pipeline_capacity();
    bench_ring_throughput();
}
