//! The threaded multi-GPU pipeline.
//!
//! One OS thread plays each device of the platform chain. Thread `g`
//! computes its column slab block-row by block-row with the real
//! [`megasw_sw::block`] kernel; after finishing block-row `r` it pushes the
//! slab's right border (one [`ColBorder`] of that row's height) into the
//! circular buffer toward thread `g + 1`, which pops exactly one border
//! before starting its own block-row `r`. The result is the paper's
//! fine-grain wavefront across devices: all GPUs cooperate on the same
//! matrix, offset by one block-row per chain position, with communication
//! overlapping computation whenever the ring has slack.
//!
//! The run is **bit-exact**: every border value equals the sequential
//! matrix's value, so the merged best cell is identical to the reference
//! (integration tests sweep partitions, block sizes and capacities to prove
//! it).
//!
//! ## Entry point
//!
//! [`PipelineRun`] is the single builder-style entry:
//!
//! ```
//! use megasw_multigpu::pipeline::{PipelineRun, Semantics};
//! use megasw_multigpu::config::RunConfig;
//! use megasw_gpusim::Platform;
//!
//! let (a, b) = (vec![0u8, 1, 2, 3], vec![0u8, 1, 2, 3]);
//! let report = PipelineRun::new(&a, &b, &Platform::env1())
//!     .config(RunConfig::test_default())
//!     .semantics(Semantics::Local)
//!     .run()
//!     .unwrap();
//! assert!(report.best.score > 0);
//! ```
//!
//! The free functions `run_pipeline` / `run_pipeline_anchored` /
//! `run_pipeline_with_faults` remain as deprecated thin wrappers and return
//! bit-identical results.
//!
//! ## Observability
//!
//! Every run computes a wall-clock [`StallBreakdown`] per device (fill,
//! border-wait, drain — the same accounting the simulator reports), exposed
//! via [`DeviceReport::stall`]. Attaching a
//! [`Recorder`](megasw_obs::Recorder) with [`PipelineRun::observer`]
//! additionally captures typed spans — `Kernel` per block-row, `RingPush` /
//! `RingPopWait` around the border ring — for Chrome-trace export.
//!
//! Attaching a [`LiveTelemetry`](megasw_obs::LiveTelemetry) handle with
//! [`PipelineRun::live`] exposes the run **while it executes**: every
//! worker bumps the handle's relaxed atomic counters once per block-row
//! (cells, rows, kernel busy time) and the border rings keep its occupancy
//! gauges current, so a sampler thread can render live progress and GCUPS
//! without perturbing the workers. Live device indices follow **chain
//! position** (slab order), matching `RunReport::devices`.

use crate::circbuf::{CircularBuffer, RingError};
use crate::config::RunConfig;
use crate::error::MegaswError;
use crate::partition::{make_slabs, Slab};
use crate::stats::{DeviceReport, RunReport, StallBreakdown};
use megasw_gpusim::Platform;
use megasw_obs::{LiveTelemetry, ObsKind, ObsSpan, Recorder};
use megasw_sw::block::{compute_block, compute_block_anchored, BlockInput};
use megasw_sw::border::{ColBorder, RowBorder};
use megasw_sw::cell::BestCell;
use std::sync::Arc;
use std::time::Duration;

/// Matrix semantics a pipeline run computes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Smith-Waterman local alignment (zero floor, zero boundaries).
    Local,
    /// Anchored ("prefix-global") alignment: every path starts at the
    /// matrix origin; gap-cost boundaries, no zero floor. Used by stage 2
    /// to locate alignment start points (see [`crate::stages`]).
    Anchored,
}

/// Pipeline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// A device failed mid-run (only via fault injection in this simulator;
    /// a real deployment would map CUDA errors here).
    DeviceFault { device: usize, block_row: usize },
    /// A neighbour's failure surfaced through the ring.
    RingPoisoned { device: usize },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::DeviceFault { device, block_row } => {
                write!(f, "device {device} failed at block-row {block_row}")
            }
            PipelineError::RingPoisoned { device } => {
                write!(f, "device {device} observed a poisoned ring")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Deterministic fault injection for resilience tests: the given device
/// fails just before computing the given block-row.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub device: usize,
    pub fail_at_block_row: usize,
}

/// Builder for one threaded pipeline run — the single entry point the
/// deprecated `run_pipeline*` functions wrap.
#[derive(Debug, Clone)]
pub struct PipelineRun<'a> {
    a: &'a [u8],
    b: &'a [u8],
    platform: &'a Platform,
    config: RunConfig,
    semantics: Semantics,
    fault: Option<FaultPlan>,
    observer: Recorder,
    live: Option<Arc<LiveTelemetry>>,
}

impl<'a> PipelineRun<'a> {
    /// Start configuring a run of `a × b` on `platform`. Defaults:
    /// [`RunConfig::paper_default`], [`Semantics::Local`], no faults, no
    /// observer.
    pub fn new(a: &'a [u8], b: &'a [u8], platform: &'a Platform) -> PipelineRun<'a> {
        PipelineRun {
            a,
            b,
            platform,
            config: RunConfig::paper_default(),
            semantics: Semantics::Local,
            fault: None,
            observer: Recorder::disabled(),
            live: None,
        }
    }

    /// Block geometry, ring capacity, partition policy and score scheme.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Local (default) or anchored matrix semantics.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Inject a deterministic device fault (resilience testing).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach a span recorder. Clone the recorder before attaching and read
    /// the spans from your clone after `run()` returns.
    pub fn observer(mut self, observer: Recorder) -> Self {
        self.observer = observer;
        self
    }

    /// Attach in-flight telemetry: workers update the handle's atomic
    /// counters once per block-row and the rings keep its occupancy gauges
    /// current. Keep a clone to sample from another thread while the run
    /// executes (see [`megasw_obs::ProgressSampler`]).
    pub fn live(mut self, live: Arc<LiveTelemetry>) -> Self {
        self.live = Some(live);
        self
    }

    /// Execute the run.
    pub fn run(self) -> Result<RunReport, MegaswError> {
        run_pipeline_live(
            self.a,
            self.b,
            self.platform,
            &self.config,
            self.fault,
            self.semantics,
            &self.observer,
            self.live.as_ref(),
        )
        .map_err(MegaswError::from)
    }
}

struct DevicePartial {
    best: BestCell,
    cells: u128,
    bytes_sent: u64,
    /// Kernel-activity envelope in recorder time, for stall accounting.
    first_kernel_start_ns: u64,
    last_kernel_end_ns: u64,
    busy_ns: u64,
}

/// Run the fine-grain pipeline. See the module docs.
#[deprecated(note = "use PipelineRun::new(a, b, platform).config(config).run()")]
pub fn run_pipeline(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
) -> Result<RunReport, PipelineError> {
    run_pipeline_engine(
        a,
        b,
        platform,
        config,
        None,
        Semantics::Local,
        &Recorder::disabled(),
    )
}

/// [`run_pipeline`] with optional fault injection.
#[deprecated(note = "use PipelineRun::new(a, b, platform).config(config).faults(plan).run()")]
pub fn run_pipeline_with_faults(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    fault: Option<FaultPlan>,
) -> Result<RunReport, PipelineError> {
    run_pipeline_engine(
        a,
        b,
        platform,
        config,
        fault,
        Semantics::Local,
        &Recorder::disabled(),
    )
}

/// Run the pipeline under anchored semantics (stage 2's kernel).
#[deprecated(
    note = "use PipelineRun::new(a, b, platform).config(config).semantics(Semantics::Anchored).run()"
)]
pub fn run_pipeline_anchored(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
) -> Result<RunReport, PipelineError> {
    run_pipeline_engine(
        a,
        b,
        platform,
        config,
        None,
        Semantics::Anchored,
        &Recorder::disabled(),
    )
}

/// The fully parameterized free-function entry point.
#[deprecated(note = "use PipelineRun::new(a, b, platform) and its builder methods")]
pub fn run_pipeline_full(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    fault: Option<FaultPlan>,
    semantics: Semantics,
) -> Result<RunReport, PipelineError> {
    run_pipeline_engine(
        a,
        b,
        platform,
        config,
        fault,
        semantics,
        &Recorder::disabled(),
    )
}

/// The engine behind the deprecated wrappers (no live telemetry).
pub(crate) fn run_pipeline_engine(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    fault: Option<FaultPlan>,
    semantics: Semantics,
    obs: &Recorder,
) -> Result<RunReport, PipelineError> {
    run_pipeline_live(a, b, platform, config, fault, semantics, obs, None)
}

/// The engine behind the builder: [`run_pipeline_engine`] plus optional
/// in-flight telemetry. Live device indices are chain positions (slab
/// order); indices past the handle's capacity are silently dropped by the
/// handle itself, so a handle sized for the platform also works when slabs
/// are dropped on small matrices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline_live(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    fault: Option<FaultPlan>,
    semantics: Semantics,
    obs: &Recorder,
    live: Option<&Arc<LiveTelemetry>>,
) -> Result<RunReport, PipelineError> {
    config.validate().map_err(PipelineError::InvalidConfig)?;
    let m = a.len();
    let n = b.len();
    let slabs = make_slabs(n, config.block_w, platform, &config.partition);

    if m == 0 || slabs.is_empty() {
        return Ok(empty_report(m, n, platform, &slabs));
    }

    let rows = m.div_ceil(config.block_h);
    let rings: Vec<CircularBuffer<ColBorder>> = (0..slabs.len().saturating_sub(1))
        .map(|_| CircularBuffer::with_capacity(config.buffer_capacity))
        .collect();

    if let Some(live) = live {
        for (s_idx, ring) in rings.iter().enumerate() {
            if let Some(gauge) = live.ring_gauge(s_idx) {
                ring.attach_occupancy_gauge(gauge);
            }
        }
        for s_idx in 0..slabs.len() {
            live.set_rows_total(s_idx, rows as u64);
        }
    }

    // All stall accounting is relative to this instant, on the recorder's
    // clock, so spans and the stall envelope share one timebase.
    let run_start_ns = obs.now_ns();
    let results: Vec<Result<DevicePartial, PipelineError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(slabs.len());
        for (s_idx, slab) in slabs.iter().enumerate() {
            let ring_in = if s_idx > 0 {
                Some(&rings[s_idx - 1])
            } else {
                None
            };
            let ring_out = rings.get(s_idx);
            handles.push(scope.spawn(move || {
                let result = device_worker(
                    a, b, *slab, s_idx, rows, config, ring_in, ring_out, fault, semantics, obs,
                    live,
                );
                if result.is_err() {
                    // Wake neighbours so the failure propagates instead of
                    // deadlocking the chain.
                    if let Some(r) = ring_in {
                        r.poison();
                    }
                    if let Some(r) = ring_out {
                        r.poison();
                    }
                }
                result
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let run_end_ns = obs.now_ns();
    let wall_ns = run_end_ns.saturating_sub(run_start_ns);
    let wall = Duration::from_nanos(wall_ns);

    // Surface the root-cause fault ahead of secondary poison observations.
    let mut first_poison = None;
    let mut partials = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(p) => partials.push(p),
            Err(e @ PipelineError::DeviceFault { .. }) => return Err(e),
            Err(e) => first_poison = Some(first_poison.unwrap_or(e)),
        }
    }
    if let Some(e) = first_poison {
        return Err(e);
    }

    let best = partials
        .iter()
        .fold(BestCell::ZERO, |acc, p| acc.merge(p.best));
    let total_cells = m as u128 * n as u128;
    debug_assert_eq!(
        partials.iter().map(|p| p.cells).sum::<u128>(),
        total_cells,
        "every matrix cell must be computed exactly once"
    );

    let devices = slabs
        .iter()
        .zip(&partials)
        .enumerate()
        .map(|(s_idx, (slab, p))| {
            // Shift the envelope to the run's own epoch; the identity
            // startup + input + drain == wall − busy holds exactly.
            let stall = StallBreakdown::from_envelope(
                wall_ns,
                p.first_kernel_start_ns.saturating_sub(run_start_ns),
                p.last_kernel_end_ns.saturating_sub(run_start_ns),
                p.busy_ns,
            );
            DeviceReport {
                device: slab.device,
                name: platform.devices[slab.device].name.clone(),
                slab_j0: slab.j0,
                slab_width: slab.width,
                cells: p.cells,
                bytes_sent: p.bytes_sent,
                ring_out: rings.get(s_idx).map(|r| r.stats()),
                wall_busy: Some(Duration::from_nanos(p.busy_ns)),
                sim_busy: None,
                sim_utilization: None,
                stall: Some(stall),
            }
        })
        .collect();

    let secs = wall.as_secs_f64();
    Ok(RunReport {
        best,
        total_cells,
        wall_time: Some(wall),
        gcups_wall: Some(RunReport::gcups(total_cells, secs)),
        sim_time: None,
        gcups_sim: None,
        devices,
    })
}

/// The per-device loop.
#[allow(clippy::too_many_arguments)]
fn device_worker(
    a: &[u8],
    b: &[u8],
    slab: Slab,
    s_idx: usize,
    rows: usize,
    config: &RunConfig,
    ring_in: Option<&CircularBuffer<ColBorder>>,
    ring_out: Option<&CircularBuffer<ColBorder>>,
    fault: Option<FaultPlan>,
    semantics: Semantics,
    obs: &Recorder,
    live: Option<&Arc<LiveTelemetry>>,
) -> Result<DevicePartial, PipelineError> {
    let m = a.len();
    let block_h = config.block_h;
    let block_w = config.block_w;
    let lane = slab.device as u32;

    // Tile columns of this slab.
    let mut cols: Vec<(usize, usize)> = Vec::new(); // (j0, width)
    let mut j = slab.j0;
    while j < slab.j_end() {
        let w = block_w.min(slab.j_end() - j);
        cols.push((j, w));
        j += w;
    }

    let mut tops: Vec<RowBorder> = cols
        .iter()
        .map(|&(jc0, w)| match semantics {
            Semantics::Local => RowBorder::zero(w),
            Semantics::Anchored => RowBorder::anchored(w, jc0, &config.scheme),
        })
        .collect();
    let mut best = BestCell::ZERO;
    let mut cells: u128 = 0;
    let mut bytes_sent: u64 = 0;
    let mut first_kernel_start_ns: Option<u64> = None;
    let mut last_kernel_end_ns: u64 = 0;
    let mut busy_ns: u64 = 0;

    for r in 0..rows {
        let i0 = r * block_h + 1;
        let i1 = ((r + 1) * block_h).min(m) + 1;
        let height = i1 - i0;
        let row = r as u32;

        if let Some(f) = fault {
            if f.device == slab.device && f.fail_at_block_row == r {
                return Err(PipelineError::DeviceFault {
                    device: slab.device,
                    block_row: r,
                });
            }
        }

        let mut left: ColBorder = match ring_in {
            None => match semantics {
                Semantics::Local => ColBorder::zero(height),
                Semantics::Anchored => ColBorder::anchored(height, i0, &config.scheme),
            },
            Some(ring) => {
                let wait_start = obs.now_ns();
                let popped = ring.pop();
                obs.record_since(ObsKind::RingPopWait, Some(lane), Some(row), wait_start);
                match popped {
                    Ok(Some(border)) => {
                        debug_assert_eq!(border.height(), height, "border height mismatch");
                        border
                    }
                    Ok(None) | Err(RingError::Closed) => {
                        // Producer closed early — only reachable through faults.
                        return Err(PipelineError::RingPoisoned {
                            device: slab.device,
                        });
                    }
                    Err(RingError::Poisoned) => {
                        return Err(PipelineError::RingPoisoned {
                            device: slab.device,
                        });
                    }
                }
            }
        };

        let kernel_start = obs.now_ns();
        for (c, &(jc0, wc)) in cols.iter().enumerate() {
            let input = BlockInput {
                a_rows: &a[i0 - 1..i1 - 1],
                b_cols: &b[jc0 - 1..jc0 - 1 + wc],
                top: &tops[c],
                left: &left,
                row_offset: i0,
                col_offset: jc0,
            };
            let out = match semantics {
                Semantics::Local => compute_block(input, &config.scheme),
                Semantics::Anchored => compute_block_anchored(input, &config.scheme),
            };
            best = best.merge(out.best);
            cells += out.cells as u128;
            tops[c] = out.bottom;
            left = out.right;
        }
        let kernel_end = obs.now_ns().max(kernel_start);
        obs.record(ObsSpan {
            kind: ObsKind::Kernel,
            device: Some(lane),
            block_row: Some(row),
            start_ns: kernel_start,
            end_ns: kernel_end,
        });
        first_kernel_start_ns.get_or_insert(kernel_start);
        last_kernel_end_ns = kernel_end;
        busy_ns += kernel_end - kernel_start;
        if let Some(live) = live {
            live.on_row_done(
                s_idx,
                (height as u64) * (slab.width as u64),
                kernel_end - kernel_start,
            );
        }

        if let Some(ring) = ring_out {
            bytes_sent += left.transfer_bytes() as u64;
            let push_start = obs.now_ns();
            let pushed = ring.push(left);
            obs.record_since(ObsKind::RingPush, Some(lane), Some(row), push_start);
            if pushed.is_err() {
                return Err(PipelineError::RingPoisoned {
                    device: slab.device,
                });
            }
        }
    }

    if let Some(ring) = ring_out {
        ring.close();
    }

    Ok(DevicePartial {
        best,
        cells,
        bytes_sent,
        first_kernel_start_ns: first_kernel_start_ns.unwrap_or(0),
        last_kernel_end_ns,
        busy_ns,
    })
}

fn empty_report(m: usize, n: usize, platform: &Platform, slabs: &[Slab]) -> RunReport {
    RunReport {
        best: BestCell::ZERO,
        total_cells: m as u128 * n as u128,
        wall_time: Some(std::time::Duration::ZERO),
        gcups_wall: Some(0.0),
        sim_time: None,
        gcups_sim: None,
        devices: slabs
            .iter()
            .map(|slab| DeviceReport {
                device: slab.device,
                name: platform.devices[slab.device].name.clone(),
                slab_j0: slab.j0,
                slab_width: slab.width,
                cells: 0,
                bytes_sent: 0,
                ring_out: None,
                wall_busy: None,
                sim_busy: None,
                sim_utilization: None,
                stall: None,
            })
            .collect(),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use megasw_gpusim::{catalog, Platform};
    use megasw_obs::ObsLevel;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};
    use megasw_sw::gotoh::gotoh_best;

    fn pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed + 1000).apply(&a);
        (a, b)
    }

    #[test]
    fn two_gpu_run_matches_reference() {
        let (a, b) = pair(2_000, 1);
        let report = run_pipeline(
            a.codes(),
            b.codes(),
            &Platform::env1(),
            &RunConfig::test_default(),
        )
        .unwrap();
        assert_eq!(
            report.best,
            gotoh_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        assert_eq!(report.devices.len(), 2);
        assert!(report.gcups_wall.unwrap() > 0.0);
        assert!(report.total_bytes_transferred() > 0);
    }

    #[test]
    fn three_heterogeneous_gpus_match_reference() {
        let (a, b) = pair(3_000, 2);
        let report = run_pipeline(
            a.codes(),
            b.codes(),
            &Platform::env2(),
            &RunConfig::test_default(),
        )
        .unwrap();
        assert_eq!(
            report.best,
            gotoh_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        // Proportional split: Titan slab wider than K20 slab.
        assert!(report.devices[0].slab_width > report.devices[2].slab_width);
    }

    #[test]
    fn single_device_platform_works() {
        let (a, b) = pair(1_000, 3);
        let report = run_pipeline(
            a.codes(),
            b.codes(),
            &Platform::single(catalog::gtx680()),
            &RunConfig::test_default(),
        )
        .unwrap();
        assert_eq!(
            report.best,
            gotoh_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        assert_eq!(report.devices.len(), 1);
        assert_eq!(report.total_bytes_transferred(), 0);
    }

    #[test]
    fn capacity_one_ring_still_correct() {
        let (a, b) = pair(1_500, 4);
        let cfg = RunConfig::test_default().with_buffer_capacity(1);
        let report = run_pipeline(a.codes(), b.codes(), &Platform::env2(), &cfg).unwrap();
        assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
    }

    #[test]
    fn many_devices_on_small_matrix() {
        // 8 devices, matrix narrower than 8 block columns: devices dropped.
        let (a, b) = pair(200, 5);
        let p = Platform::homogeneous(catalog::m2090(), 8);
        let cfg = RunConfig::test_default(); // 32-wide blocks → ≤ 7 bcols
        let report = run_pipeline(a.codes(), b.codes(), &p, &cfg).unwrap();
        assert_eq!(report.best, gotoh_best(a.codes(), b.codes(), &cfg.scheme));
        let bcols = b.len().div_ceil(cfg.block_w);
        assert_eq!(report.devices.len(), bcols.min(8));
    }

    #[test]
    fn empty_sequences() {
        let p = Platform::env1();
        let cfg = RunConfig::test_default();
        let r1 = run_pipeline(&[], &[], &p, &cfg).unwrap();
        assert_eq!(r1.best, BestCell::ZERO);
        let (a, _) = pair(100, 6);
        let r2 = run_pipeline(a.codes(), &[], &p, &cfg).unwrap();
        assert_eq!(r2.best, BestCell::ZERO);
        let r3 = run_pipeline(&[], a.codes(), &p, &cfg).unwrap();
        assert_eq!(r3.best, BestCell::ZERO);
    }

    #[test]
    fn invalid_config_rejected() {
        let (a, b) = pair(100, 7);
        let bad = RunConfig::test_default().with_buffer_capacity(0);
        match run_pipeline(a.codes(), b.codes(), &Platform::env1(), &bad) {
            Err(PipelineError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_invalid_config_with_megasw_error() {
        let (a, b) = pair(100, 7);
        let bad = RunConfig::test_default().with_buffer_capacity(0);
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(bad)
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::InvalidConfig(_))
        ));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn fault_in_middle_device_propagates_cleanly() {
        let (a, b) = pair(2_000, 8);
        let fault = FaultPlan {
            device: 1,
            fail_at_block_row: 5,
        };
        let err = run_pipeline_with_faults(
            a.codes(),
            b.codes(),
            &Platform::env2(),
            &RunConfig::test_default(),
            Some(fault),
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::DeviceFault {
                device: 1,
                block_row: 5
            }
        );
    }

    #[test]
    fn fault_in_first_device_at_row_zero() {
        let (a, b) = pair(1_000, 9);
        let err = run_pipeline_with_faults(
            a.codes(),
            b.codes(),
            &Platform::env1(),
            &RunConfig::test_default(),
            Some(FaultPlan {
                device: 0,
                fail_at_block_row: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::DeviceFault { device: 0, .. }));
    }

    #[test]
    fn builder_fault_injection_matches_wrapper() {
        let (a, b) = pair(1_000, 9);
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .faults(FaultPlan {
                device: 0,
                fail_at_block_row: 0,
            })
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::DeviceFault { device: 0, .. })
        ));
    }

    #[test]
    fn ring_stats_show_flow() {
        let (a, b) = pair(2_000, 10);
        let cfg = RunConfig::test_default().with_buffer_capacity(2);
        let report = run_pipeline(a.codes(), b.codes(), &Platform::env1(), &cfg).unwrap();
        let ring = report.devices[0].ring_out.as_ref().unwrap();
        let rows = 2_000usize.div_ceil(cfg.block_h) as u64;
        assert_eq!(ring.pushed, rows);
        assert_eq!(ring.popped, rows);
        assert!(ring.max_occupancy <= 2);
    }

    #[test]
    fn builder_matches_deprecated_wrappers_bit_for_bit() {
        let (a, b) = pair(2_000, 11);
        let cfg = RunConfig::test_default();
        for (platform, semantics) in [
            (Platform::env1(), Semantics::Local),
            (Platform::env2(), Semantics::Local),
            (Platform::env1(), Semantics::Anchored),
        ] {
            let from_builder = PipelineRun::new(a.codes(), b.codes(), &platform)
                .config(cfg.clone())
                .semantics(semantics)
                .run()
                .unwrap();
            let from_wrapper = match semantics {
                Semantics::Local => run_pipeline(a.codes(), b.codes(), &platform, &cfg).unwrap(),
                Semantics::Anchored => {
                    run_pipeline_anchored(a.codes(), b.codes(), &platform, &cfg).unwrap()
                }
            };
            assert_eq!(from_builder.best, from_wrapper.best);
            assert_eq!(from_builder.total_cells, from_wrapper.total_cells);
        }
    }

    #[test]
    fn threaded_stall_breakdown_sums_to_wall_minus_busy() {
        let (a, b) = pair(3_000, 12);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(RunConfig::test_default())
            .run()
            .unwrap();
        let wall_ns = report.wall_time.unwrap().as_nanos() as u64;
        assert_eq!(report.devices.len(), 3);
        for d in &report.devices {
            let bd = d.stall.expect("threaded runs report stalls");
            let busy_ns = d.wall_busy.unwrap().as_nanos() as u64;
            assert_eq!(
                bd.total().as_nanos(),
                wall_ns - busy_ns,
                "device {}: {bd}",
                d.device
            );
        }
    }

    #[test]
    fn observer_collects_kernel_and_ring_spans() {
        let (a, b) = pair(2_000, 13);
        let obs = Recorder::new(ObsLevel::Full);
        let cfg = RunConfig::test_default();
        let rows = 2_000usize.div_ceil(cfg.block_h);
        PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .observer(obs.clone())
            .run()
            .unwrap();
        let spans = obs.spans();
        let kernels = spans.iter().filter(|s| s.kind == ObsKind::Kernel).count();
        // Two devices, one kernel span per device per block-row.
        assert_eq!(kernels, 2 * rows);
        assert!(spans.iter().any(|s| s.kind == ObsKind::RingPush));
        assert!(spans.iter().any(|s| s.kind == ObsKind::RingPopWait));
        // Device attribution covers both lanes.
        assert!(spans.iter().any(|s| s.device == Some(0)));
        assert!(spans.iter().any(|s| s.device == Some(1)));
        // Kernel spans on the consumer lane carry block-row attribution.
        assert!(spans
            .iter()
            .filter(|s| s.device == Some(1) && s.kind == ObsKind::Kernel)
            .all(|s| s.block_row.is_some()));
    }

    #[test]
    fn live_telemetry_reports_exact_totals() {
        let (a, b) = pair(2_000, 15);
        let cfg = RunConfig::test_default();
        let rows = 2_000usize.div_ceil(cfg.block_h) as u64;
        let total = (a.codes().len() * b.codes().len()) as u64;
        let live = LiveTelemetry::new(2, total);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .live(Arc::clone(&live))
            .run()
            .unwrap();
        let s = live.snapshot();
        assert_eq!(s.cells_done() as u128, report.total_cells);
        assert!((s.fraction_done() - 1.0).abs() < 1e-12);
        for d in &s.devices {
            assert_eq!(d.rows_total, rows);
            assert_eq!(d.rows_done, rows);
            assert_eq!(d.ring_occupancy, 0, "rings drain by the end");
            assert!(d.busy_ns > 0);
        }
    }

    #[test]
    fn live_handle_sized_for_platform_tolerates_dropped_slabs() {
        // 8-device platform, matrix too narrow for 8 slabs: the extra live
        // slots just stay at zero.
        let (a, b) = pair(200, 16);
        let p = Platform::homogeneous(catalog::m2090(), 8);
        let cfg = RunConfig::test_default();
        let total = (a.codes().len() * b.codes().len()) as u64;
        let live = LiveTelemetry::new(8, total);
        PipelineRun::new(a.codes(), b.codes(), &p)
            .config(cfg)
            .live(Arc::clone(&live))
            .run()
            .unwrap();
        let s = live.snapshot();
        assert_eq!(s.cells_done(), total);
        assert!(s.devices.iter().any(|d| d.rows_total == 0));
        assert!((s.fraction_done() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_observer_records_nothing_but_stalls_still_computed() {
        let (a, b) = pair(1_000, 14);
        let obs = Recorder::disabled();
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .observer(obs.clone())
            .run()
            .unwrap();
        assert!(obs.is_empty());
        assert!(report.devices.iter().all(|d| d.stall.is_some()));
    }
}
