//! Schema-versioned benchmark artifacts and regression diffing.
//!
//! The bench harness prints human-readable tables; this module is the
//! machine-readable half of the perf story. `bench-artifact` serializes
//! one run's results as `BENCH_<n>.json` — per-experiment GCUPS samples,
//! the stall breakdown, span-duration quantiles and a host fingerprint —
//! and `bench-diff` compares two artifacts, exiting nonzero when the
//! current run regresses past a threshold. CI keeps a committed baseline
//! and shape-checks every smoke run against it, so schema drift and perf
//! cliffs both fail loudly instead of rotting in a table nobody reads.
//!
//! Everything here round-trips through the dependency-free JSON parser in
//! `megasw_obs::json`; the writer is the only JSON producer, so the format
//! stays line-stable and diffable.

use megasw::prelude::{KernelSelection, MetricsRegistry};
use megasw_obs::json::{self, escape, Value};
use std::fmt::Write as _;

/// Identifies the artifact format. Bump [`SCHEMA_VERSION`] on any breaking
/// change to the JSON shape; `bench-diff` refuses to compare versions it
/// does not understand.
pub const SCHEMA_NAME: &str = "megasw-bench-artifact";
/// v2: every experiment carries a `recovery` object (recoveries,
/// rewound_cells, checkpoints) so fault-tolerance regressions are tracked
/// alongside throughput.
///
/// v3: every experiment also carries a `pruning` object (tiles pruned /
/// total, cells skipped, pruned fraction). The fraction is *informational*:
/// `bench-diff` prints its drift but never counts it as a performance
/// regression — pruned work is work legitimately not done.
///
/// v4: every experiment also carries a `kernel` object (`dispatch` as
/// requested, `resolved` as the engine that actually executed — e.g.
/// `auto`/`avx2`), so a GCUPS delta caused by dispatch drift (say, a CI
/// host losing AVX2) is distinguishable from a real kernel regression.
///
/// v5: every experiment also carries an `attribution` object — the
/// fine-grained per-phase wall-clock attribution (compute / wait_input /
/// wait_output / checkpoint / prune_skip / simd_rescue / other) summed
/// across devices, in nanoseconds — plus a top-level `simd_rescues`
/// counter. A GCUPS regression now arrives with the phase that ate the
/// time attached.
///
/// v6: every experiment also carries a `rebalance` object (migrations,
/// moved_columns, evaluations) — the checkpoint-boundary dynamic
/// repartitioning accounting, all zero when rebalance is off — so the
/// drifting-clock anchor's recovered makespan is tracked alongside the
/// static-slab experiments.
///
/// v7: every experiment also carries a `batch` object (pairs / small /
/// large / bins / requeued plus the DES twin's `packing_speedup`) — the
/// many-pair batch engine's accounting, all zero for one-pair experiments
/// — so the `batch.env2.3gpu` anchor's inter-task packing win is tracked
/// like every other behavioural invariant.
///
/// v8: every experiment also carries a `service` object (`jobs`,
/// `p50_ms`, `p99_ms`, `queue_peak`) — the resident alignment service's
/// per-job latency SLOs and queue-depth high-water mark, all zero for
/// experiments that never go through the job queue — so a scheduling or
/// queueing regression in `megasw serve` is caught next to the raw
/// kernel numbers.
pub const SCHEMA_VERSION: u64 = 8;

/// Where the numbers came from: enough to tell two hosts apart, not enough
/// to identify anyone.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    pub os: String,
    pub arch: String,
    pub cpus: u64,
}

impl HostInfo {
    /// Fingerprint the current host.
    pub fn current() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// One named quantile summary (typically a span-duration histogram).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantileSummary {
    pub name: String,
    pub count: u64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// One benchmark experiment's results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Experiment {
    /// Stable identifier, e.g. `pipeline.env1.2gpu`.
    pub name: String,
    /// DP cells per sample.
    pub cells: u64,
    /// GCUPS of the median / fastest / slowest sample.
    pub gcups_median: f64,
    pub gcups_min: f64,
    pub gcups_max: f64,
    /// Summed stall accounting across devices, nanoseconds.
    pub stall_startup_ns: u64,
    pub stall_input_ns: u64,
    pub stall_drain_ns: u64,
    /// Fault-recovery accounting (all zero for fault-free experiments).
    pub recoveries_total: u64,
    pub rewound_cells: u64,
    pub checkpoints_taken: u64,
    /// Block-pruning accounting (all zero when pruning is off).
    pub tiles_pruned: u64,
    pub tiles_total: u64,
    pub cells_skipped: u64,
    pub pruned_fraction: f64,
    /// Checkpoint-boundary rebalance accounting (all zero when rebalance
    /// is off).
    pub rebalance_migrations: u64,
    pub rebalance_moved_columns: u64,
    pub rebalance_evaluations: u64,
    /// DP engine selection: the dispatch that was requested (`auto`,
    /// `scalar`, `sse41`, `avx2`) and the engine that actually executed.
    pub kernel_dispatch: String,
    pub kernel_resolved: String,
    /// Per-phase wall-clock attribution summed across devices,
    /// nanoseconds (all zero when the producing run did not attribute).
    pub attr_compute_ns: u64,
    pub attr_wait_input_ns: u64,
    pub attr_wait_output_ns: u64,
    pub attr_checkpoint_ns: u64,
    pub attr_prune_skip_ns: u64,
    pub attr_simd_rescue_ns: u64,
    pub attr_other_ns: u64,
    /// SIMD overflow rescues executed across the run.
    pub simd_rescues: u64,
    /// Many-pair batch accounting (all zero for one-pair experiments).
    pub batch_pairs: u64,
    pub batch_small: u64,
    pub batch_large: u64,
    pub batch_bins: u64,
    pub batch_requeued: u64,
    /// DES twin packing speedup: packed batch makespan vs aligning every
    /// pair serially on the full platform (0 when not a batch experiment).
    pub batch_packing_speedup: f64,
    /// Resident-service accounting (all zero for experiments that bypass
    /// the job queue): jobs completed, per-job latency percentiles in
    /// milliseconds, and the queue-depth high-water mark.
    pub service_jobs: u64,
    pub service_p50_ms: f64,
    pub service_p99_ms: f64,
    pub service_queue_peak: u64,
    /// Span-duration quantiles, in name order.
    pub quantiles: Vec<QuantileSummary>,
}

impl Experiment {
    /// Record which DP engine a run requested and got.
    pub fn with_kernel(mut self, selection: &KernelSelection) -> Experiment {
        self.kernel_dispatch = selection.dispatch.name().to_string();
        self.kernel_resolved = selection.resolved.name().to_string();
        self
    }

    /// Pull the stall counters and every `span.*.duration_ns` histogram out
    /// of a run's metrics registry.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Experiment {
        self.stall_startup_ns = metrics.counter("stall.startup_ns").unwrap_or(0);
        self.stall_input_ns = metrics.counter("stall.input_ns").unwrap_or(0);
        self.stall_drain_ns = metrics.counter("stall.drain_ns").unwrap_or(0);
        self.recoveries_total = metrics.counter("recoveries_total").unwrap_or(0);
        self.rewound_cells = metrics.counter("rewound_cells").unwrap_or(0);
        self.checkpoints_taken = metrics.counter("checkpoints_taken").unwrap_or(0);
        self.tiles_pruned = metrics.counter("pruning.tiles_pruned").unwrap_or(0);
        self.tiles_total = metrics.counter("pruning.tiles_total").unwrap_or(0);
        self.cells_skipped = metrics.counter("pruning.cells_skipped").unwrap_or(0);
        self.pruned_fraction = if self.tiles_total > 0 {
            self.tiles_pruned as f64 / self.tiles_total as f64
        } else {
            0.0
        };
        self.rebalance_migrations = metrics.counter("rebalance.migrations_total").unwrap_or(0);
        self.rebalance_moved_columns = metrics.counter("rebalance.moved_columns").unwrap_or(0);
        self.rebalance_evaluations = metrics.counter("rebalance.evaluations").unwrap_or(0);
        self.attr_compute_ns = metrics.counter("attr.compute_ns").unwrap_or(0);
        self.attr_wait_input_ns = metrics.counter("attr.wait_input_ns").unwrap_or(0);
        self.attr_wait_output_ns = metrics.counter("attr.wait_output_ns").unwrap_or(0);
        self.attr_checkpoint_ns = metrics.counter("attr.checkpoint_ns").unwrap_or(0);
        self.attr_prune_skip_ns = metrics.counter("attr.prune_skip_ns").unwrap_or(0);
        self.attr_simd_rescue_ns = metrics.counter("attr.simd_rescue_ns").unwrap_or(0);
        self.attr_other_ns = metrics.counter("attr.other_ns").unwrap_or(0);
        self.simd_rescues = metrics.counter("kernel.simd_rescues").unwrap_or(0);
        self.batch_pairs = metrics.counter("batch.pairs_total").unwrap_or(0);
        self.batch_small = metrics.counter("batch.pairs_small").unwrap_or(0);
        self.batch_large = metrics.counter("batch.pairs_large").unwrap_or(0);
        self.batch_bins = metrics.counter("batch.bins").unwrap_or(0);
        self.batch_requeued = metrics.counter("batch.requeued_total").unwrap_or(0);
        self.service_jobs = metrics.counter("service.jobs_completed").unwrap_or(0);
        self.service_p50_ms = metrics.counter("service.job_latency_p50_ms").unwrap_or(0) as f64;
        self.service_p99_ms = metrics.counter("service.job_latency_p99_ms").unwrap_or(0) as f64;
        self.service_queue_peak = metrics.counter("service.queue_peak").unwrap_or(0);
        for (name, h) in metrics.histograms() {
            if name.starts_with("span.") && name.ends_with(".duration_ns") {
                self.quantiles.push(QuantileSummary {
                    name: name.to_string(),
                    count: h.count,
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                });
            }
        }
        self
    }
}

/// A complete artifact: schema header, host fingerprint, experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    pub schema_version: u64,
    pub host: HostInfo,
    /// Samples per experiment (the `MEGASW_BENCH_SAMPLES` knob).
    pub samples: u64,
    pub experiments: Vec<Experiment>,
}

impl Artifact {
    pub fn new(samples: u64) -> Artifact {
        Artifact {
            schema_version: SCHEMA_VERSION,
            host: HostInfo::current(),
            samples,
            experiments: Vec::new(),
        }
    }

    /// Serialize to the canonical JSON layout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA_NAME}\",");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(
            out,
            "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},",
            escape(&self.host.os),
            escape(&self.host.arch),
            self.host.cpus
        );
        let _ = writeln!(out, "  \"samples\": {},", self.samples);
        out.push_str("  \"experiments\": [");
        for (i, e) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"name\": \"{}\", \"cells\": {}, ",
                escape(&e.name),
                e.cells
            );
            let _ = write!(
                out,
                "\"gcups\": {{\"median\": {}, \"min\": {}, \"max\": {}}}, ",
                num(e.gcups_median),
                num(e.gcups_min),
                num(e.gcups_max)
            );
            let _ = write!(
                out,
                "\"stall_ns\": {{\"startup\": {}, \"input\": {}, \"drain\": {}}}, ",
                e.stall_startup_ns, e.stall_input_ns, e.stall_drain_ns
            );
            let _ = write!(
                out,
                "\"recovery\": {{\"recoveries\": {}, \"rewound_cells\": {}, \"checkpoints\": {}}}, ",
                e.recoveries_total, e.rewound_cells, e.checkpoints_taken
            );
            let _ = write!(
                out,
                "\"pruning\": {{\"tiles_pruned\": {}, \"tiles_total\": {}, \"cells_skipped\": {}, \"pruned_fraction\": {}}}, ",
                e.tiles_pruned,
                e.tiles_total,
                e.cells_skipped,
                num(e.pruned_fraction)
            );
            let _ = write!(
                out,
                "\"rebalance\": {{\"migrations\": {}, \"moved_columns\": {}, \"evaluations\": {}}}, ",
                e.rebalance_migrations, e.rebalance_moved_columns, e.rebalance_evaluations
            );
            let _ = write!(
                out,
                "\"kernel\": {{\"dispatch\": \"{}\", \"resolved\": \"{}\"}}, ",
                escape(&e.kernel_dispatch),
                escape(&e.kernel_resolved)
            );
            let _ = write!(
                out,
                "\"attribution\": {{\"compute\": {}, \"wait_input\": {}, \"wait_output\": {}, \"checkpoint\": {}, \"prune_skip\": {}, \"simd_rescue\": {}, \"other\": {}}}, ",
                e.attr_compute_ns,
                e.attr_wait_input_ns,
                e.attr_wait_output_ns,
                e.attr_checkpoint_ns,
                e.attr_prune_skip_ns,
                e.attr_simd_rescue_ns,
                e.attr_other_ns
            );
            let _ = write!(out, "\"simd_rescues\": {}, ", e.simd_rescues);
            let _ = write!(
                out,
                "\"batch\": {{\"pairs\": {}, \"small\": {}, \"large\": {}, \"bins\": {}, \"requeued\": {}, \"packing_speedup\": {}}}, ",
                e.batch_pairs,
                e.batch_small,
                e.batch_large,
                e.batch_bins,
                e.batch_requeued,
                num(e.batch_packing_speedup)
            );
            let _ = write!(
                out,
                "\"service\": {{\"jobs\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"queue_peak\": {}}}, ",
                e.service_jobs,
                num(e.service_p50_ms),
                num(e.service_p99_ms),
                e.service_queue_peak
            );
            out.push_str("\"quantiles\": {");
            for (qi, q) in e.quantiles.iter().enumerate() {
                if qi > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "\"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    escape(&q.name),
                    q.count,
                    num(q.p50),
                    num(q.p90),
                    num(q.p99)
                );
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse and structurally validate an artifact document.
    pub fn parse(text: &str) -> Result<Artifact, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing \"schema\" member")?;
        if schema != SCHEMA_NAME {
            return Err(format!("not a bench artifact (schema {schema:?})"));
        }
        let schema_version = req_u64(&v, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build understands {SCHEMA_VERSION})"
            ));
        }
        let host = v.get("host").ok_or("missing \"host\" member")?;
        let host = HostInfo {
            os: req_str(host, "os")?,
            arch: req_str(host, "arch")?,
            cpus: req_u64(host, "cpus")?,
        };
        let samples = req_u64(&v, "samples")?;
        let mut experiments = Vec::new();
        let exps = v
            .get("experiments")
            .and_then(Value::as_array)
            .ok_or("missing \"experiments\" array")?;
        for (i, e) in exps.iter().enumerate() {
            let ctx = |m: &str| format!("experiment {i}: {m}");
            let gcups = e.get("gcups").ok_or_else(|| ctx("missing \"gcups\""))?;
            let stall = e
                .get("stall_ns")
                .ok_or_else(|| ctx("missing \"stall_ns\""))?;
            let recovery = e
                .get("recovery")
                .ok_or_else(|| ctx("missing \"recovery\""))?;
            let pruning = e.get("pruning").ok_or_else(|| ctx("missing \"pruning\""))?;
            let rebalance = e
                .get("rebalance")
                .ok_or_else(|| ctx("missing \"rebalance\""))?;
            let kernel = e.get("kernel").ok_or_else(|| ctx("missing \"kernel\""))?;
            let attribution = e
                .get("attribution")
                .ok_or_else(|| ctx("missing \"attribution\""))?;
            let batch = e.get("batch").ok_or_else(|| ctx("missing \"batch\""))?;
            let service = e.get("service").ok_or_else(|| ctx("missing \"service\""))?;
            let mut quantiles = Vec::new();
            if let Some(qs) = e.get("quantiles").and_then(Value::as_object) {
                for (name, q) in qs {
                    quantiles.push(QuantileSummary {
                        name: name.clone(),
                        count: req_u64(q, "count").map_err(|m| ctx(&m))?,
                        p50: req_f64(q, "p50").map_err(|m| ctx(&m))?,
                        p90: req_f64(q, "p90").map_err(|m| ctx(&m))?,
                        p99: req_f64(q, "p99").map_err(|m| ctx(&m))?,
                    });
                }
            } else {
                return Err(ctx("missing \"quantiles\" object"));
            }
            experiments.push(Experiment {
                name: req_str(e, "name").map_err(|m| ctx(&m))?,
                cells: req_u64(e, "cells").map_err(|m| ctx(&m))?,
                gcups_median: req_f64(gcups, "median").map_err(|m| ctx(&m))?,
                gcups_min: req_f64(gcups, "min").map_err(|m| ctx(&m))?,
                gcups_max: req_f64(gcups, "max").map_err(|m| ctx(&m))?,
                stall_startup_ns: req_u64(stall, "startup").map_err(|m| ctx(&m))?,
                stall_input_ns: req_u64(stall, "input").map_err(|m| ctx(&m))?,
                stall_drain_ns: req_u64(stall, "drain").map_err(|m| ctx(&m))?,
                recoveries_total: req_u64(recovery, "recoveries").map_err(|m| ctx(&m))?,
                rewound_cells: req_u64(recovery, "rewound_cells").map_err(|m| ctx(&m))?,
                checkpoints_taken: req_u64(recovery, "checkpoints").map_err(|m| ctx(&m))?,
                tiles_pruned: req_u64(pruning, "tiles_pruned").map_err(|m| ctx(&m))?,
                tiles_total: req_u64(pruning, "tiles_total").map_err(|m| ctx(&m))?,
                cells_skipped: req_u64(pruning, "cells_skipped").map_err(|m| ctx(&m))?,
                pruned_fraction: req_f64(pruning, "pruned_fraction").map_err(|m| ctx(&m))?,
                rebalance_migrations: req_u64(rebalance, "migrations").map_err(|m| ctx(&m))?,
                rebalance_moved_columns: req_u64(rebalance, "moved_columns")
                    .map_err(|m| ctx(&m))?,
                rebalance_evaluations: req_u64(rebalance, "evaluations").map_err(|m| ctx(&m))?,
                kernel_dispatch: req_str(kernel, "dispatch").map_err(|m| ctx(&m))?,
                kernel_resolved: req_str(kernel, "resolved").map_err(|m| ctx(&m))?,
                attr_compute_ns: req_u64(attribution, "compute").map_err(|m| ctx(&m))?,
                attr_wait_input_ns: req_u64(attribution, "wait_input").map_err(|m| ctx(&m))?,
                attr_wait_output_ns: req_u64(attribution, "wait_output").map_err(|m| ctx(&m))?,
                attr_checkpoint_ns: req_u64(attribution, "checkpoint").map_err(|m| ctx(&m))?,
                attr_prune_skip_ns: req_u64(attribution, "prune_skip").map_err(|m| ctx(&m))?,
                attr_simd_rescue_ns: req_u64(attribution, "simd_rescue").map_err(|m| ctx(&m))?,
                attr_other_ns: req_u64(attribution, "other").map_err(|m| ctx(&m))?,
                simd_rescues: req_u64(e, "simd_rescues").map_err(|m| ctx(&m))?,
                batch_pairs: req_u64(batch, "pairs").map_err(|m| ctx(&m))?,
                batch_small: req_u64(batch, "small").map_err(|m| ctx(&m))?,
                batch_large: req_u64(batch, "large").map_err(|m| ctx(&m))?,
                batch_bins: req_u64(batch, "bins").map_err(|m| ctx(&m))?,
                batch_requeued: req_u64(batch, "requeued").map_err(|m| ctx(&m))?,
                batch_packing_speedup: req_f64(batch, "packing_speedup").map_err(|m| ctx(&m))?,
                service_jobs: req_u64(service, "jobs").map_err(|m| ctx(&m))?,
                service_p50_ms: req_f64(service, "p50_ms").map_err(|m| ctx(&m))?,
                service_p99_ms: req_f64(service, "p99_ms").map_err(|m| ctx(&m))?,
                service_queue_peak: req_u64(service, "queue_peak").map_err(|m| ctx(&m))?,
                quantiles,
            });
        }
        if experiments.is_empty() {
            return Err("artifact has no experiments".into());
        }
        Ok(Artifact {
            schema_version,
            host,
            samples,
            experiments,
        })
    }
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric \"{key}\" member"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric \"{key}\" member"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string \"{key}\" member"))
}

/// One experiment's baseline-versus-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDelta {
    pub name: String,
    pub baseline_gcups: f64,
    pub current_gcups: f64,
    /// Relative change in median GCUPS: positive = faster, negative =
    /// slower. `(current − baseline) / baseline`.
    pub delta: f64,
    /// Pruned-fraction drift in absolute points (`current − baseline`).
    /// Informational only: a pruning change is a behavioural signal, not a
    /// performance regression, so [`DiffReport::regressions`] ignores it.
    pub pruned_fraction_delta: f64,
    /// `Some((baseline, current))` when the resolved DP engine changed
    /// between the artifacts (e.g. `avx2` → `scalar`). Informational: it
    /// explains a GCUPS delta rather than being one.
    pub kernel_drift: Option<(String, String)>,
}

/// Result of diffing two artifacts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    pub deltas: Vec<ExperimentDelta>,
    /// Experiment names present only in the baseline / only in the current
    /// artifact. Either kind is a shape mismatch.
    pub only_in_baseline: Vec<String>,
    pub only_in_current: Vec<String>,
}

impl DiffReport {
    /// Experiments whose median GCUPS dropped by more than `threshold`
    /// (e.g. `0.05` = 5%).
    pub fn regressions(&self, threshold: f64) -> Vec<&ExperimentDelta> {
        self.deltas
            .iter()
            .filter(|d| d.delta < -threshold)
            .collect()
    }

    /// True when the two artifacts cover the same experiment set.
    pub fn shapes_match(&self) -> bool {
        self.only_in_baseline.is_empty() && self.only_in_current.is_empty()
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>10} {:>8}",
            "experiment", "baseline", "current", "delta"
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{:<32} {:>10.3} {:>10.3} {:>+7.1}%{}{}",
                d.name,
                d.baseline_gcups,
                d.current_gcups,
                100.0 * d.delta,
                if d.pruned_fraction_delta != 0.0 {
                    format!("  (pruned {:+.1} pp)", 100.0 * d.pruned_fraction_delta)
                } else {
                    String::new()
                },
                match &d.kernel_drift {
                    Some((was, now)) => format!("  (kernel {was} → {now})"),
                    None => String::new(),
                }
            );
        }
        for n in &self.only_in_baseline {
            let _ = writeln!(out, "{n:<32} (missing from current artifact)");
        }
        for n in &self.only_in_current {
            let _ = writeln!(out, "{n:<32} (new in current artifact)");
        }
        out
    }
}

/// Compare two artifacts by experiment name, on median GCUPS.
pub fn diff(baseline: &Artifact, current: &Artifact) -> DiffReport {
    let mut report = DiffReport::default();
    for b in &baseline.experiments {
        match current.experiments.iter().find(|c| c.name == b.name) {
            Some(c) => report.deltas.push(ExperimentDelta {
                name: b.name.clone(),
                baseline_gcups: b.gcups_median,
                current_gcups: c.gcups_median,
                delta: if b.gcups_median > 0.0 {
                    (c.gcups_median - b.gcups_median) / b.gcups_median
                } else {
                    0.0
                },
                pruned_fraction_delta: c.pruned_fraction - b.pruned_fraction,
                kernel_drift: if b.kernel_resolved != c.kernel_resolved {
                    Some((b.kernel_resolved.clone(), c.kernel_resolved.clone()))
                } else {
                    None
                },
            }),
            None => report.only_in_baseline.push(b.name.clone()),
        }
    }
    for c in &current.experiments {
        if !baseline.experiments.iter().any(|b| b.name == c.name) {
            report.only_in_current.push(c.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact(gcups: f64) -> Artifact {
        let mut a = Artifact::new(3);
        a.experiments.push(Experiment {
            name: "pipeline.env1.2gpu".into(),
            cells: 4_000_000,
            gcups_median: gcups,
            gcups_min: gcups * 0.9,
            gcups_max: gcups * 1.1,
            stall_startup_ns: 1_000,
            stall_input_ns: 2_000,
            stall_drain_ns: 3_000,
            recoveries_total: 1,
            rewound_cells: 4_096,
            checkpoints_taken: 12,
            tiles_pruned: 25,
            tiles_total: 100,
            cells_skipped: 250_000,
            pruned_fraction: 0.25,
            rebalance_migrations: 2,
            rebalance_moved_columns: 96,
            rebalance_evaluations: 5,
            kernel_dispatch: "auto".into(),
            kernel_resolved: "avx2".into(),
            attr_compute_ns: 7_000,
            attr_wait_input_ns: 2_000,
            attr_wait_output_ns: 500,
            attr_checkpoint_ns: 200,
            attr_prune_skip_ns: 100,
            attr_simd_rescue_ns: 50,
            attr_other_ns: 150,
            simd_rescues: 3,
            batch_pairs: 120,
            batch_small: 118,
            batch_large: 2,
            batch_bins: 8,
            batch_requeued: 1,
            batch_packing_speedup: 2.75,
            service_jobs: 22,
            service_p50_ms: 14.0,
            service_p99_ms: 90.0,
            service_queue_peak: 6,
            quantiles: vec![QuantileSummary {
                name: "span.kernel.duration_ns".into(),
                count: 40,
                p50: 1.0e6,
                p90: 1.5e6,
                p99: 2.0e6,
            }],
        });
        a.experiments.push(Experiment {
            name: "pipeline.env2.3gpu".into(),
            cells: 4_000_000,
            gcups_median: gcups * 2.0,
            gcups_min: gcups * 1.8,
            gcups_max: gcups * 2.2,
            ..Experiment::default()
        });
        a
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample_artifact(0.25);
        let parsed = Artifact::parse(&a.to_json()).unwrap();
        assert_eq!(a, parsed);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(Artifact::parse("not json").is_err());
        assert!(Artifact::parse("{}").is_err());
        assert!(Artifact::parse("{\"schema\": \"something-else\"}").is_err());
        // Wrong version is an explicit refusal, not a silent parse.
        let wrong = sample_artifact(1.0)
            .to_json()
            .replace("\"schema_version\": 8", "\"schema_version\": 999");
        let err = Artifact::parse(&wrong).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        // An empty experiment list carries no information.
        let empty = sample_artifact(1.0);
        let text = Artifact {
            experiments: Vec::new(),
            ..empty
        }
        .to_json();
        assert!(Artifact::parse(&text).is_err());
    }

    #[test]
    fn self_diff_reports_zero_change() {
        let a = sample_artifact(0.25);
        let report = diff(&a, &a);
        assert!(report.shapes_match());
        assert!(report.regressions(0.0).is_empty());
        assert!(report.deltas.iter().all(|d| d.delta == 0.0));
    }

    #[test]
    fn regression_is_flagged_past_the_threshold() {
        let base = sample_artifact(1.0);
        let slower = sample_artifact(0.8); // 20% down across the board
        let report = diff(&base, &slower);
        assert_eq!(report.regressions(0.05).len(), 2);
        assert!(report.regressions(0.25).is_empty());
        // Improvements never count as regressions.
        let faster = sample_artifact(1.5);
        assert!(diff(&base, &faster).regressions(0.05).is_empty());
    }

    #[test]
    fn shape_mismatches_are_reported_by_name() {
        let base = sample_artifact(1.0);
        let mut cur = sample_artifact(1.0);
        cur.experiments.remove(1);
        cur.experiments.push(Experiment {
            name: "pipeline.new".into(),
            ..base.experiments[0].clone()
        });
        let report = diff(&base, &cur);
        assert!(!report.shapes_match());
        assert_eq!(report.only_in_baseline, vec!["pipeline.env2.3gpu"]);
        assert_eq!(report.only_in_current, vec!["pipeline.new"]);
        let text = report.render();
        assert!(text.contains("missing from current"));
        assert!(text.contains("new in current"));
    }

    #[test]
    fn with_metrics_extracts_stalls_and_span_quantiles() {
        let mut m = MetricsRegistry::new();
        m.incr("stall.startup_ns", 11);
        m.incr("stall.input_ns", 22);
        m.incr("stall.drain_ns", 33);
        m.incr("recoveries_total", 2);
        m.incr("rewound_cells", 777);
        m.incr("checkpoints_taken", 9);
        m.incr("pruning.tiles_pruned", 30);
        m.incr("pruning.tiles_total", 120);
        m.incr("pruning.cells_skipped", 480_000);
        m.incr("rebalance.migrations_total", 3);
        m.incr("rebalance.moved_columns", 512);
        m.incr("rebalance.evaluations", 12);
        m.incr("attr.compute_ns", 9_000);
        m.incr("attr.wait_input_ns", 800);
        m.incr("attr.other_ns", 200);
        m.incr("kernel.simd_rescues", 4);
        m.incr("batch.pairs_total", 24);
        m.incr("batch.pairs_small", 23);
        m.incr("batch.pairs_large", 1);
        m.incr("batch.bins", 8);
        m.incr("batch.requeued_total", 2);
        m.incr("service.jobs_completed", 20);
        m.incr("service.job_latency_p50_ms", 12);
        m.incr("service.job_latency_p99_ms", 75);
        m.incr("service.queue_peak", 5);
        for v in [10.0, 20.0, 30.0] {
            m.observe("span.kernel.duration_ns", v);
        }
        m.observe("device.utilization", 0.9); // not a span — excluded
        let e = Experiment {
            name: "x".into(),
            cells: 1,
            gcups_median: 1.0,
            gcups_min: 1.0,
            gcups_max: 1.0,
            ..Experiment::default()
        }
        .with_metrics(&m);
        assert_eq!(e.stall_startup_ns, 11);
        assert_eq!(e.stall_input_ns, 22);
        assert_eq!(e.stall_drain_ns, 33);
        assert_eq!(e.recoveries_total, 2);
        assert_eq!(e.rewound_cells, 777);
        assert_eq!(e.checkpoints_taken, 9);
        assert_eq!(e.tiles_pruned, 30);
        assert_eq!(e.tiles_total, 120);
        assert_eq!(e.cells_skipped, 480_000);
        assert!((e.pruned_fraction - 0.25).abs() < 1e-12);
        assert_eq!(e.rebalance_migrations, 3);
        assert_eq!(e.rebalance_moved_columns, 512);
        assert_eq!(e.rebalance_evaluations, 12);
        assert_eq!(e.attr_compute_ns, 9_000);
        assert_eq!(e.attr_wait_input_ns, 800);
        assert_eq!(e.attr_other_ns, 200);
        assert_eq!(e.attr_checkpoint_ns, 0);
        assert_eq!(e.simd_rescues, 4);
        assert_eq!(e.batch_pairs, 24);
        assert_eq!(e.batch_small, 23);
        assert_eq!(e.batch_large, 1);
        assert_eq!(e.batch_bins, 8);
        assert_eq!(e.batch_requeued, 2);
        assert_eq!(e.batch_packing_speedup, 0.0); // set by the bench bin, not metrics
        assert_eq!(e.service_jobs, 20);
        assert_eq!(e.service_p50_ms, 12.0);
        assert_eq!(e.service_p99_ms, 75.0);
        assert_eq!(e.service_queue_peak, 5);
        assert_eq!(e.quantiles.len(), 1);
        assert_eq!(e.quantiles[0].name, "span.kernel.duration_ns");
        assert_eq!(e.quantiles[0].count, 3);
    }

    #[test]
    fn pruned_fraction_drift_is_reported_but_never_a_regression() {
        let base = sample_artifact(1.0);
        let mut cur = sample_artifact(1.0);
        cur.experiments[0].tiles_pruned = 60;
        cur.experiments[0].pruned_fraction = 0.60;
        let report = diff(&base, &cur);
        // Same GCUPS, very different pruning: visible in the table…
        assert!((report.deltas[0].pruned_fraction_delta - 0.35).abs() < 1e-12);
        assert!(
            report.render().contains("pruned +35.0 pp"),
            "{}",
            report.render()
        );
        // …but never flagged as a performance regression.
        assert!(report.regressions(0.0).is_empty());
    }

    #[test]
    fn kernel_drift_is_reported_but_never_a_regression() {
        let base = sample_artifact(1.0);
        let mut cur = sample_artifact(1.0);
        cur.experiments[0].kernel_resolved = "scalar".into();
        let report = diff(&base, &cur);
        assert_eq!(
            report.deltas[0].kernel_drift,
            Some(("avx2".into(), "scalar".into()))
        );
        assert_eq!(report.deltas[1].kernel_drift, None);
        assert!(
            report.render().contains("kernel avx2 → scalar"),
            "{}",
            report.render()
        );
        assert!(report.regressions(0.0).is_empty());
    }

    #[test]
    fn with_kernel_records_the_selection() {
        let e = Experiment::default().with_kernel(&KernelSelection::default());
        assert_eq!(e.kernel_dispatch, "auto");
        // Auto resolves to *some* engine; on x86-64 never an empty string.
        assert!(!e.kernel_resolved.is_empty());
    }
}
