//! K1 — the DP kernel zoo: per-kernel cell rates that anchor every other
//! number in the evaluation, plus the block-pruning and traceback
//! ablations. Throughput unit = DP cells.

use megasw::prelude::*;
use megasw::sw::antidiag::antidiag_best;
use megasw::sw::block::BlockInput;
use megasw::sw::border::{ColBorder, RowBorder};
use megasw::sw::grid::{run_sequential, BlockGrid};
use megasw::sw::prune::run_pruned;
use megasw_bench::{cached_pair_exact, harness::Group};

/// Every DP engine the host can execute, labelled by its resolved name.
fn engines() -> Vec<(&'static str, &'static dyn Kernel)> {
    [
        KernelDispatch::ForceScalar,
        KernelDispatch::ForceSse41,
        KernelDispatch::ForceAvx2,
    ]
    .into_iter()
    .filter_map(|d| kernel::select(d).ok().map(|k| (d.name(), k)))
    .collect()
}

fn bench_block_kernel() {
    let (a, b) = cached_pair_exact(4_096, 601);
    let scheme = ScoreScheme::cudalign();
    for (engine, k) in engines() {
        let group = Group::new(&format!("k1_block_kernel_{engine}")).samples(20);
        for side in [64usize, 256, 1_024, 4_096] {
            let top = RowBorder::zero(side);
            let left = ColBorder::zero(side);
            group.bench_cells(&format!("side_{side}"), (side * side) as u64, || {
                k.block(
                    BlockInput {
                        a_rows: &a.codes()[..side],
                        b_cols: &b.codes()[..side],
                        top: &top,
                        left: &left,
                        row_offset: 1,
                        col_offset: 1,
                    },
                    &scheme,
                )
                .best
            });
        }
    }
}

fn bench_whole_matrix_kernels() {
    let group = Group::new("k1_whole_matrix");
    let (a, b) = cached_pair_exact(4_096, 601);
    let scheme = ScoreScheme::cudalign();
    let cells = (a.len() * b.len()) as u64;

    group.bench_cells("gotoh_serial", cells, || {
        kernel::scalar().best(a.codes(), b.codes(), &scheme)
    });
    for (engine, k) in engines() {
        group.bench_cells(&format!("wavefront_{engine}"), cells, || {
            k.best(a.codes(), b.codes(), &scheme)
        });
    }
    group.bench_cells("antidiagonal_serial", cells, || {
        antidiag_best(a.codes(), b.codes(), &scheme)
    });
    let grid = BlockGrid::new(a.len(), b.len(), 512, 512);
    group.bench_cells("blocked_grid_512", cells, || {
        run_sequential(a.codes(), b.codes(), &grid, &scheme).best
    });
    group.bench_cells("blocked_grid_512_pruned", cells, || {
        run_pruned(a.codes(), b.codes(), &grid, &scheme).best
    });
    group.bench_cells("banded_w64", cells, || {
        kernel::scalar()
            .banded(a.codes(), b.codes(), &scheme, 64)
            .best
    });
}

fn bench_traceback() {
    let group = Group::new("k1_traceback");
    let (a, b) = cached_pair_exact(4_096, 602);
    let scheme = ScoreScheme::cudalign();
    group.bench("local_align_4k", || {
        local_align(a.codes(), b.codes(), &scheme).score
    });
}

fn main() {
    bench_block_kernel();
    bench_whole_matrix_kernels();
    bench_traceback();
}
