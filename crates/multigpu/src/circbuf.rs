//! The circular buffer.
//!
//! This is the communication mechanism the paper's abstract calls out: each
//! GPU streams the border columns of its slab to its right-hand neighbour
//! through a bounded ring. The producer pushes one border segment per
//! block-row as soon as the row's last tile finishes; the consumer pops one
//! segment before starting each of its own block-rows. The ring's capacity
//! is what decouples the two devices:
//!
//! * capacity 1 behaves like a synchronous hand-off (the producer blocks
//!   until the consumer has taken the previous segment);
//! * larger capacities let the producer run ahead, so transfer latency and
//!   consumer hiccups hide behind the producer's own computation.
//!
//! The implementation is a mutex + condvar bounded deque rather than a
//! lock-free ring: border segments are kilobytes, pushed thousands — not
//! millions — of times per second, so correctness, blocking semantics and
//! **occupancy statistics** (which the buffer-sensitivity figure needs)
//! matter more than nanosecond enqueue latency. Poisoning mirrors what a
//! failed device must do so neighbours blocked on the ring wake up with an
//! error instead of deadlocking.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a ring operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The other side poisoned the ring (its device failed).
    Poisoned,
    /// Push after `close()`.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    capacity: usize,
    closed: bool,
    poisoned: bool,
    // Statistics.
    pushed: u64,
    popped: u64,
    max_occupancy: usize,
    producer_blocks: u64,
    consumer_blocks: u64,
}

/// A bounded blocking SPSC ring carrying border segments between
/// neighbouring devices. Cloning the handle shares the ring.
///
/// ```
/// use megasw_multigpu::circbuf::CircularBuffer;
///
/// let ring = CircularBuffer::with_capacity(2);
/// let producer = {
///     let ring = ring.clone();
///     std::thread::spawn(move || {
///         for i in 0..100u32 {
///             ring.push(i).unwrap();
///         }
///         ring.close();
///     })
/// };
/// let mut received = 0u32;
/// while let Some(v) = ring.pop().unwrap() {
///     assert_eq!(v, received);
///     received += 1;
/// }
/// producer.join().unwrap();
/// assert_eq!(received, 100);
/// assert!(ring.stats().max_occupancy <= 2);
/// ```
#[derive(Debug)]
pub struct CircularBuffer<T> {
    inner: Arc<(Mutex<Inner<T>>, Condvar, Condvar)>,
}

impl<T> Clone for CircularBuffer<T> {
    fn clone(&self) -> Self {
        CircularBuffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Snapshot of ring statistics, taken after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Segments pushed over the ring's lifetime.
    pub pushed: u64,
    /// Segments popped.
    pub popped: u64,
    /// Highest occupancy ever observed.
    pub max_occupancy: usize,
    /// Times the producer found the ring full and had to wait.
    pub producer_blocks: u64,
    /// Times the consumer found the ring empty and had to wait.
    pub consumer_blocks: u64,
}

impl<T> CircularBuffer<T> {
    /// Create a ring with the given capacity (≥ 1).
    pub fn with_capacity(capacity: usize) -> CircularBuffer<T> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        CircularBuffer {
            inner: Arc::new((
                Mutex::new(Inner {
                    queue: VecDeque::with_capacity(capacity),
                    capacity,
                    closed: false,
                    poisoned: false,
                    pushed: 0,
                    popped: 0,
                    max_occupancy: 0,
                    producer_blocks: 0,
                    consumer_blocks: 0,
                }),
                Condvar::new(), // not_full  — producer waits here
                Condvar::new(), // not_empty — consumer waits here
            )),
        }
    }

    /// Blocking push. Waits while the ring is full.
    pub fn push(&self, item: T) -> Result<(), RingError> {
        let (lock, not_full, not_empty) = &*self.inner;
        let mut g = lock.lock();
        if g.queue.len() >= g.capacity && !g.poisoned {
            g.producer_blocks += 1;
        }
        while g.queue.len() >= g.capacity {
            if g.poisoned {
                return Err(RingError::Poisoned);
            }
            not_full.wait(&mut g);
        }
        if g.poisoned {
            return Err(RingError::Poisoned);
        }
        if g.closed {
            return Err(RingError::Closed);
        }
        g.queue.push_back(item);
        g.pushed += 1;
        g.max_occupancy = g.max_occupancy.max(g.queue.len());
        not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Waits while the ring is empty; returns `Ok(None)` once
    /// the ring is closed **and** drained.
    pub fn pop(&self) -> Result<Option<T>, RingError> {
        let (lock, not_full, not_empty) = &*self.inner;
        let mut g = lock.lock();
        if g.queue.is_empty() && !g.closed && !g.poisoned {
            g.consumer_blocks += 1;
        }
        loop {
            if g.poisoned {
                return Err(RingError::Poisoned);
            }
            if let Some(item) = g.queue.pop_front() {
                g.popped += 1;
                not_full.notify_one();
                return Ok(Some(item));
            }
            if g.closed {
                return Ok(None);
            }
            not_empty.wait(&mut g);
        }
    }

    /// Producer side is done: consumers drain the remaining items and then
    /// see `Ok(None)`.
    pub fn close(&self) {
        let (lock, _nf, not_empty) = &*self.inner;
        let mut g = lock.lock();
        g.closed = true;
        not_empty.notify_all();
    }

    /// Mark the ring failed; all blocked and future operations return
    /// [`RingError::Poisoned`].
    pub fn poison(&self) {
        let (lock, not_full, not_empty) = &*self.inner;
        let mut g = lock.lock();
        g.poisoned = true;
        not_full.notify_all();
        not_empty.notify_all();
    }

    /// Current occupancy (racy; for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.inner.0.lock().queue.len()
    }

    /// Is the ring currently empty? (racy; for tests/diagnostics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RingStats {
        let g = self.inner.0.lock();
        RingStats {
            pushed: g.pushed,
            popped: g.popped,
            max_occupancy: g.max_occupancy,
            producer_blocks: g.producer_blocks,
            consumer_blocks: g.consumer_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_preserved() {
        let ring = CircularBuffer::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        ring.close();
        let mut got = Vec::new();
        while let Ok(Some(v)) = ring.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn close_then_pop_drains_then_none() {
        let ring = CircularBuffer::with_capacity(2);
        ring.push("a").unwrap();
        ring.close();
        assert_eq!(ring.pop().unwrap(), Some("a"));
        assert_eq!(ring.pop().unwrap(), None);
        assert_eq!(ring.pop().unwrap(), None);
    }

    #[test]
    fn push_after_close_rejected() {
        let ring = CircularBuffer::with_capacity(2);
        ring.close();
        assert_eq!(ring.push(1), Err(RingError::Closed));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = CircularBuffer::<u32>::with_capacity(0);
    }

    #[test]
    fn producer_blocks_on_full_ring() {
        let ring = CircularBuffer::with_capacity(1);
        ring.push(0u32).unwrap();
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.push(1).unwrap())
        };
        // Give the producer time to block.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.pop().unwrap(), Some(0));
        producer.join().unwrap();
        assert_eq!(ring.pop().unwrap(), Some(1));
        let stats = ring.stats();
        assert_eq!(stats.pushed, 2);
        assert_eq!(stats.popped, 2);
        assert!(stats.producer_blocks >= 1);
    }

    #[test]
    fn consumer_blocks_until_producer_pushes() {
        let ring: CircularBuffer<u32> = CircularBuffer::with_capacity(2);
        let consumer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.pop().unwrap())
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
        assert!(ring.stats().consumer_blocks >= 1);
    }

    #[test]
    fn poison_wakes_blocked_producer() {
        let ring = CircularBuffer::with_capacity(1);
        ring.push(0u32).unwrap();
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.push(1))
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.poison();
        assert_eq!(producer.join().unwrap(), Err(RingError::Poisoned));
    }

    #[test]
    fn poison_wakes_blocked_consumer() {
        let ring: CircularBuffer<u32> = CircularBuffer::with_capacity(1);
        let consumer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        ring.poison();
        assert_eq!(consumer.join().unwrap(), Err(RingError::Poisoned));
    }

    #[test]
    fn stream_many_items_through_small_ring() {
        const N: u64 = 50_000;
        let ring = CircularBuffer::with_capacity(8);
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..N {
                    ring.push(i).unwrap();
                }
                ring.close();
            })
        };
        let mut expected = 0u64;
        while let Some(v) = ring.pop().unwrap() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
        let stats = ring.stats();
        assert_eq!(stats.pushed, N);
        assert_eq!(stats.popped, N);
        assert!(stats.max_occupancy <= 8);
    }

    #[test]
    fn max_occupancy_tracks_high_water_mark() {
        let ring = CircularBuffer::with_capacity(16);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        ring.pop().unwrap();
        ring.push(9).unwrap();
        assert_eq!(ring.stats().max_occupancy, 5);
    }
}
