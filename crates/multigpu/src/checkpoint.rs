//! Host-side checkpoint store and the recovery policy.
//!
//! Fault tolerance in the pipeline rests on one structural fact of the
//! block decomposition (see `sw::border`): the full-width bottom
//! [`RowBorder`](megasw_sw::border::RowBorder) of block-row `W − 1` — the
//! H and F lanes along matrix row `W · block_h` — together with the best
//! cell observed in rows `< W · block_h`, completely determines every DP
//! value in rows `≥ W · block_h`. We call that pair a **checkpoint wave**
//! `W`. Devices deposit their slab's segment of the bottom border here on
//! the configured [`CheckpointCadence`](crate::config::CheckpointCadence);
//! when a device dies, the coordinator rewinds to the newest wave to which
//! *every* slab of some attempt has contributed, reassembles the full-width
//! border from the segments, and restarts the survivors from it. Because
//! the DP is deterministic and the checkpointed lanes are exact (not
//! summaries), the resumed run is bit-identical to a fault-free run.
//!
//! Each segment also carries the depositing worker's **pruning watermark**
//! (DESIGN.md §10), so a resumed attempt can seed its workers with the
//! best-score knowledge the failed attempt had already propagated — pruning
//! composes with recovery instead of restarting cold.
//!
//! The store is deliberately dumb: a mutex around per-attempt logs. It is
//! written once per device per checkpoint wave — far off the per-block hot
//! path — so contention is irrelevant.

use megasw_sw::{BestCell, Score};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Knobs for the recovery driver. The checkpoint *cadence* lives on
/// [`KernelPolicy`](crate::config::KernelPolicy); this policy only bounds
/// how many failures a run tolerates before surfacing the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Give up (surface the original fault) after this many device
    /// failures in one run.
    pub max_device_failures: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_device_failures: 1,
        }
    }
}

/// One slab's contribution to a checkpoint wave: its segment of the bottom
/// border (H and F lanes, `width + 1` entries including the shared corner)
/// plus the best cell this device has seen since its attempt started and
/// its pruning watermark at deposit time.
#[derive(Debug, Clone)]
struct SlabCkpt {
    h: Vec<Score>,
    f: Vec<Score>,
    best: BestCell,
    watermark: Score,
}

/// The geometry a slab occupied when its attempt started; `j0` is the
/// 1-based first column, so the slab's border segment covers global border
/// indices `j0 − 1 ..= j0 − 1 + width`.
#[derive(Debug, Clone, Copy)]
struct SlabGeom {
    j0: usize,
    width: usize,
}

/// One attempt's checkpoint log. A wave is complete when every slab of
/// *this* attempt has contributed its segment.
#[derive(Debug)]
struct AttemptLog {
    /// Block-row the attempt started from (0 for the first attempt).
    start_row: usize,
    /// Best cell already established before this attempt began (merged
    /// from the checkpoint the attempt resumed from).
    base_best: BestCell,
    slabs: Vec<SlabGeom>,
    /// wave → per-slab contributions (indexed like `slabs`).
    waves: BTreeMap<usize, Vec<Option<SlabCkpt>>>,
}

/// A fully assembled, consistent checkpoint: the newest complete wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The wave index: the resumed attempt starts at block-row `wave`.
    pub wave: usize,
    /// Full-width H lane of the border row, `n + 1` entries.
    pub h: Vec<Score>,
    /// Full-width F lane of the border row, `n + 1` entries.
    pub f: Vec<Score>,
    /// Best cell over all rows above the border.
    pub best: BestCell,
    /// Highest pruning watermark any depositing worker held at this wave.
    /// Every watermark value was once an actually-observed cell score, so
    /// it never exceeds the true global best and is safe to seed resumed
    /// workers with (see DESIGN.md §10).
    pub watermark: Score,
}

/// Host-side store of border checkpoints, shared by the coordinator and
/// every worker of a recovering run.
#[derive(Debug)]
pub struct CheckpointStore {
    /// Full matrix width (columns of `b`); assembled lanes are `n + 1` long.
    n: usize,
    inner: Mutex<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    attempts: Vec<AttemptLog>,
    taken: u64,
}

impl CheckpointStore {
    /// An empty store for a matrix with `n` columns.
    pub fn new(n: usize) -> CheckpointStore {
        CheckpointStore {
            n,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Open the log for a new attempt covering `slabs` (as `(j0, width)`
    /// pairs in chain order) from `start_row`, with `base_best` already
    /// established above the resume border. Returns the attempt id to pass
    /// to [`CheckpointStore::record`].
    pub fn begin_attempt(
        &self,
        start_row: usize,
        base_best: BestCell,
        slabs: &[(usize, usize)],
    ) -> usize {
        let mut inner = self.inner.lock().unwrap();
        inner.attempts.push(AttemptLog {
            start_row,
            base_best,
            slabs: slabs
                .iter()
                .map(|&(j0, width)| SlabGeom { j0, width })
                .collect(),
            waves: BTreeMap::new(),
        });
        inner.attempts.len() - 1
    }

    /// Deposit slab `slab_idx`'s segment for `wave`: the H/F lanes of its
    /// bottom border (`width + 1` entries), the device's running best since
    /// the attempt started, and its current pruning watermark (0 when
    /// pruning is off).
    ///
    /// Takes slices and copies under the store lock, so workers can reuse
    /// one per-lane scratch buffer across block-rows instead of allocating
    /// a fresh `Vec` pair per deposit.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        attempt: usize,
        wave: usize,
        slab_idx: usize,
        h: &[Score],
        f: &[Score],
        best: BestCell,
        watermark: Score,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.taken += 1;
        let log = &mut inner.attempts[attempt];
        debug_assert!(wave > log.start_row, "wave {wave} not past the start row");
        debug_assert_eq!(h.len(), log.slabs[slab_idx].width + 1);
        let n_slabs = log.slabs.len();
        let entry = log.waves.entry(wave).or_insert_with(|| vec![None; n_slabs]);
        entry[slab_idx] = Some(SlabCkpt {
            h: h.to_vec(),
            f: f.to_vec(),
            best,
            watermark,
        });
    }

    /// Total segments deposited across the run (the `checkpoints_taken`
    /// counter).
    pub fn checkpoints_taken(&self) -> u64 {
        self.inner.lock().unwrap().taken
    }

    /// Assemble the newest *complete* wave across all attempts: the
    /// largest wave for which some attempt holds a segment from every one
    /// of its slabs. All attempts compute the same deterministic DP, so
    /// segments from any attempt are bit-identical and the newest complete
    /// wave — whichever attempt produced it — is globally valid.
    pub fn newest_complete(&self) -> Option<Checkpoint> {
        let inner = self.inner.lock().unwrap();
        let mut best_wave: Option<(usize, usize)> = None; // (wave, attempt)
        for (a_idx, log) in inner.attempts.iter().enumerate() {
            for (&wave, segs) in log.waves.iter().rev() {
                if segs.iter().all(Option::is_some) {
                    if best_wave.is_none_or(|(w, _)| wave > w) {
                        best_wave = Some((wave, a_idx));
                    }
                    break; // newest complete wave of this attempt found
                }
            }
        }
        let (wave, a_idx) = best_wave?;
        let log = &inner.attempts[a_idx];
        let segs = &log.waves[&wave];
        let mut h = vec![0; self.n + 1];
        let mut f = vec![0; self.n + 1];
        let mut best = log.base_best;
        let mut watermark = log.base_best.score;
        for (geom, seg) in log.slabs.iter().zip(segs.iter()) {
            let seg = seg.as_ref().expect("complete wave has every segment");
            // Slab segments overlap at shared corners; both writers hold
            // the same value, so last-write-wins is harmless.
            h[geom.j0 - 1..=geom.j0 - 1 + geom.width].copy_from_slice(&seg.h);
            f[geom.j0 - 1..=geom.j0 - 1 + geom.width].copy_from_slice(&seg.f);
            best = best.merge(seg.best);
            watermark = watermark.max(seg.watermark);
        }
        Some(Checkpoint {
            wave,
            h,
            f,
            best,
            watermark,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(width: usize, fill: Score) -> (Vec<Score>, Vec<Score>) {
        (vec![fill; width + 1], vec![fill - 1; width + 1])
    }

    #[test]
    fn empty_store_has_no_checkpoint() {
        let store = CheckpointStore::new(100);
        assert!(store.newest_complete().is_none());
        assert_eq!(store.checkpoints_taken(), 0);
    }

    #[test]
    fn incomplete_wave_is_not_served() {
        let store = CheckpointStore::new(10);
        let a = store.begin_attempt(0, BestCell::ZERO, &[(1, 6), (7, 4)]);
        let (h, f) = seg(6, 5);
        store.record(a, 4, 0, &h, &f, BestCell::ZERO, 0);
        assert!(store.newest_complete().is_none());
    }

    #[test]
    fn complete_wave_assembles_full_width_lanes() {
        let store = CheckpointStore::new(10);
        let a = store.begin_attempt(0, BestCell::ZERO, &[(1, 6), (7, 4)]);
        let (h0, f0) = seg(6, 5);
        let (h1, f1) = seg(4, 9);
        store.record(a, 4, 0, &h0, &f0, BestCell::new(3, 2, 2), 3);
        store.record(a, 4, 1, &h1, &f1, BestCell::new(7, 3, 8), 7);
        let ck = store.newest_complete().unwrap();
        assert_eq!(ck.wave, 4);
        assert_eq!(ck.h.len(), 11);
        // Index 6 is the shared corner: slab 1's copy lands last.
        assert_eq!(ck.h[0..6], [5; 6]);
        assert_eq!(ck.h[6..11], [9; 5]);
        assert_eq!(ck.best, BestCell::new(7, 3, 8));
        // The assembled watermark is the max over segment watermarks.
        assert_eq!(ck.watermark, 7);
        assert_eq!(store.checkpoints_taken(), 2);
    }

    #[test]
    fn newest_complete_wave_wins_across_attempts() {
        let store = CheckpointStore::new(8);
        let a0 = store.begin_attempt(0, BestCell::ZERO, &[(1, 4), (5, 4)]);
        let (h, f) = seg(4, 1);
        store.record(a0, 2, 0, &h, &f, BestCell::ZERO, 0);
        store.record(a0, 2, 1, &h, &f, BestCell::ZERO, 0);
        // Attempt 0 also has a newer but incomplete wave.
        store.record(a0, 4, 0, &h, &f, BestCell::ZERO, 0);
        // A second attempt (one surviving slab) completes wave 6.
        let a1 = store.begin_attempt(2, BestCell::new(9, 1, 1), &[(1, 8)]);
        let (h8, f8) = seg(8, 2);
        store.record(a1, 6, 0, &h8, &f8, BestCell::ZERO, 4);
        let ck = store.newest_complete().unwrap();
        assert_eq!(ck.wave, 6);
        assert_eq!(ck.h, vec![2; 9]);
        // base_best of the serving attempt is folded in.
        assert_eq!(ck.best, BestCell::new(9, 1, 1));
        // The watermark floor is the serving attempt's base best score.
        assert_eq!(ck.watermark, 9);
    }
}
