//! Property-based tests for the DP kernels: the heart of the correctness
//! argument. Every kernel is an implementation of the same recurrences, so
//! on arbitrary inputs they must agree bit-for-bit — including the
//! deterministic tie-break — and every score must satisfy the structural
//! invariants of local alignment.

use megasw_sw::antidiag::antidiag_best;
use megasw_sw::banded::{banded_adaptive, banded_best};
use megasw_sw::block::{compute_block, BlockInput};
use megasw_sw::border::{ColBorder, RowBorder};
use megasw_sw::cell::BestCell;
use megasw_sw::gotoh::gotoh_best;
use megasw_sw::grid::{run_sequential, BlockGrid};
use megasw_sw::prune::run_pruned;
use megasw_sw::reference::reference_best;
use megasw_sw::scoring::ScoreScheme;
use megasw_sw::traceback::{local_align, myers_miller, score_of_ops, global_score};
use proptest::prelude::*;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=4, 0..max_len)
}

/// A *similar* pair: b derived from a by point edits, so alignments are
/// long and tie-breaks are stressed.
fn similar_pair(max_len: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(max_len), any::<u64>()).prop_map(|(a, seed)| {
        let mut b = a.clone();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        if !b.is_empty() {
            let edits = next() % (b.len() / 4 + 1);
            for _ in 0..edits {
                let pos = next() % b.len();
                match next() % 3 {
                    0 => b[pos] = (next() % 4) as u8,
                    1 => {
                        b.remove(pos);
                        if b.is_empty() {
                            break;
                        }
                    }
                    _ => b.insert(pos, (next() % 4) as u8),
                }
            }
        }
        (a, b)
    })
}

fn schemes() -> impl Strategy<Value = ScoreScheme> {
    prop_oneof![
        Just(ScoreScheme::cudalign()),
        Just(ScoreScheme::lenient()),
        (1i32..4, -4i32..0, 0i32..5, 1i32..4).prop_map(|(m, x, o, e)| ScoreScheme {
            match_score: m,
            mismatch_score: x,
            gap_open: o,
            gap_extend: e,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gotoh_equals_reference((a, b) in similar_pair(80), scheme in schemes()) {
        prop_assert_eq!(
            gotoh_best(&a, &b, &scheme),
            reference_best(&a, &b, &scheme)
        );
    }

    #[test]
    fn antidiag_equals_gotoh((a, b) in similar_pair(80), scheme in schemes()) {
        prop_assert_eq!(
            antidiag_best(&a, &b, &scheme),
            gotoh_best(&a, &b, &scheme)
        );
    }

    #[test]
    fn blocked_grid_equals_gotoh_any_geometry(
        (a, b) in similar_pair(120),
        bh in 1usize..40,
        bw in 1usize..40,
        scheme in schemes(),
    ) {
        let grid = BlockGrid::new(a.len(), b.len(), bh, bw);
        let res = run_sequential(&a, &b, &grid, &scheme);
        prop_assert_eq!(res.best, gotoh_best(&a, &b, &scheme));
        prop_assert_eq!(res.cells_computed, (a.len() as u128) * (b.len() as u128));
    }

    #[test]
    fn pruned_grid_equals_gotoh(
        (a, b) in similar_pair(120),
        bs in 1usize..40,
        scheme in schemes(),
    ) {
        let grid = BlockGrid::new(a.len(), b.len(), bs, bs);
        let res = run_pruned(&a, &b, &grid, &scheme);
        prop_assert_eq!(res.best, gotoh_best(&a, &b, &scheme));
    }

    #[test]
    fn score_invariants(a in dna(100), b in dna(100), scheme in schemes()) {
        let best = gotoh_best(&a, &b, &scheme);
        prop_assert!(best.score >= 0);
        prop_assert!(best.score <= scheme.max_possible(a.len(), b.len()));
        // The end position is inside the matrix (or the origin for score 0).
        if best.score > 0 {
            prop_assert!(best.i >= 1 && best.i <= a.len());
            prop_assert!(best.j >= 1 && best.j <= b.len());
        } else {
            prop_assert_eq!(best, BestCell::ZERO);
        }
    }

    #[test]
    fn swapping_sequences_preserves_score(a in dna(80), b in dna(80), scheme in schemes()) {
        // The matrix transposes; score is invariant, coordinates swap roles
        // (the tie-break winner may legitimately differ).
        let fwd = gotoh_best(&a, &b, &scheme);
        let rev = gotoh_best(&b, &a, &scheme);
        prop_assert_eq!(fwd.score, rev.score);
    }

    #[test]
    fn reversing_both_sequences_preserves_score(a in dna(80), b in dna(80), scheme in schemes()) {
        let ar: Vec<u8> = a.iter().rev().copied().collect();
        let br: Vec<u8> = b.iter().rev().copied().collect();
        prop_assert_eq!(
            gotoh_best(&a, &b, &scheme).score,
            gotoh_best(&ar, &br, &scheme).score
        );
    }

    #[test]
    fn appending_context_never_lowers_score(
        a in dna(60), b in dna(60), extra in dna(20), scheme in schemes()
    ) {
        // Local alignment: adding sequence can only add candidate
        // alignments, never remove them.
        let base = gotoh_best(&a, &b, &scheme).score;
        let mut a_ext = a.clone();
        a_ext.extend_from_slice(&extra);
        prop_assert!(gotoh_best(&a_ext, &b, &scheme).score >= base);
        let mut b_ext = b.clone();
        b_ext.extend_from_slice(&extra);
        prop_assert!(gotoh_best(&a, &b_ext, &scheme).score >= base);
    }

    #[test]
    fn block_composition_is_exact(
        (a, b) in similar_pair(60),
        split_i_frac in 0.0f64..1.0,
        split_j_frac in 0.0f64..1.0,
        scheme in schemes(),
    ) {
        // Splitting the matrix into 4 tiles at an arbitrary point and
        // stitching borders equals the single-tile computation.
        prop_assume!(!a.is_empty() && !b.is_empty());
        let si = ((a.len() as f64 * split_i_frac) as usize).clamp(0, a.len());
        let sj = ((b.len() as f64 * split_j_frac) as usize).clamp(0, b.len());

        let whole = compute_block(BlockInput {
            a_rows: &a, b_cols: &b,
            top: &RowBorder::zero(b.len()),
            left: &ColBorder::zero(a.len()),
            row_offset: 1, col_offset: 1,
        }, &scheme);

        let t00 = compute_block(BlockInput {
            a_rows: &a[..si], b_cols: &b[..sj],
            top: &RowBorder::zero(sj), left: &ColBorder::zero(si),
            row_offset: 1, col_offset: 1,
        }, &scheme);
        let t01 = compute_block(BlockInput {
            a_rows: &a[..si], b_cols: &b[sj..],
            top: &RowBorder::zero(b.len() - sj), left: &t00.right,
            row_offset: 1, col_offset: sj + 1,
        }, &scheme);
        let t10 = compute_block(BlockInput {
            a_rows: &a[si..], b_cols: &b[..sj],
            top: &t00.bottom, left: &ColBorder::zero(a.len() - si),
            row_offset: si + 1, col_offset: 1,
        }, &scheme);
        let t11 = compute_block(BlockInput {
            a_rows: &a[si..], b_cols: &b[sj..],
            top: &t01.bottom, left: &t10.right,
            row_offset: si + 1, col_offset: sj + 1,
        }, &scheme);

        let stitched = t00.best.merge(t01.best).merge(t10.best).merge(t11.best);
        prop_assert_eq!(stitched, whole.best);
        // Stitched final borders equal the whole-matrix borders.
        let mut bottom_h = t10.bottom.h.clone();
        bottom_h.extend_from_slice(&t11.bottom.h[1..]);
        prop_assert_eq!(bottom_h, whole.bottom.h);
        let mut right_h = t01.right.h.clone();
        right_h.extend_from_slice(&t11.right.h[1..]);
        prop_assert_eq!(right_h, whole.right.h);
    }

    #[test]
    fn banded_is_a_lower_bound_and_wide_band_is_exact(
        (a, b) in similar_pair(100),
        w in 1usize..16,
        scheme in schemes(),
    ) {
        let full = gotoh_best(&a, &b, &scheme);
        let narrow = banded_best(&a, &b, &scheme, w);
        prop_assert!(narrow.best.score <= full.score);
        let wide = banded_best(&a, &b, &scheme, a.len() + b.len() + 1);
        prop_assert_eq!(wide.best, full);
    }

    #[test]
    fn banded_adaptive_is_exact((a, b) in similar_pair(100), scheme in schemes()) {
        let full = gotoh_best(&a, &b, &scheme);
        let adaptive = banded_adaptive(&a, &b, &scheme, 2);
        prop_assert_eq!(adaptive.best, full);
    }

    #[test]
    fn myers_miller_is_optimal((a, b) in similar_pair(50), scheme in schemes()) {
        let ops = myers_miller(&a, &b, &scheme);
        let rescored = score_of_ops(&a, &b, &ops, &scheme);
        prop_assert_eq!(rescored, Ok(global_score(&a, &b, &scheme)));
    }

    #[test]
    fn local_alignment_rescoring((a, b) in similar_pair(60), scheme in schemes()) {
        let best = gotoh_best(&a, &b, &scheme);
        let aln = local_align(&a, &b, &scheme);
        prop_assert_eq!(aln.score, best.score);
        if aln.score > 0 {
            prop_assert_eq!((aln.end_i, aln.end_j), (best.i, best.j));
            let a_seg = &a[aln.start_i - 1..aln.end_i];
            let b_seg = &b[aln.start_j - 1..aln.end_j];
            prop_assert_eq!(score_of_ops(a_seg, b_seg, &aln.ops, &scheme), Ok(aln.score));
            // An optimal local alignment never starts or ends with a gap.
            prop_assert!(!matches!(
                aln.ops.first(),
                Some(megasw_sw::traceback::AlignOp::Insert | megasw_sw::traceback::AlignOp::Delete)
            ));
            prop_assert!(!matches!(
                aln.ops.last(),
                Some(megasw_sw::traceback::AlignOp::Insert | megasw_sw::traceback::AlignOp::Delete)
            ));
        } else {
            prop_assert!(aln.is_empty());
        }
    }
}
