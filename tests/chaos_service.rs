//! Chaos contract of the resident service: a device dies mid-job while
//! more work is queued behind it.
//!
//! ISSUE 10's bar: the in-flight job recovers **bit-identically** via the
//! run-scoped blacklist/repartition/rewind machinery, and the queue
//! survives — no queued job is dropped, reordered, or contaminated by the
//! dead device (each later job starts with the full platform again and
//! simply re-routes if the fault reoccurs; here the fault is scheduled on
//! the first job only, so the survivors' reports must show a clean run).

use megasw::prelude::*;
use std::time::Duration;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

fn pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 11).apply(&a);
    (a, b)
}

fn oracle(a: &DnaSeq, b: &DnaSeq) -> Score {
    kernel::scalar()
        .best(a.codes(), b.codes(), &ScoreScheme::cudalign())
        .score
}

fn recovering_service() -> AlignService {
    let base = RunConfig::test_default()
        .with_policy(KernelPolicy::default().with_checkpoint(CheckpointCadence::EveryRows(2)));
    let cfg = ServiceConfig {
        base,
        recovery: Some(RecoveryPolicy {
            max_device_failures: 1,
        }),
        events_interval: Duration::from_millis(5),
    };
    AlignService::start(Platform::env2(), cfg, MetricsHub::new())
}

/// Device 1 dies mid-way through the first job while three more jobs sit
/// in the queue. The faulted job recovers bit-identically; the queued
/// jobs run afterwards in submission order, untouched.
#[test]
fn device_loss_mid_job_preserves_the_queue_bit_identically() {
    with_deadline(
        "chaos_service::device_loss_queue",
        Duration::from_secs(300),
        || {
            let svc = recovering_service();

            let (fa, fb) = pair(900, 1);
            let faulted = svc.submit(JobSpec::SinglePair {
                id: "faulted".into(),
                a: fa.codes().to_vec(),
                b: fb.codes().to_vec(),
                config: None,
                faults: "1:3".parse().unwrap(),
            });

            // Three jobs queued behind the one that will lose a device:
            // two singles and a batch, so both execution routes cross the
            // post-recovery queue.
            let (a1, b1) = pair(300, 2);
            let q1 = svc.submit(JobSpec::single(
                "q1",
                a1.codes().to_vec(),
                b1.codes().to_vec(),
            ));
            let batch_pairs: Vec<(DnaSeq, DnaSeq)> = (0..4u64)
                .map(|i| pair(150 + 40 * i as usize, 20 + i))
                .collect();
            let q2 = svc.submit(JobSpec::batch(
                batch_pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (a, b))| {
                        BatchJob::new(format!("p{i}"), a.codes().to_vec(), b.codes().to_vec())
                    })
                    .collect(),
            ));
            let (a3, b3) = pair(260, 3);
            let q3 = svc.submit(JobSpec::single(
                "q3",
                a3.codes().to_vec(),
                b3.codes().to_vec(),
            ));

            // Everything completes…
            for id in [faulted, q1, q2, q3] {
                let status = svc
                    .wait(id, Duration::from_secs(240))
                    .expect("job reached a terminal state");
                assert_eq!(status.state, JobState::Done, "job {id}: {status:?}");
            }

            // …in submission order: the device loss neither drops nor
            // reorders queued work.
            assert_eq!(svc.completed_order(), vec![faulted, q1, q2, q3]);

            // The in-flight job recovered bit-identically and reported it.
            let report = svc.status(faulted).unwrap().report.unwrap();
            assert_eq!(report.best_score(), oracle(&fa, &fb));
            assert!(report.recoveries >= 1, "{report:?}");
            assert_eq!(report.failed_devices, vec![1], "{report:?}");

            // The queued jobs ran clean — full platform, no recoveries —
            // and bit-identical to the oracle.
            let r1 = svc.status(q1).unwrap().report.unwrap();
            assert_eq!(r1.best_score(), oracle(&a1, &b1));
            assert_eq!(r1.recoveries, 0, "the blacklist must not leak: {r1:?}");
            assert!(r1.failed_devices.is_empty());

            let r2 = svc.status(q2).unwrap().report.unwrap();
            assert_eq!(r2.outcomes.len(), batch_pairs.len());
            for (o, (a, b)) in r2.outcomes.iter().zip(&batch_pairs) {
                assert_eq!(o.best.score, oracle(a, b), "batch pair {}", o.id);
            }
            assert_eq!(r2.recoveries, 0);

            let r3 = svc.status(q3).unwrap().report.unwrap();
            assert_eq!(r3.best_score(), oracle(&a3, &b3));

            // The SLO registry agrees: 4 completed, 0 failed, ≥1 recovery.
            let reg = svc.hub().registry();
            assert_eq!(reg.counter("service.jobs_completed"), Some(4));
            assert_eq!(reg.counter("service.jobs_failed"), Some(0));
            assert!(reg.counter("service.recoveries_total").unwrap() >= 1);
            assert!(reg.counter("service.queue_peak").unwrap() >= 3);
        },
    )
}

/// A batch job that loses a device mid-batch also keeps the queue intact:
/// the batch requeues its in-flight pairs onto survivors, and the next
/// job still sees the full platform.
#[test]
fn device_loss_mid_batch_requeues_pairs_and_spares_the_queue() {
    with_deadline(
        "chaos_service::batch_loss",
        Duration::from_secs(300),
        || {
            let svc = recovering_service();

            let batch_pairs: Vec<(DnaSeq, DnaSeq)> = (0..6u64)
                .map(|i| pair(140 + 30 * i as usize, 50 + i))
                .collect();
            let jobs: Vec<BatchJob> = batch_pairs
                .iter()
                .enumerate()
                .map(|(i, (a, b))| {
                    BatchJob::new(format!("p{i}"), a.codes().to_vec(), b.codes().to_vec())
                })
                .collect();
            let faulted = svc.submit(JobSpec::Batch {
                jobs,
                config: None,
                faults: vec!["2@0:0".parse().unwrap()],
            });
            let (a, b) = pair(240, 60);
            let tail = svc.submit(JobSpec::single(
                "tail",
                a.codes().to_vec(),
                b.codes().to_vec(),
            ));

            for id in [faulted, tail] {
                let status = svc.wait(id, Duration::from_secs(240)).expect("terminal");
                assert_eq!(status.state, JobState::Done, "job {id}: {status:?}");
            }
            assert_eq!(svc.completed_order(), vec![faulted, tail]);

            let report = svc.status(faulted).unwrap().report.unwrap();
            assert_eq!(report.outcomes.len(), batch_pairs.len(), "no pair dropped");
            for (o, (pa, pb)) in report.outcomes.iter().zip(&batch_pairs) {
                assert_eq!(o.best.score, oracle(pa, pb), "pair {}", o.id);
            }
            assert!(report.recoveries >= 1, "{report:?}");

            let r = svc.status(tail).unwrap().report.unwrap();
            assert_eq!(r.best_score(), oracle(&a, &b));
            assert_eq!(r.recoveries, 0, "the blacklist must not leak: {r:?}");
        },
    )
}
