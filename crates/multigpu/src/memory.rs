//! Device-memory accounting.
//!
//! Megabase comparisons only fit on GPUs because the kernels are linear
//! space: each device holds the packed sequences (2 bits/base), one rolling
//! DP row for its slab (`H` + `F`), and the ring staging buffers. This
//! module prices that footprint against a device's memory so a run can be
//! rejected *before* it starts — the simulated analogue of CUDAlign's
//! out-of-memory guard for chromosome-scale inputs.

use crate::config::RunConfig;
use crate::partition::Slab;
use megasw_gpusim::Platform;

/// Per-device memory footprint, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMemoryPlan {
    /// Packed full row sequence `a` (2 bits/base).
    pub seq_a: u64,
    /// Packed slab of column sequence `b`.
    pub seq_b_slab: u64,
    /// Rolling DP row over the slab (`H` + `F`, 4 bytes each).
    pub dp_rows: u64,
    /// Incoming + outgoing ring staging (`H` + `E` per border cell ×
    /// capacity).
    pub rings: u64,
}

impl DeviceMemoryPlan {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.seq_a + self.seq_b_slab + self.dp_rows + self.rings
    }
}

/// A device whose slab does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    pub device: usize,
    pub device_name: String,
    pub required: u64,
    pub available: u64,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device {} ({}) needs {} MiB but has {} MiB",
            self.device,
            self.device_name,
            self.required / (1024 * 1024),
            self.available / (1024 * 1024)
        )
    }
}

impl std::error::Error for MemoryError {}

/// Footprint of one slab on one device.
pub fn plan_for(m: usize, slab_width: usize, config: &RunConfig) -> DeviceMemoryPlan {
    let packed = |bases: usize| bases.div_ceil(4) as u64;
    DeviceMemoryPlan {
        seq_a: packed(m),
        seq_b_slab: packed(slab_width),
        dp_rows: 2 * 4 * slab_width as u64,
        rings: 2 * config.buffer_capacity as u64 * (config.block_h as u64 + 1) * 2 * 4,
    }
}

/// Check every slab of a partition against its device's memory.
pub fn check_platform(
    m: usize,
    slabs: &[Slab],
    platform: &Platform,
    config: &RunConfig,
) -> Result<Vec<DeviceMemoryPlan>, MemoryError> {
    let mut plans = Vec::with_capacity(slabs.len());
    for slab in slabs {
        let plan = plan_for(m, slab.width, config);
        let spec = &platform.devices[slab.device];
        if plan.total() > spec.mem_bytes() {
            return Err(MemoryError {
                device: slab.device,
                device_name: spec.name.clone(),
                required: plan.total(),
                available: spec.mem_bytes(),
            });
        }
        plans.push(plan);
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionPolicy;
    use crate::partition::make_slabs;
    use megasw_gpusim::{catalog, DeviceSpec, LinkSpec};

    #[test]
    fn chromosome_scale_fits_on_catalog_boards() {
        // chr19-class: 47 M × 49 M on Env2.
        let cfg = RunConfig::paper_default();
        let p = Platform::env2();
        let slabs = make_slabs(49_000_000, cfg.block_w, &p, &cfg.policy.partition);
        let plans = check_platform(47_000_000, &slabs, &p, &cfg).expect("must fit");
        for plan in &plans {
            // Packed sequences dominate; everything well under 1 GiB.
            assert!(plan.total() < 1024 * 1024 * 1024);
            assert!(plan.seq_a >= 47_000_000 / 4);
        }
    }

    #[test]
    fn tiny_device_rejects_chromosome_slab() {
        let mut starved = catalog::gtx680();
        starved.mem_mib = 8; // 8 MiB board
        let p = Platform::custom("starved", vec![starved, catalog::gtx680()]);
        let cfg = RunConfig::paper_default();
        let slabs = make_slabs(50_000_000, cfg.block_w, &p, &PartitionPolicy::Equal);
        let err = check_platform(50_000_000, &slabs, &p, &cfg).unwrap_err();
        assert_eq!(err.device, 0);
        assert!(err.required > err.available);
        assert!(err.to_string().contains("GTX 680"));
    }

    #[test]
    fn plan_components_scale_as_expected() {
        let cfg = RunConfig::paper_default();
        let small = plan_for(1_000_000, 500_000, &cfg);
        let wide = plan_for(1_000_000, 2_000_000, &cfg);
        assert_eq!(small.seq_a, wide.seq_a);
        assert_eq!(wide.seq_b_slab, 4 * small.seq_b_slab);
        assert_eq!(wide.dp_rows, 4 * small.dp_rows);
        assert_eq!(small.rings, wide.rings);
        assert_eq!(
            small.total(),
            small.seq_a + small.seq_b_slab + small.dp_rows + small.rings
        );
    }

    #[test]
    fn ring_footprint_scales_with_capacity_and_height() {
        let base = RunConfig::paper_default();
        let big_cap = base.clone().with_buffer_capacity(base.buffer_capacity * 2);
        assert_eq!(
            plan_for(1_000, 1_000, &big_cap).rings,
            2 * plan_for(1_000, 1_000, &base).rings
        );
    }

    #[test]
    fn zero_sized_inputs() {
        let cfg = RunConfig::paper_default();
        let plan = plan_for(0, 0, &cfg);
        assert_eq!(plan.seq_a + plan.seq_b_slab + plan.dp_rows, 0);
        // Rings exist regardless (allocated at configured capacity).
        assert!(plan.rings > 0);
    }

    #[test]
    fn memory_check_is_per_device_capacity() {
        // A heterogeneous platform where only the small-memory board fails.
        let small = DeviceSpec {
            name: "SmallMem".into(),
            sms: 8,
            clock_mhz: 1_000,
            cells_per_cycle_per_sm: 5.0,
            mem_mib: 16,
            link: LinkSpec::pcie2_x16(),
            launch_overhead_ns: 5_000,
        };
        let p = Platform::custom("mixed", vec![catalog::gtx_titan(), small]);
        let cfg = RunConfig::paper_default();
        let slabs = make_slabs(100_000_000, cfg.block_w, &p, &PartitionPolicy::Equal);
        let err = check_platform(100_000_000, &slabs, &p, &cfg).unwrap_err();
        assert_eq!(err.device, 1);
    }
}
