#!/usr/bin/env bash
# Offline CI gate for the megasw workspace: release build, full test
# suite, a warning-free clippy pass, formatting, and a bench-artifact
# smoke pipeline. No network access required — the workspace has zero
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Chaos suite: deterministic seeded fault schedules through both backends
# (bit-identity under recovery, auto-shrunk repros on failure), plus an
# explicit replay of one pinned scenario through the env-var repro path so
# the one-line reproduction mechanism itself stays wired.
cargo test -q -p megasw --test chaos_recovery
MEGASW_CHAOS_REPRO='len=2000 seed=7 block=32 cap=2 ckpt=4 max=1 faults=1:10:ring-push' \
    cargo test -q -p megasw --test chaos_recovery repro_from_env

# Perf-regression artifact smoke: produce a 1-sample artifact, check it
# parses against the schema, and shape-check it against the committed
# baseline (absolute GCUPS are host-dependent, so CI compares shapes
# only). Also prove bench-diff's exit-code contract both ways: zero on
# self-compare, nonzero on the synthetic-regression fixture.
MEGASW_BENCH_SAMPLES=1 ./target/release/bench-artifact BENCH_ci.json
./target/release/bench-diff BENCH_ci.json BENCH_ci.json
./target/release/bench-diff --shape-only \
    crates/bench/fixtures/BENCH_baseline.json BENCH_ci.json
rc=0
./target/release/bench-diff \
    crates/bench/fixtures/BENCH_baseline.json \
    crates/bench/fixtures/BENCH_regressed.json || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "ci: FAIL — bench-diff exit $rc on regressed fixture (want 1)" >&2
    exit 1
fi
# Schema v2 carries recovery accounting in every experiment; the recovery
# anchor must report at least one actual recovery.
grep -q '"recovery": {"recoveries": ' BENCH_ci.json || {
    echo "ci: FAIL — BENCH_ci.json lacks recovery metrics fields" >&2
    exit 1
}
grep -q '"name": "recover.env2.3gpu".*"recovery": {"recoveries": 1' BENCH_ci.json || {
    echo "ci: FAIL — recovery anchor experiment did not record a recovery" >&2
    exit 1
}
rm -f BENCH_ci.json

echo "ci: all gates passed"
