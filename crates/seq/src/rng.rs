//! Self-contained deterministic RNG so the workspace builds with no
//! external crates (the tier-1 build must work offline).
//!
//! [`ChaCha8Rng`] runs the ChaCha stream cipher with 8 rounds, keyed by a
//! `u64` seed expanded through SplitMix64. The surface mirrors the subset of
//! `rand` the workspace used — `seed_from_u64`, `gen::<f64>()`,
//! `gen::<bool>()`, `gen_range(a..b)` / `gen_range(a..=b)` — so generators
//! stay deterministic and portable across platforms (everything is explicit
//! wrapping u32/u64 arithmetic, no platform-dependent state).
//!
//! Streams produced here are *not* bit-compatible with the `rand_chacha`
//! crate; every consumer in this workspace is self-seeded and asserts only
//! statistical properties, so the swap is invisible.

use std::ops::{Range, RangeInclusive};

/// ChaCha with 8 rounds, 64-bit seeded. Deterministic and portable.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Build a generator whose 256-bit key is the SplitMix64 expansion of
    /// `seed`. Same seed ⇒ same stream, on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // words 12..13: block counter, 14..15: nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0u32; 16],
            idx: 16,
        }
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            Self::quarter_round(&mut w, 0, 4, 8, 12);
            Self::quarter_round(&mut w, 1, 5, 9, 13);
            Self::quarter_round(&mut w, 2, 6, 10, 14);
            Self::quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut w, 0, 5, 10, 15);
            Self::quarter_round(&mut w, 1, 6, 11, 12);
            Self::quarter_round(&mut w, 2, 7, 8, 13);
            Self::quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (i, word) in w.iter().enumerate() {
            self.buf[i] = word.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Sample a value; `T` is `f64` (uniform in `[0, 1)`) or `bool`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive integer range.
    /// Panics on an empty range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Uniform u64 in `[0, bound)` by rejection (no modulo bias).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Types [`ChaCha8Rng::gen`] can produce.
pub trait Sample {
    fn sample(rng: &mut ChaCha8Rng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut ChaCha8Rng) -> f64 {
        // 53 high bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample(rng: &mut ChaCha8Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for u64 {
    fn sample(rng: &mut ChaCha8Rng) -> u64 {
        rng.next_u64()
    }
}

/// Ranges [`ChaCha8Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut ChaCha8Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut ChaCha8Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..2_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&y));
            let z = rng.gen_range(0usize..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn bounded_hits_every_value() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}
