//! T2 — throughput of the threaded pipeline on Environment 1 (2 homogeneous
//! devices), per benchmark pair shape. The throughput column reads directly
//! in GCUPS (DP cells per second × 10⁻⁹).
//!
//! The paper-scale series for this table comes from
//! `cargo run -p megasw-bench --release --bin paper-tables t2`.

use megasw::prelude::*;
use megasw_bench::{cached_pair, harness::Group};

fn main() {
    let group = Group::new("table2_env1");
    let cfg = RunConfig::paper_default();
    for (name, len, seed) in [("pairA", 4_000usize, 101u64), ("pairB", 8_000, 102)] {
        let (a, b) = cached_pair(len, seed);
        let cells = (a.len() * b.len()) as u64;
        for gpus in [1usize, 2] {
            let platform = Platform::env1().take(gpus);
            group.bench_cells(&format!("{name}_{gpus}gpu"), cells, || {
                PipelineRun::new(a.codes(), b.codes(), &platform)
                    .config(cfg.clone())
                    .run()
                    .expect("pipeline run failed")
                    .best
            });
        }
    }
}
