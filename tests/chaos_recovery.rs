//! Deterministic chaos harness for fault-tolerant recovery.
//!
//! Each seed expands — via `ChaCha8Rng` — into a full scenario: a sequence
//! pair, a block geometry, a checkpoint interval, and a schedule of one or
//! more device faults (device × block-row × pipeline phase). The scenario
//! runs through **both** backends:
//!
//! * the threaded pipeline must complete under recovery with a score and
//!   best cell **bit-identical** to the fault-free run of the same pair;
//! * the DES twin must complete deterministically with consistent recovery
//!   accounting and a strictly slower simulated clock.
//!
//! Determinism is the point: the same seed always produces the same
//! scenario and the same outcome. When a scenario fails, the harness
//! greedily **shrinks** the fault schedule to a minimal still-failing
//! subset and prints a one-line reproduction:
//!
//! ```text
//! MEGASW_CHAOS_REPRO='len=2400 block=32 ckpt=4 max=3 faults=1:5:compute'
//! ```
//!
//! Re-running with that string in the environment replays exactly the
//! minimal scenario (see `repro_from_env`).

use megasw::prelude::*;
use megasw::seq::rng::ChaCha8Rng;

#[path = "util/deadline.rs"]
mod deadline;
use deadline::with_deadline;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

/// Everything a chaos case needs to replay: the scenario is a pure
/// function of these fields.
#[derive(Debug, Clone)]
struct Scenario {
    len: usize,
    seq_seed: u64,
    block: usize,
    capacity: usize,
    checkpoint_rows: usize,
    max_failures: usize,
    faults: Vec<ScheduledFault>,
}

impl Scenario {
    fn repro(&self) -> String {
        let faults = FaultSchedule::from(self.faults.clone());
        format!(
            "len={} seed={} block={} cap={} ckpt={} max={} faults={}",
            self.len,
            self.seq_seed,
            self.block,
            self.capacity,
            self.checkpoint_rows,
            self.max_failures,
            faults
        )
    }

    fn parse(repro: &str) -> Scenario {
        let mut s = Scenario {
            len: 2_000,
            seq_seed: 0,
            block: 32,
            capacity: 4,
            checkpoint_rows: 4,
            max_failures: 1,
            faults: Vec::new(),
        };
        for field in repro.split_whitespace() {
            let (key, value) = field.split_once('=').expect("field is key=value");
            match key {
                "len" => s.len = value.parse().unwrap(),
                "seed" => s.seq_seed = value.parse().unwrap(),
                "block" => s.block = value.parse().unwrap(),
                "cap" => s.capacity = value.parse().unwrap(),
                "ckpt" => s.checkpoint_rows = value.parse().unwrap(),
                "max" => s.max_failures = value.parse().unwrap(),
                "faults" => {
                    s.faults = value.parse::<FaultSchedule>().unwrap().faults;
                }
                other => panic!("unknown repro field {other:?}"),
            }
        }
        s
    }
}

/// Expand a chaos seed into a scenario. Pure and deterministic: the same
/// seed always yields the same scenario.
fn scenario_for(seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let len = 1_500 + rng.gen_range(0usize..8) * 250;
    let block = [32usize, 48, 64][rng.gen_range(0usize..3)];
    let capacity = [1usize, 2, 4][rng.gen_range(0usize..3)];
    let checkpoint_rows = [2usize, 4, 8][rng.gen_range(0usize..3)];
    let rows = len.div_ceil(block);
    let n_faults = 1 + rng.gen_range(0usize..2); // 1 or 2 faults
    let phases = [
        FaultPhase::RingPop,
        FaultPhase::Compute,
        FaultPhase::RingPush,
        FaultPhase::Transfer,
    ];
    let mut faults = Vec::new();
    let mut devices: Vec<usize> = (0..3).collect();
    for _ in 0..n_faults {
        // Never kill every device: keep at least one survivor by drawing
        // victims without replacement from a 3-device chain.
        let v = rng.gen_range(0usize..devices.len().min(2));
        let device = devices.remove(v);
        faults.push(ScheduledFault {
            device,
            block_row: rng.gen_range(0usize..rows),
            phase: phases[rng.gen_range(0usize..4)],
        });
    }
    Scenario {
        len,
        seq_seed: seed,
        block,
        capacity,
        checkpoint_rows,
        max_failures: faults.len(),
        faults,
    }
}

fn pair(s: &Scenario) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(s.len, s.seq_seed)).generate();
    let (b, _) = DivergenceModel::test_scale(s.seq_seed + 31).apply(&a);
    (a, b)
}

fn config(s: &Scenario) -> RunConfig {
    RunConfig::paper_default()
        .with_block(s.block)
        .with_buffer_capacity(s.capacity)
        .with_checkpoint(CheckpointCadence::EveryRows(s.checkpoint_rows))
}

/// Run one scenario through the threaded pipeline with recovery; return an
/// error string describing the first violated invariant, if any.
fn check_threaded(s: &Scenario) -> Result<(), String> {
    let (a, b) = pair(s);
    let cfg = config(s);
    let want = gotoh_best(a.codes(), b.codes(), &cfg.scheme);
    let policy = RecoveryPolicy {
        max_device_failures: s.max_failures,
    };
    let faults = FaultSchedule::from(s.faults.clone());
    let will_fire = !s.faults.is_empty();
    let report = {
        let (a, b, cfg, faults) = (a.clone(), b.clone(), cfg.clone(), faults.clone());
        with_deadline("chaos threaded run", std::time::Duration::from_secs(60), {
            move || {
                PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                    .config(cfg)
                    .faults(faults)
                    .recover(policy)
                    .run()
            }
        })
    }
    .map_err(|e| format!("recovery did not complete: {e}"))?;
    if report.best != want {
        return Err(format!(
            "score diverged: got {:?}, want {:?}",
            report.best, want
        ));
    }
    let rec = report
        .recovery
        .as_ref()
        .ok_or("recovery accounting missing")?;
    if will_fire && rec.recoveries == 0 {
        return Err("faults scheduled but no recovery happened".into());
    }
    if rec.recoveries != rec.failed_devices.len() as u64
        || rec.recoveries != rec.resumed_from_rows.len() as u64
    {
        return Err(format!("inconsistent accounting: {rec:?}"));
    }
    Ok(())
}

/// The DES leg: completes, accounts, and is internally deterministic.
fn check_des(s: &Scenario) -> Result<(), String> {
    let (a, b) = pair(s);
    let cfg = config(s);
    let policy = RecoveryPolicy {
        max_device_failures: s.max_failures,
    };
    let run_once = || {
        DesSim::new(a.len(), b.len(), &Platform::env2())
            .config(cfg.clone())
            .faults(FaultSchedule::from(s.faults.clone()))
            .recover(policy)
            .run()
    };
    let run = run_once();
    if let Some(e) = &run.aborted {
        return Err(format!("DES run aborted: {e}"));
    }
    let rec = run
        .report
        .recovery
        .as_ref()
        .ok_or("DES recovery accounting missing")?;
    if !s.faults.is_empty() && rec.recoveries == 0 {
        return Err("DES: faults scheduled but no recovery happened".into());
    }
    if run.losses.len() != rec.recoveries as usize {
        return Err(format!(
            "DES: {} losses vs {} recoveries",
            run.losses.len(),
            rec.recoveries
        ));
    }
    let again = run_once();
    if again.report.sim_time != run.report.sim_time || again.report.recovery != run.report.recovery
    {
        return Err("DES run is not deterministic across replays".into());
    }
    Ok(())
}

fn check(s: &Scenario) -> Result<(), String> {
    check_threaded(s)?;
    check_des(s)
}

/// Greedily shrink a failing scenario: try dropping each fault in turn,
/// keeping any reduction that still fails, until no single removal
/// preserves the failure.
fn shrink(mut s: Scenario) -> Scenario {
    loop {
        let mut reduced = false;
        for i in 0..s.faults.len() {
            let mut candidate = s.clone();
            candidate.faults.remove(i);
            candidate.max_failures = candidate.faults.len().max(1);
            if check(&candidate).is_err() {
                s = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return s;
        }
    }
}

/// Run a batch of seeds; on failure, shrink and report one line per seed.
fn run_seeds(seeds: impl Iterator<Item = u64>) {
    let mut failures = Vec::new();
    for seed in seeds {
        let s = scenario_for(seed);
        if let Err(e) = check(&s) {
            let minimal = shrink(s);
            let err = check(&minimal).err().unwrap_or(e);
            failures.push(format!(
                "seed {seed:#x}: {err}\n  MEGASW_CHAOS_REPRO='{}'",
                minimal.repro()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn chaos_seeds_survive_recovery_bit_identically() {
    run_seeds(0x4D_20..0x4D_2C);
}

#[test]
fn chaos_scenarios_are_deterministic() {
    // The same seed expands to the same scenario, twice.
    for seed in 0x4D_20..0x4D_24u64 {
        let s1 = scenario_for(seed);
        let s2 = scenario_for(seed);
        assert_eq!(s1.repro(), s2.repro(), "seed {seed:#x}");
    }
}

#[test]
fn repro_round_trips_through_its_string_form() {
    for seed in 0x4D_20..0x4D_24u64 {
        let s = scenario_for(seed);
        let parsed = Scenario::parse(&s.repro());
        assert_eq!(parsed.repro(), s.repro(), "seed {seed:#x}");
    }
}

#[test]
fn repro_from_env() {
    // Replays the scenario in MEGASW_CHAOS_REPRO, so a failing seed's
    // one-liner is directly actionable:
    //   MEGASW_CHAOS_REPRO='…' cargo test -p megasw --test chaos_recovery repro_from_env
    let Ok(repro) = std::env::var("MEGASW_CHAOS_REPRO") else {
        return;
    };
    let s = Scenario::parse(&repro);
    if let Err(e) = check(&s) {
        panic!("repro failed: {e}\n  MEGASW_CHAOS_REPRO='{}'", s.repro());
    }
}

#[test]
fn shrinker_finds_a_minimal_schedule() {
    // Validate the shrinker on a synthetic failure: a predicate that only
    // needs the device-0 fault keeps exactly that fault after shrinking.
    let base = scenario_for(0x4D_2F);
    let mut s = base.clone();
    s.faults = vec![
        ScheduledFault {
            device: 0,
            block_row: 3,
            phase: FaultPhase::Compute,
        },
        ScheduledFault {
            device: 1,
            block_row: 9,
            phase: FaultPhase::RingPush,
        },
    ];
    // Shrink against a synthetic check: "fails while any device-0 fault is
    // present". (The real shrinker closes over `check`; this mirrors its
    // greedy loop with the predicate inlined.)
    let fails = |sc: &Scenario| sc.faults.iter().any(|f| f.device == 0);
    let mut cur = s;
    loop {
        let mut reduced = false;
        for i in 0..cur.faults.len() {
            let mut cand = cur.clone();
            cand.faults.remove(i);
            if fails(&cand) {
                cur = cand;
                reduced = true;
                break;
            }
        }
        if !reduced {
            break;
        }
    }
    assert_eq!(cur.faults.len(), 1);
    assert_eq!(cur.faults[0].device, 0);
}

#[test]
fn chaos_device_loss_dumps_a_flight_black_box() {
    // Acceptance: an induced device loss leaves a JSONL flight dump with
    // the fault event on the lost device's lane, while the run itself
    // recovers and finishes bit-identically.
    let s = Scenario::parse("len=2000 seed=7 block=32 cap=2 ckpt=4 max=1 faults=1:10:compute");
    let (a, b) = pair(&s);
    let cfg = config(&s);
    let want = gotoh_best(a.codes(), b.codes(), &cfg.scheme);
    // The recovery attempt keeps writing to the same lanes after the
    // fault, so the ring must be deep enough to retain the fault event
    // past the survivors' full rerun (~3 events per block-row).
    let flight = FlightRecorder::new(Platform::env2().len(), 2048);
    let dir = std::env::temp_dir().join(format!("megasw-chaos-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("blackbox.jsonl");
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg)
        .faults(FaultSchedule::from(s.faults.clone()))
        .recover(RecoveryPolicy {
            max_device_failures: 1,
        })
        .flight(std::sync::Arc::clone(&flight))
        .flight_dump_path(&dump)
        .run()
        .unwrap();
    assert_eq!(report.best, want);
    assert_eq!(report.recovery.unwrap().recoveries, 1);
    // The lost attempt's last moments survive in the dump: lane 1's
    // injected fault (aux 0) plus whatever the neighbours saw.
    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(
        text.lines()
            .any(|l| l.contains("\"kind\": \"fault\"") && l.contains("\"device\": 1")),
        "no fault event for device 1 in:\n{text}"
    );
    for line in text.lines() {
        megasw::obs::json::parse(line).expect("flight dump lines are valid JSON");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
