//! Randomized property tests for the DP kernels: the heart of the
//! correctness argument. Every kernel is an implementation of the same
//! recurrences, so on arbitrary inputs they must agree bit-for-bit —
//! including the deterministic tie-break — and every score must satisfy the
//! structural invariants of local alignment.
//!
//! Deterministic seeded sweeps: each property runs a fixed number of
//! ChaCha8-generated cases; a failure reproduces exactly from the printed
//! case index.

use megasw_seq::rng::ChaCha8Rng;
use megasw_sw::antidiag::antidiag_best;
use megasw_sw::banded::BandedResult;
use megasw_sw::block::{BlockInput, BlockOutput};
use megasw_sw::border::{ColBorder, RowBorder};
use megasw_sw::cell::BestCell;
use megasw_sw::grid::{run_sequential, BlockGrid};
use megasw_sw::kernel::scalar;
use megasw_sw::prune::run_pruned;
use megasw_sw::reference::reference_best;
use megasw_sw::scoring::ScoreScheme;
use megasw_sw::traceback::{global_score, local_align, myers_miller, score_of_ops};

const CASES: u64 = 64;

// The old free functions are deprecated shims; these helpers exercise the
// same entry points through the kernel trait they now delegate to.
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    scalar().best(a, b, scheme)
}

fn compute_block(input: BlockInput, scheme: &ScoreScheme) -> BlockOutput {
    scalar().block(input, scheme)
}

fn banded_best(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    scalar().banded(a, b, scheme, width)
}

fn banded_adaptive(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    scalar().banded_adaptive(a, b, scheme, width)
}

fn dna(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| rng.gen_range(0..=4u8)).collect()
}

/// A *similar* pair: b derived from a by point edits, so alignments are
/// long and tie-breaks are stressed.
fn similar_pair(rng: &mut ChaCha8Rng, max_len: usize) -> (Vec<u8>, Vec<u8>) {
    let a = dna(rng, max_len);
    let mut b = a.clone();
    if !b.is_empty() {
        let edits = rng.gen_range(0..b.len() / 4 + 1);
        for _ in 0..edits {
            let pos = rng.gen_range(0..b.len());
            match rng.gen_range(0..3u32) {
                0 => b[pos] = rng.gen_range(0..4u8),
                1 => {
                    b.remove(pos);
                    if b.is_empty() {
                        break;
                    }
                }
                _ => b.insert(pos, rng.gen_range(0..4u8)),
            }
        }
    }
    (a, b)
}

/// One of the two named schemes, or an arbitrary valid one.
fn scheme(rng: &mut ChaCha8Rng) -> ScoreScheme {
    match rng.gen_range(0..3u32) {
        0 => ScoreScheme::cudalign(),
        1 => ScoreScheme::lenient(),
        _ => ScoreScheme {
            match_score: rng.gen_range(1..4u32) as i32,
            mismatch_score: -(rng.gen_range(1..=4u32) as i32),
            gap_open: rng.gen_range(0..5u32) as i32,
            gap_extend: rng.gen_range(1..4u32) as i32,
        },
    }
}

#[test]
fn gotoh_equals_reference() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_01 + case);
        let (a, b) = similar_pair(&mut rng, 80);
        let sch = scheme(&mut rng);
        assert_eq!(
            gotoh_best(&a, &b, &sch),
            reference_best(&a, &b, &sch),
            "case {case}"
        );
    }
}

#[test]
fn antidiag_equals_gotoh() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_02 + case);
        let (a, b) = similar_pair(&mut rng, 80);
        let sch = scheme(&mut rng);
        assert_eq!(
            antidiag_best(&a, &b, &sch),
            gotoh_best(&a, &b, &sch),
            "case {case}"
        );
    }
}

#[test]
fn blocked_grid_equals_gotoh_any_geometry() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_03 + case);
        let (a, b) = similar_pair(&mut rng, 120);
        let bh = rng.gen_range(1..40usize);
        let bw = rng.gen_range(1..40usize);
        let sch = scheme(&mut rng);
        let grid = BlockGrid::new(a.len(), b.len(), bh, bw);
        let res = run_sequential(&a, &b, &grid, &sch);
        assert_eq!(res.best, gotoh_best(&a, &b, &sch), "case {case}, {bh}x{bw}");
        assert_eq!(
            res.cells_computed,
            (a.len() as u128) * (b.len() as u128),
            "case {case}"
        );
    }
}

#[test]
fn pruned_grid_equals_gotoh() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_04 + case);
        let (a, b) = similar_pair(&mut rng, 120);
        let bs = rng.gen_range(1..40usize);
        let sch = scheme(&mut rng);
        let grid = BlockGrid::new(a.len(), b.len(), bs, bs);
        let res = run_pruned(&a, &b, &grid, &sch);
        assert_eq!(
            res.best,
            gotoh_best(&a, &b, &sch),
            "case {case}, block {bs}"
        );
    }
}

#[test]
fn score_invariants() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_05 + case);
        let a = dna(&mut rng, 100);
        let b = dna(&mut rng, 100);
        let sch = scheme(&mut rng);
        let best = gotoh_best(&a, &b, &sch);
        assert!(best.score >= 0, "case {case}");
        assert!(
            best.score <= sch.max_possible(a.len(), b.len()),
            "case {case}"
        );
        // The end position is inside the matrix (or the origin for score 0).
        if best.score > 0 {
            assert!(best.i >= 1 && best.i <= a.len(), "case {case}");
            assert!(best.j >= 1 && best.j <= b.len(), "case {case}");
        } else {
            assert_eq!(best, BestCell::ZERO, "case {case}");
        }
    }
}

#[test]
fn swapping_sequences_preserves_score() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_06 + case);
        let a = dna(&mut rng, 80);
        let b = dna(&mut rng, 80);
        let sch = scheme(&mut rng);
        // The matrix transposes; score is invariant, coordinates swap roles
        // (the tie-break winner may legitimately differ).
        assert_eq!(
            gotoh_best(&a, &b, &sch).score,
            gotoh_best(&b, &a, &sch).score,
            "case {case}"
        );
    }
}

#[test]
fn reversing_both_sequences_preserves_score() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_07 + case);
        let a = dna(&mut rng, 80);
        let b = dna(&mut rng, 80);
        let sch = scheme(&mut rng);
        let ar: Vec<u8> = a.iter().rev().copied().collect();
        let br: Vec<u8> = b.iter().rev().copied().collect();
        assert_eq!(
            gotoh_best(&a, &b, &sch).score,
            gotoh_best(&ar, &br, &sch).score,
            "case {case}"
        );
    }
}

#[test]
fn appending_context_never_lowers_score() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_08 + case);
        let a = dna(&mut rng, 60);
        let b = dna(&mut rng, 60);
        let extra = dna(&mut rng, 20);
        let sch = scheme(&mut rng);
        // Local alignment: adding sequence can only add candidate
        // alignments, never remove them.
        let base = gotoh_best(&a, &b, &sch).score;
        let mut a_ext = a.clone();
        a_ext.extend_from_slice(&extra);
        assert!(gotoh_best(&a_ext, &b, &sch).score >= base, "case {case}");
        let mut b_ext = b.clone();
        b_ext.extend_from_slice(&extra);
        assert!(gotoh_best(&a, &b_ext, &sch).score >= base, "case {case}");
    }
}

#[test]
fn block_composition_is_exact() {
    let mut done = 0u64;
    let mut case = 0u64;
    while done < CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_09 + case);
        case += 1;
        let (a, b) = similar_pair(&mut rng, 60);
        if a.is_empty() || b.is_empty() {
            continue;
        }
        done += 1;
        let si = rng.gen_range(0..=a.len());
        let sj = rng.gen_range(0..=b.len());
        let sch = scheme(&mut rng);

        // Splitting the matrix into 4 tiles at an arbitrary point and
        // stitching borders equals the single-tile computation.
        let whole = compute_block(
            BlockInput {
                a_rows: &a,
                b_cols: &b,
                top: &RowBorder::zero(b.len()),
                left: &ColBorder::zero(a.len()),
                row_offset: 1,
                col_offset: 1,
            },
            &sch,
        );

        let t00 = compute_block(
            BlockInput {
                a_rows: &a[..si],
                b_cols: &b[..sj],
                top: &RowBorder::zero(sj),
                left: &ColBorder::zero(si),
                row_offset: 1,
                col_offset: 1,
            },
            &sch,
        );
        let t01 = compute_block(
            BlockInput {
                a_rows: &a[..si],
                b_cols: &b[sj..],
                top: &RowBorder::zero(b.len() - sj),
                left: &t00.right,
                row_offset: 1,
                col_offset: sj + 1,
            },
            &sch,
        );
        let t10 = compute_block(
            BlockInput {
                a_rows: &a[si..],
                b_cols: &b[..sj],
                top: &t00.bottom,
                left: &ColBorder::zero(a.len() - si),
                row_offset: si + 1,
                col_offset: 1,
            },
            &sch,
        );
        let t11 = compute_block(
            BlockInput {
                a_rows: &a[si..],
                b_cols: &b[sj..],
                top: &t01.bottom,
                left: &t10.right,
                row_offset: si + 1,
                col_offset: sj + 1,
            },
            &sch,
        );

        let stitched = t00.best.merge(t01.best).merge(t10.best).merge(t11.best);
        assert_eq!(stitched, whole.best, "case {case}, split ({si}, {sj})");
        // Stitched final borders equal the whole-matrix borders.
        let mut bottom_h = t10.bottom.h.clone();
        bottom_h.extend_from_slice(&t11.bottom.h[1..]);
        assert_eq!(bottom_h, whole.bottom.h, "case {case}");
        let mut right_h = t01.right.h.clone();
        right_h.extend_from_slice(&t11.right.h[1..]);
        assert_eq!(right_h, whole.right.h, "case {case}");
    }
}

#[test]
fn banded_is_a_lower_bound_and_wide_band_is_exact() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_0A + case);
        let (a, b) = similar_pair(&mut rng, 100);
        let w = rng.gen_range(1..16usize);
        let sch = scheme(&mut rng);
        let full = gotoh_best(&a, &b, &sch);
        let narrow = banded_best(&a, &b, &sch, w);
        assert!(narrow.best.score <= full.score, "case {case}, band {w}");
        let wide = banded_best(&a, &b, &sch, a.len() + b.len() + 1);
        assert_eq!(wide.best, full, "case {case}");
    }
}

#[test]
fn banded_adaptive_is_exact() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_0B + case);
        let (a, b) = similar_pair(&mut rng, 100);
        let sch = scheme(&mut rng);
        let full = gotoh_best(&a, &b, &sch);
        let adaptive = banded_adaptive(&a, &b, &sch, 2);
        assert_eq!(adaptive.best, full, "case {case}");
    }
}

#[test]
fn myers_miller_is_optimal() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_0C + case);
        let (a, b) = similar_pair(&mut rng, 50);
        let sch = scheme(&mut rng);
        let ops = myers_miller(&a, &b, &sch);
        let rescored = score_of_ops(&a, &b, &ops, &sch);
        assert_eq!(rescored, Ok(global_score(&a, &b, &sch)), "case {case}");
    }
}

#[test]
fn local_alignment_rescoring() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x50_0D + case);
        let (a, b) = similar_pair(&mut rng, 60);
        let sch = scheme(&mut rng);
        let best = gotoh_best(&a, &b, &sch);
        let aln = local_align(&a, &b, &sch);
        assert_eq!(aln.score, best.score, "case {case}");
        if aln.score > 0 {
            assert_eq!((aln.end_i, aln.end_j), (best.i, best.j), "case {case}");
            let a_seg = &a[aln.start_i - 1..aln.end_i];
            let b_seg = &b[aln.start_j - 1..aln.end_j];
            assert_eq!(
                score_of_ops(a_seg, b_seg, &aln.ops, &sch),
                Ok(aln.score),
                "case {case}"
            );
            // An optimal local alignment never starts or ends with a gap.
            assert!(!matches!(
                aln.ops.first(),
                Some(megasw_sw::traceback::AlignOp::Insert | megasw_sw::traceback::AlignOp::Delete)
            ));
            assert!(!matches!(
                aln.ops.last(),
                Some(megasw_sw::traceback::AlignOp::Insert | megasw_sw::traceback::AlignOp::Delete)
            ));
        } else {
            assert!(aln.is_empty(), "case {case}");
        }
    }
}
