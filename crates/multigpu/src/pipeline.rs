//! The threaded multi-GPU pipeline.
//!
//! One OS thread plays each device of the platform chain. Thread `g`
//! computes its column slab block-row by block-row with the real
//! [`megasw_sw::block`] kernel; after finishing block-row `r` it pushes the
//! slab's right border (one [`ColBorder`] of that row's height) into the
//! circular buffer toward thread `g + 1`, which pops exactly one border
//! before starting its own block-row `r`. The result is the paper's
//! fine-grain wavefront across devices: all GPUs cooperate on the same
//! matrix, offset by one block-row per chain position, with communication
//! overlapping computation whenever the ring has slack.
//!
//! The run is **bit-exact**: every border value equals the sequential
//! matrix's value, so the merged best cell is identical to the reference
//! (integration tests sweep partitions, block sizes and capacities to prove
//! it).
//!
//! ## Entry point
//!
//! [`PipelineRun`] is the single builder-style entry:
//!
//! ```
//! use megasw_multigpu::pipeline::{PipelineRun, Semantics};
//! use megasw_multigpu::config::RunConfig;
//! use megasw_gpusim::Platform;
//!
//! let (a, b) = (vec![0u8, 1, 2, 3], vec![0u8, 1, 2, 3]);
//! let report = PipelineRun::new(&a, &b, &Platform::env1())
//!     .config(RunConfig::test_default())
//!     .semantics(Semantics::Local)
//!     .run()
//!     .unwrap();
//! assert!(report.best.score > 0);
//! ```
//!
//! ## Distributed block pruning
//!
//! With [`PruneMode::Local`](crate::config::PruneMode) or
//! [`PruneMode::Distributed`](crate::config::PruneMode) on
//! `config.policy.pruning`, each worker tests every tile against the
//! CUDAlign pruning bound (`megasw_sw::prune`) and skips tiles that cannot
//! beat its **watermark** — the highest score it knows about. In
//! `Distributed` mode the watermark additionally folds in (a) the
//! neighbour's watermark piggybacked on every popped
//! [`BorderMsg`](crate::circbuf::BorderMsg) and (b) a shared global
//! watermark atomic read and published once per block-row, which carries
//! best scores between non-adjacent devices. Skipped tiles emit the same
//! zero/−∞ substitute borders the sequential pruned executor uses, so the
//! final best cell stays **bit-identical** to the unpruned run; the
//! skipped-work accounting lands in [`RunReport::pruning`]
//! (see DESIGN.md §10). Pruning applies to [`Semantics::Local`] only;
//! anchored runs ignore the knob.
//!
//! ## Observability
//!
//! Every run computes a wall-clock [`StallBreakdown`] per device (fill,
//! border-wait, drain — the same accounting the simulator reports), exposed
//! via [`DeviceReport::stall`]. Attaching a
//! [`Recorder`](megasw_obs::Recorder) with [`PipelineRun::observer`]
//! additionally captures typed spans — `Kernel` per block-row, `RingPush` /
//! `RingPopWait` around the border ring — for Chrome-trace export.
//!
//! Attaching a [`LiveTelemetry`](megasw_obs::LiveTelemetry) handle with
//! [`PipelineRun::live`] exposes the run **while it executes**: every
//! worker bumps the handle's relaxed atomic counters once per block-row
//! (cells, rows, kernel busy time) and the border rings keep its occupancy
//! gauges current, so a sampler thread can render live progress and GCUPS
//! without perturbing the workers. Live device indices follow **chain
//! position** (slab order), matching `RunReport::devices`.

use crate::checkpoint::{Checkpoint, CheckpointStore, RecoveryPolicy};
use crate::circbuf::{BorderMsg, CircularBuffer, RingError, RingStats};
use crate::config::{PruneMode, RebalanceMode, RunConfig};
use crate::error::MegaswError;
use crate::partition::{make_slabs, make_slabs_excluding_with_weights, resplit_slabs, Slab};
use crate::stats::{
    DeviceReport, PruningReport, RebalanceReport, RecoveryReport, RunReport, StallAttribution,
    StallBreakdown,
};
use megasw_gpusim::Platform;
use megasw_obs::{
    FlightEvent, FlightKind, FlightRecorder, LiveTelemetry, ObsKind, ObsSpan, Recorder, StallPhase,
};
use megasw_sw::block::{skip_block, BlockInput};
use megasw_sw::border::{ColBorder, RowBorder};
use megasw_sw::cell::{BestCell, Score};
use megasw_sw::kernel::{self, Kernel, KernelSelection};
use megasw_sw::prune::{prune_bound, restore_corner, tile_is_prunable};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Matrix semantics a pipeline run computes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Smith-Waterman local alignment (zero floor, zero boundaries).
    Local,
    /// Anchored ("prefix-global") alignment: every path starts at the
    /// matrix origin; gap-cost boundaries, no zero floor. Used by stage 2
    /// to locate alignment start points (see [`crate::stages`]).
    Anchored,
}

/// Pipeline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// A device failed mid-run (only via fault injection in this simulator;
    /// a real deployment would map CUDA errors here).
    DeviceFault { device: usize, block_row: usize },
    /// A neighbour's failure surfaced through the ring.
    RingPoisoned { device: usize },
    /// The run observed its cancellation token (set via
    /// [`PipelineRun::cancel`]) at a checkpoint boundary and stopped
    /// cooperatively. Not a fault: nothing is blacklisted and the queue
    /// owner may resubmit.
    Cancelled,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::DeviceFault { device, block_row } => {
                write!(f, "device {device} failed at block-row {block_row}")
            }
            PipelineError::RingPoisoned { device } => {
                write!(f, "device {device} observed a poisoned ring")
            }
            PipelineError::Cancelled => write!(f, "run cancelled at a checkpoint boundary"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Deterministic fault injection for resilience tests: the given device
/// fails just before computing the given block-row.
///
/// This is the original single-fault form, kept for source compatibility;
/// it converts into a one-entry [`FaultSchedule`] with
/// [`FaultPhase::Compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    pub device: usize,
    pub fail_at_block_row: usize,
}

/// Which point of a worker's per-block-row loop a fault fires at.
///
/// The four phases bracket the row's dataflow: waiting for the left
/// neighbour's border (`RingPop`), the DP kernel itself (`Compute`),
/// handing the right border to the ring (`RingPush`), and the border's bus
/// transfer to the neighbour (`Transfer`). Every phase check fires
/// unconditionally at its point in the loop, so a fault on a slab with no
/// ring on that side still kills the device deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPhase {
    /// While waiting on the incoming border ring, before the pop.
    RingPop,
    /// Just before launching the block-row's kernels (the [`FaultPlan`]
    /// semantics).
    #[default]
    Compute,
    /// Just before pushing the outgoing border.
    RingPush,
    /// After the push, while the border is in flight to the neighbour.
    Transfer,
}

impl FaultPhase {
    /// Canonical lowercase name, matching the CLI / repro-string syntax.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::RingPop => "ring-pop",
            FaultPhase::Compute => "compute",
            FaultPhase::RingPush => "ring-push",
            FaultPhase::Transfer => "transfer",
        }
    }
}

impl FromStr for FaultPhase {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ring-pop" => Ok(FaultPhase::RingPop),
            "compute" => Ok(FaultPhase::Compute),
            "ring-push" => Ok(FaultPhase::RingPush),
            "transfer" => Ok(FaultPhase::Transfer),
            other => Err(format!(
                "unknown fault phase `{other}` (expected ring-pop|compute|ring-push|transfer)"
            )),
        }
    }
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled device failure: `device` dies at `block_row`, in `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledFault {
    /// Platform index of the device that fails.
    pub device: usize,
    /// Block-row at which it fails.
    pub block_row: usize,
    /// Where in the row's dataflow it fails.
    pub phase: FaultPhase,
}

impl FromStr for ScheduledFault {
    type Err = String;

    /// Parse `DEV:ROW[:PHASE]` (phase defaults to `compute`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let device = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("empty fault spec in `{s}`"))?
            .parse::<usize>()
            .map_err(|e| format!("bad device in fault `{s}`: {e}"))?;
        let block_row = parts
            .next()
            .ok_or_else(|| format!("fault `{s}` needs DEV:ROW[:PHASE]"))?
            .parse::<usize>()
            .map_err(|e| format!("bad block-row in fault `{s}`: {e}"))?;
        let phase = match parts.next() {
            Some(p) => p.parse::<FaultPhase>()?,
            None => FaultPhase::Compute,
        };
        if parts.next().is_some() {
            return Err(format!("trailing garbage in fault `{s}`"));
        }
        Ok(ScheduledFault {
            device,
            block_row,
            phase,
        })
    }
}

impl std::fmt::Display for ScheduledFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.device, self.block_row, self.phase)
    }
}

/// A deterministic multi-fault schedule: every entry fires exactly when
/// its (device, block-row, phase) point is reached — same schedule, same
/// outcome, every run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    pub faults: Vec<ScheduledFault>,
}

impl FaultSchedule {
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Does a fault fire for `device` at `block_row` in `phase`?
    pub(crate) fn fires(&self, device: usize, block_row: usize, phase: FaultPhase) -> bool {
        self.faults
            .iter()
            .any(|f| f.device == device && f.block_row == block_row && f.phase == phase)
    }
}

impl From<FaultPlan> for FaultSchedule {
    fn from(plan: FaultPlan) -> FaultSchedule {
        FaultSchedule {
            faults: vec![ScheduledFault {
                device: plan.device,
                block_row: plan.fail_at_block_row,
                phase: FaultPhase::Compute,
            }],
        }
    }
}

impl From<ScheduledFault> for FaultSchedule {
    fn from(fault: ScheduledFault) -> FaultSchedule {
        FaultSchedule {
            faults: vec![fault],
        }
    }
}

impl From<Vec<ScheduledFault>> for FaultSchedule {
    fn from(faults: Vec<ScheduledFault>) -> FaultSchedule {
        FaultSchedule { faults }
    }
}

impl FromStr for FaultSchedule {
    type Err = String;

    /// Parse a comma-separated list of `DEV:ROW[:PHASE]` specs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let faults = s
            .split(',')
            .filter(|part| !part.trim().is_empty())
            .map(|part| part.trim().parse::<ScheduledFault>())
            .collect::<Result<Vec<_>, _>>()?;
        if faults.is_empty() {
            return Err("empty fault schedule".to_string());
        }
        Ok(FaultSchedule { faults })
    }
}

impl std::fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// Builder for one threaded pipeline run — the single entry point to the
/// threaded backend. All run-shaping knobs (pruning, partitioning,
/// checkpoint cadence) arrive through the
/// [`KernelPolicy`](crate::config::KernelPolicy) on the attached
/// [`RunConfig`].
#[derive(Debug, Clone)]
pub struct PipelineRun<'a> {
    a: &'a [u8],
    b: &'a [u8],
    platform: &'a Platform,
    config: RunConfig,
    semantics: Semantics,
    faults: FaultSchedule,
    recovery: Option<RecoveryPolicy>,
    observer: Recorder,
    live: Option<Arc<LiveTelemetry>>,
    flight: Option<Arc<FlightRecorder>>,
    flight_dump: Option<PathBuf>,
    cancel: Option<Arc<AtomicBool>>,
}

impl<'a> PipelineRun<'a> {
    /// Start configuring a run of `a × b` on `platform`. Defaults:
    /// [`RunConfig::paper_default`], [`Semantics::Local`], no faults, no
    /// observer.
    pub fn new(a: &'a [u8], b: &'a [u8], platform: &'a Platform) -> PipelineRun<'a> {
        PipelineRun {
            a,
            b,
            platform,
            config: RunConfig::paper_default(),
            semantics: Semantics::Local,
            faults: FaultSchedule::default(),
            recovery: None,
            observer: Recorder::disabled(),
            live: None,
            flight: None,
            flight_dump: None,
            cancel: None,
        }
    }

    /// Block geometry, ring capacity, partition policy and score scheme.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Local (default) or anchored matrix semantics.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Inject a deterministic fault schedule (resilience testing). Accepts
    /// a single [`FaultPlan`] (legacy), a [`ScheduledFault`], or a whole
    /// [`FaultSchedule`] / `Vec<ScheduledFault>`.
    pub fn faults(mut self, faults: impl Into<FaultSchedule>) -> Self {
        self.faults = faults.into();
        self
    }

    /// Enable fault-tolerant execution: on a device failure, blacklist the
    /// device, repartition its columns across the survivors, rewind to the
    /// newest complete checkpoint wave and resume. The final score and
    /// best-cell are bit-identical to a fault-free run; the accounting
    /// lands in [`RunReport::recovery`].
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Attach a span recorder. Clone the recorder before attaching and read
    /// the spans from your clone after `run()` returns.
    pub fn observer(mut self, observer: Recorder) -> Self {
        self.observer = observer;
        self
    }

    /// Attach in-flight telemetry: workers update the handle's atomic
    /// counters once per block-row and the rings keep its occupancy gauges
    /// current. Keep a clone to sample from another thread while the run
    /// executes (see [`megasw_obs::ProgressSampler`]).
    pub fn live(mut self, live: Arc<LiveTelemetry>) -> Self {
        self.live = Some(live);
        self
    }

    /// Attach a flight recorder: each worker appends one structured event
    /// per step (row start, ring pop, compute, checkpoint, ring push,
    /// prune skip, fault) to its own lock-free ring. Keep a clone to dump
    /// the rings yourself, or set [`PipelineRun::flight_dump_path`] to
    /// have `run()` dump them as JSONL automatically. Lanes follow chain
    /// position, like live-telemetry device indices.
    pub fn flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Dump the attached flight recorder's rings to `path` as JSONL when
    /// `run()` finishes — always on a failed run (the black-box read-out),
    /// and also on success so `--flight-dump` doubles as an on-demand
    /// dump. No-op unless a recorder is attached via
    /// [`PipelineRun::flight`].
    pub fn flight_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.flight_dump = Some(path.into());
        self
    }

    /// Attach a cooperative cancellation token. The run polls it at its
    /// checkpoint boundaries — before the first attempt, and between
    /// segments/recovery attempts on the segmented driver — and returns
    /// [`PipelineError::Cancelled`] once it observes `true`. Workers
    /// mid-segment finish their segment first: cancellation never tears a
    /// wave, so the abort is clean and the platform stays reusable.
    pub fn cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Execute the run.
    pub fn run(self) -> Result<RunReport, MegaswError> {
        let flight = self.flight.clone();
        let dump = self.flight_dump.clone();
        // A cancellation token needs boundaries to act on: with a
        // checkpoint cadence configured, drive through the segmented
        // engine (recovery may still be None) so the token is polled at
        // every checkpoint boundary instead of only before the run.
        let segmented_for_cancel = self.recovery.is_none()
            && self.cancel.is_some()
            && self.config.policy.checkpoint.rows_interval().is_some();
        let result = match self.recovery {
            None if segmented_for_cancel => run_pipeline_segmented(
                self.a,
                self.b,
                self.platform,
                &self.config,
                &self.faults,
                None,
                self.semantics,
                &self.observer,
                self.live.as_ref(),
                self.flight.as_ref(),
                self.cancel.as_deref(),
            )
            .map_err(MegaswError::from),
            None => run_pipeline_live(
                self.a,
                self.b,
                self.platform,
                &self.config,
                &self.faults,
                self.semantics,
                &self.observer,
                self.live.as_ref(),
                self.flight.as_ref(),
                self.cancel.as_deref(),
            )
            .map_err(MegaswError::from),
            Some(policy) => run_pipeline_segmented(
                self.a,
                self.b,
                self.platform,
                &self.config,
                &self.faults,
                Some(policy),
                self.semantics,
                &self.observer,
                self.live.as_ref(),
                self.flight.as_ref(),
                self.cancel.as_deref(),
            )
            .map_err(MegaswError::from),
        };
        if let (Some(fr), Some(path)) = (&flight, &dump) {
            // Best-effort: a failing dump must not mask the run's result.
            let _ = fr.dump_to(path);
        }
        result
    }
}

struct DevicePartial {
    best: BestCell,
    /// Matrix cells this worker *covered* (computed or skipped): its slab
    /// width times the rows it executed. This is what the coverage
    /// invariant in `assemble_report` sums.
    cells: u128,
    /// Cells inside tiles the pruning bound skipped (subset of `cells`).
    cells_skipped: u128,
    tiles_pruned: u64,
    tiles_total: u64,
    /// The worker's final pruning watermark (0 when pruning is off).
    watermark: Score,
    bytes_sent: u64,
    /// Kernel-activity envelope in recorder time, for stall accounting.
    first_kernel_start_ns: u64,
    last_kernel_end_ns: u64,
    busy_ns: u64,
    /// Fine-grained phase clocks for [`StallAttribution`].
    wait_input_ns: u64,
    wait_output_ns: u64,
    checkpoint_ns: u64,
    prune_skip_ns: u64,
    simd_rescue_ns: u64,
    /// SIMD→scalar rescues this worker's thread triggered.
    simd_rescues: u64,
}

/// The engine behind the builder, with optional in-flight telemetry. Live
/// device indices are chain positions (slab
/// order); indices past the handle's capacity are silently dropped by the
/// handle itself, so a handle sized for the platform also works when slabs
/// are dropped on small matrices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline_live(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    faults: &FaultSchedule,
    semantics: Semantics,
    obs: &Recorder,
    live: Option<&Arc<LiveTelemetry>>,
    flight: Option<&Arc<FlightRecorder>>,
    cancel: Option<&AtomicBool>,
) -> Result<RunReport, PipelineError> {
    config.validate().map_err(PipelineError::InvalidConfig)?;
    // Rebalance-enabled runs execute in checkpoint-bounded segments; the
    // segmented driver owns that loop (with no recovery policy attached a
    // fault still fails fast). This keeps every entry point — the builder
    // and the stage-1/stage-2 drivers in `stages` — on one code path.
    if config.policy.rebalance.is_enabled() {
        return run_pipeline_segmented(
            a, b, platform, config, faults, None, semantics, obs, live, flight, cancel,
        );
    }
    if cancelled(cancel) {
        return Err(PipelineError::Cancelled);
    }
    let kernel = kernel::select(config.policy.dispatch).map_err(PipelineError::InvalidConfig)?;
    let selection = KernelSelection {
        dispatch: config.policy.dispatch,
        resolved: kernel.id(),
    };
    let m = a.len();
    let n = b.len();
    let slabs = make_slabs(n, config.block_w, platform, &config.policy.partition);
    let prune_mode = effective_prune_mode(config, semantics);

    if m == 0 || slabs.is_empty() {
        return Ok(empty_report(
            m, n, platform, &slabs, prune_mode, None, None, selection,
        ));
    }

    let rows = m.div_ceil(config.block_h);
    // All stall accounting is relative to this instant, on the recorder's
    // clock, so spans and the stall envelope share one timebase.
    let run_start_ns = obs.now_ns();
    let outcome = run_attempt(AttemptParams {
        a,
        b,
        slabs: &slabs,
        rows,
        start_row: 0,
        stop_row: rows,
        config,
        kernel,
        faults,
        semantics,
        obs,
        live,
        flight,
        resume: None,
        ckpt: None,
    });
    let wall_ns = obs.now_ns().saturating_sub(run_start_ns);
    let partials = collect_attempt(outcome.results).map_err(|f| f.error)?;
    Ok(assemble_report(
        m,
        n,
        platform,
        &slabs,
        &partials,
        &outcome.ring_stats,
        wall_ns,
        run_start_ns,
        BestCell::ZERO,
        0,
        prune_mode,
        None,
        None,
        selection,
    ))
}

/// The pruning mode a run actually executes under: the configured mode for
/// local semantics, forced [`PruneMode::Off`] for anchored runs (pruning's
/// safety argument needs the zero floor; see `megasw_sw::prune`).
fn effective_prune_mode(config: &RunConfig, semantics: Semantics) -> PruneMode {
    match semantics {
        Semantics::Local => config.policy.pruning,
        Semantics::Anchored => PruneMode::Off,
    }
}

/// The segmented driver behind [`PipelineRun::recover`] and
/// [`RebalanceMode::On`] — fault recovery and live rebalancing are the same
/// loop over checkpoint-bounded attempts.
///
/// Each attempt executes the pipeline from `start_row` up to `stop_row`
/// over the current slab set while the workers deposit border checkpoints
/// on the cadence of `config.policy.checkpoint`.
///
/// **Recovery** (when a policy is attached): on a device fault the failed
/// device is blacklisted, its columns are repartitioned across the
/// survivors ([`make_slabs_excluding_with_weights`] — measured throughput
/// for `Proportional`, calibrated once per run and cached), the run rewinds
/// to the newest complete checkpoint wave and resumes from its reassembled
/// border. Gives up — surfacing the original fault — when the failure
/// budget is exhausted or no survivor remains.
///
/// **Rebalance** (when `config.policy.rebalance` is on): the run is cut
/// into segments of `window_waves × checkpoint-interval` block-rows; every
/// segment boundary lands on the checkpoint cadence, so the boundary wave
/// is complete the moment the workers join. The controller measures each
/// device's *effective* throughput over the segment (covered cells — pruned
/// tiles count at their skip cost — per busy nanosecond), predicts the
/// remaining makespan under the current widths vs. a proportional re-split,
/// and when the predicted improvement clears the hysteresis threshold it
/// migrates block-columns by resuming every worker from the boundary
/// checkpoint's full-width H/F border wave under new slab geometry. No
/// block-row is recomputed — the rewind is zero by construction — and
/// because the checkpointed lanes are exact, scores stay **bit-identical**
/// to a static split.
///
/// Both mechanisms compose: a fault mid-segment takes the recovery path,
/// and later boundaries keep rebalancing the survivors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline_segmented(
    a: &[u8],
    b: &[u8],
    platform: &Platform,
    config: &RunConfig,
    faults: &FaultSchedule,
    recovery: Option<RecoveryPolicy>,
    semantics: Semantics,
    obs: &Recorder,
    live: Option<&Arc<LiveTelemetry>>,
    flight: Option<&Arc<FlightRecorder>>,
    cancel: Option<&AtomicBool>,
) -> Result<RunReport, PipelineError> {
    config.validate().map_err(PipelineError::InvalidConfig)?;
    let kernel = kernel::select(config.policy.dispatch).map_err(PipelineError::InvalidConfig)?;
    let selection = KernelSelection {
        dispatch: config.policy.dispatch,
        resolved: kernel.id(),
    };
    let Some(interval) = config.policy.checkpoint.rows_interval() else {
        return Err(PipelineError::InvalidConfig(
            "recovery requires a checkpoint cadence (policy.checkpoint must not be Disabled)"
                .to_string(),
        ));
    };
    let m = a.len();
    let n = b.len();
    let mut slabs = make_slabs(n, config.block_w, platform, &config.policy.partition);
    let prune_mode = effective_prune_mode(config, semantics);
    let rb_mode = config.policy.rebalance;
    if m == 0 || slabs.is_empty() {
        return Ok(empty_report(
            m,
            n,
            platform,
            &slabs,
            prune_mode,
            recovery.map(|_| RecoveryReport::default()),
            rb_mode.is_enabled().then(RebalanceReport::default),
            selection,
        ));
    }

    let rows = m.div_ceil(config.block_h);
    let block_h = config.block_h;
    // Cells in rows < `row` over the full width — the work a checkpoint at
    // wave `row` preserves.
    let cells_at = |row: usize| ((row * block_h).min(m) as u128) * n as u128;
    // Segment length in block-rows: a multiple of the checkpoint interval,
    // so every boundary wave is deposited by the regular cadence check.
    // `Off` runs one segment spanning the whole matrix — unless a
    // cancellation token is attached, in which case segments shrink to the
    // checkpoint cadence so the loop-top cancellation check really fires
    // at every checkpoint boundary rather than once per run.
    let (rb_threshold, seg_rows) = match rb_mode {
        RebalanceMode::Off => (
            f64::INFINITY,
            if cancel.is_some() {
                interval.min(rows)
            } else {
                rows
            },
        ),
        RebalanceMode::On {
            threshold,
            window_waves,
        } => (threshold, (interval * window_waves).min(rows)),
    };

    let store = CheckpointStore::new(n);
    let mut blacklist: Vec<usize> = Vec::new();
    let mut start_row = 0usize;
    let mut resume: Option<Checkpoint> = None;
    let mut recovery_report = RecoveryReport::default();
    let mut rebalance_report = RebalanceReport::default();
    let mut failures = 0usize;
    // Calibrated per-device weights for `Proportional` repartitioning:
    // probed at most once per run, then reused by every recovery
    // (re-probing on each attempt was measurable overhead on fault-dense
    // schedules).
    let mut calibrated: Option<Vec<f64>> = None;
    let run_start_ns = obs.now_ns();

    loop {
        // Cooperative cancellation point: every iteration of this loop is
        // a checkpoint boundary (segment hand-off or recovery rewind), so
        // checking here is exactly "cancellation at checkpoint
        // boundaries". No wave is ever torn mid-flight.
        if cancelled(cancel) {
            return Err(PipelineError::Cancelled);
        }
        // Smallest segment boundary strictly past `start_row` (a resumed
        // attempt may start mid-segment after a fault rewind), clamped to
        // the matrix.
        let stop_row = ((start_row / seg_rows + 1) * seg_rows).min(rows);
        let geoms: Vec<(usize, usize)> = slabs.iter().map(|s| (s.j0, s.width)).collect();
        let base_best = resume.as_ref().map_or(BestCell::ZERO, |c| c.best);
        let attempt = store.begin_attempt(start_row, base_best, &geoms);
        let outcome = run_attempt(AttemptParams {
            a,
            b,
            slabs: &slabs,
            rows,
            start_row,
            stop_row,
            config,
            kernel,
            faults,
            semantics,
            obs,
            live,
            flight,
            resume: resume.as_ref(),
            ckpt: Some(CkptCtx {
                store: &store,
                attempt,
                interval,
            }),
        });
        match collect_attempt(outcome.results) {
            Ok(partials) => {
                if stop_row >= rows {
                    let wall_ns = obs.now_ns().saturating_sub(run_start_ns);
                    recovery_report.checkpoints_taken = store.checkpoints_taken();
                    return Ok(assemble_report(
                        m,
                        n,
                        platform,
                        &slabs,
                        &partials,
                        &outcome.ring_stats,
                        wall_ns,
                        run_start_ns,
                        base_best,
                        cells_at(start_row),
                        prune_mode,
                        recovery.map(|_| recovery_report),
                        rb_mode.is_enabled().then_some(rebalance_report),
                        selection,
                    ));
                }

                // Segment boundary: every worker deposited wave `stop_row`
                // (a cadence multiple below `rows`) and then joined, so the
                // newest complete checkpoint *is* the boundary — resuming
                // from it recomputes nothing.
                let rb_start_ns = obs.now_ns();
                rebalance_report.evaluations += 1;
                let rates: Vec<f64> = partials
                    .iter()
                    .map(|p| p.cells as f64 / p.busy_ns.max(1) as f64)
                    .collect();
                // Predicted time to finish the remaining rows (common
                // factors dropped): the laggard under current widths vs. a
                // split proportional to measured throughput.
                let t_static = slabs
                    .iter()
                    .zip(&rates)
                    .map(|(s, &r)| s.width as f64 / r)
                    .fold(0.0_f64, f64::max);
                let t_balanced = n as f64 / rates.iter().sum::<f64>();
                let improvement = 1.0 - t_balanced / t_static;
                if improvement >= rb_threshold {
                    let devices: Vec<usize> = slabs.iter().map(|s| s.device).collect();
                    let new_slabs = resplit_slabs(n, config.block_w, &devices, &rates);
                    // Columns changing hands: half the total width delta
                    // (every column lost by one device is gained by
                    // another).
                    let moved = new_slabs
                        .iter()
                        .map(|ns| {
                            let old = slabs
                                .iter()
                                .find(|s| s.device == ns.device)
                                .map_or(0, |s| s.width);
                            ns.width.abs_diff(old)
                        })
                        .sum::<usize>()
                        / 2;
                    if moved > 0 {
                        rebalance_report.migrations += 1;
                        rebalance_report.moved_columns += moved as u64;
                        rebalance_report.applied_at_rows.push(stop_row);
                        slabs = new_slabs;
                        // Workers have joined, so the coordinator is the
                        // sole writer on every flight lane here.
                        if let Some(fr) = flight {
                            for (s_idx, slab) in slabs.iter().enumerate() {
                                fr.record(
                                    s_idx,
                                    FlightEvent {
                                        kind: FlightKind::Rebalance,
                                        device: slab.device as u32,
                                        row: stop_row as u64,
                                        t_ns: obs.now_ns(),
                                        dur_ns: 0,
                                        aux: slab.width as u64,
                                    },
                                );
                            }
                        }
                    }
                }
                obs.record_since(ObsKind::Rebalance, None, Some(stop_row as u32), rb_start_ns);
                let ck = store
                    .newest_complete()
                    .expect("completed segment deposited its boundary wave");
                debug_assert_eq!(ck.wave, stop_row, "segment hand-off must be rewind-free");
                start_row = stop_row;
                resume = Some(ck);
            }
            Err(failure) => {
                // Only device faults are recoverable, and only when a
                // recovery policy is attached; rebalance-only runs keep
                // fail-fast fault semantics.
                let Some(policy) = recovery else {
                    return Err(failure.error);
                };
                let PipelineError::DeviceFault { device, block_row } = failure.error else {
                    return Err(failure.error);
                };
                failures += 1;
                if failures > policy.max_device_failures {
                    return Err(failure.error);
                }
                let rec_start_ns = obs.now_ns();
                blacklist.push(device);
                let measured = match &config.policy.partition {
                    crate::config::PartitionPolicy::Proportional => Some(
                        calibrated
                            .get_or_insert_with(|| crate::balance::default_weights(platform))
                            .as_slice(),
                    ),
                    _ => None,
                };
                let survivors = make_slabs_excluding_with_weights(
                    n,
                    config.block_w,
                    platform,
                    &config.policy.partition,
                    &blacklist,
                    measured,
                );
                if survivors.is_empty() {
                    return Err(failure.error);
                }
                let ck = store.newest_complete();
                let new_start = ck.as_ref().map_or(0, |c| c.wave);
                // Work lost to the rewind: everything this attempt computed
                // beyond what the checkpoint wave preserves.
                let preserved = cells_at(new_start).saturating_sub(cells_at(start_row));
                recovery_report.rewound_cells += failure.cells.saturating_sub(preserved);
                recovery_report.recoveries += 1;
                recovery_report.failed_devices.push(device);
                recovery_report.resumed_from_rows.push(new_start);
                if let Some(live) = live {
                    live.on_recovery();
                }
                obs.record_since(
                    ObsKind::Recovery,
                    Some(device as u32),
                    Some(block_row as u32),
                    rec_start_ns,
                );
                slabs = survivors;
                start_row = new_start;
                resume = ck;
            }
        }
    }
}

/// `true` once a cancellation token is present and set.
fn cancelled(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Everything one attempt needs; bundled so the recovery driver and the
/// fail-fast path share the exact same execution code.
struct AttemptParams<'e> {
    a: &'e [u8],
    b: &'e [u8],
    slabs: &'e [Slab],
    rows: usize,
    start_row: usize,
    /// Block-row to stop before: `rows` for a run-to-completion attempt, a
    /// checkpoint-cadence multiple for a rebalance segment.
    stop_row: usize,
    config: &'e RunConfig,
    /// The DP engine resolved from `config.policy.dispatch`, once, up
    /// front — workers never probe CPU features themselves.
    kernel: &'static dyn Kernel,
    faults: &'e FaultSchedule,
    semantics: Semantics,
    obs: &'e Recorder,
    live: Option<&'e Arc<LiveTelemetry>>,
    flight: Option<&'e Arc<FlightRecorder>>,
    /// Checkpoint to resume from (tops are sliced out of its lanes).
    resume: Option<&'e Checkpoint>,
    /// Where workers deposit checkpoints, when recovery is enabled.
    ckpt: Option<CkptCtx<'e>>,
}

#[derive(Clone, Copy)]
struct CkptCtx<'e> {
    store: &'e CheckpointStore,
    attempt: usize,
    interval: usize,
}

/// A worker's failure, carrying how many cells it computed before dying so
/// the rewind accounting stays exact.
struct WorkerFailure {
    error: PipelineError,
    cells: u128,
}

/// An attempt's failure: the root-cause error plus the cells the whole
/// attempt computed (all workers, finished or not).
struct AttemptFailure {
    error: PipelineError,
    cells: u128,
}

struct AttemptOutcome {
    results: Vec<Result<DevicePartial, WorkerFailure>>,
    ring_stats: Vec<RingStats>,
}

/// Spawn one worker per slab and run block-rows `start_row..rows` over the
/// given slab set. Rings are per-attempt; a failed worker poisons its
/// neighbours' rings so the failure propagates instead of deadlocking.
fn run_attempt(p: AttemptParams<'_>) -> AttemptOutcome {
    let rings: Vec<CircularBuffer<BorderMsg>> = (0..p.slabs.len().saturating_sub(1))
        .map(|_| CircularBuffer::with_capacity(p.config.buffer_capacity))
        .collect();

    // The low-frequency side channel of distributed pruning: every worker
    // publishes its watermark here once per block-row and folds it back in
    // once per block-row, carrying best scores between *non-adjacent*
    // devices (ring piggybacking only reaches the right-hand neighbour).
    // Seeded from the resume checkpoint so pruning composes with recovery.
    let global_watermark = AtomicI32::new(p.resume.map_or(0, |ck| ck.watermark));

    if let Some(live) = p.live {
        for (s_idx, ring) in rings.iter().enumerate() {
            if let Some(gauge) = live.ring_gauge(s_idx) {
                ring.attach_occupancy_gauge(gauge);
            }
        }
        for s_idx in 0..p.slabs.len() {
            live.set_rows_total(s_idx, p.rows as u64);
        }
    }

    let results: Vec<Result<DevicePartial, WorkerFailure>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p.slabs.len());
        for (s_idx, slab) in p.slabs.iter().enumerate() {
            let ring_in = if s_idx > 0 {
                Some(&rings[s_idx - 1])
            } else {
                None
            };
            let ring_out = rings.get(s_idx);
            let p = &p;
            let global_watermark = &global_watermark;
            handles.push(scope.spawn(move || {
                let result = device_worker(WorkerParams {
                    a: p.a,
                    b: p.b,
                    slab: *slab,
                    s_idx,
                    rows: p.rows,
                    start_row: p.start_row,
                    stop_row: p.stop_row,
                    config: p.config,
                    kernel: p.kernel,
                    ring_in,
                    ring_out,
                    faults: p.faults,
                    semantics: p.semantics,
                    obs: p.obs,
                    live: p.live,
                    flight: p.flight,
                    resume: p.resume,
                    ckpt: p.ckpt,
                    global_watermark,
                });
                if result.is_err() {
                    // Wake neighbours so the failure propagates instead of
                    // deadlocking the chain.
                    if let Some(r) = ring_in {
                        r.poison();
                    }
                    if let Some(r) = ring_out {
                        r.poison();
                    }
                }
                result
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    AttemptOutcome {
        results,
        ring_stats: rings.iter().map(|r| r.stats()).collect(),
    }
}

/// Split an attempt's worker results into success or a root-cause failure.
/// The root surfaces a `DeviceFault` (in chain order) ahead of secondary
/// `RingPoisoned` observations; the failure carries the attempt's total
/// computed cells for the rewind accounting.
fn collect_attempt(
    results: Vec<Result<DevicePartial, WorkerFailure>>,
) -> Result<Vec<DevicePartial>, AttemptFailure> {
    let mut cells: u128 = 0;
    let mut fault: Option<PipelineError> = None;
    let mut poison: Option<PipelineError> = None;
    let mut partials = Vec::with_capacity(results.len());
    let mut failed = false;
    for r in results {
        match r {
            Ok(part) => {
                cells += part.cells;
                partials.push(part);
            }
            Err(w) => {
                failed = true;
                cells += w.cells;
                match w.error {
                    e @ PipelineError::DeviceFault { .. } => {
                        fault.get_or_insert(e);
                    }
                    e => {
                        poison.get_or_insert(e);
                    }
                }
            }
        }
    }
    if !failed {
        return Ok(partials);
    }
    Err(AttemptFailure {
        error: fault.or(poison).expect("failed attempt carries an error"),
        cells,
    })
}

/// Build the final [`RunReport`] from the last (successful) attempt.
/// `base_best` / `base_cells` are what the resumed-from checkpoint already
/// established; zero for fault-free runs.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    m: usize,
    n: usize,
    platform: &Platform,
    slabs: &[Slab],
    partials: &[DevicePartial],
    ring_stats: &[RingStats],
    wall_ns: u64,
    run_start_ns: u64,
    base_best: BestCell,
    base_cells: u128,
    prune_mode: PruneMode,
    recovery: Option<RecoveryReport>,
    rebalance: Option<RebalanceReport>,
    kernel: KernelSelection,
) -> RunReport {
    let best = partials.iter().fold(base_best, |acc, p| acc.merge(p.best));
    let total_cells = m as u128 * n as u128;
    debug_assert_eq!(
        base_cells + partials.iter().map(|p| p.cells).sum::<u128>(),
        total_cells,
        "checkpointed rows plus the final attempt must cover the matrix exactly"
    );
    let pruning = prune_mode.is_enabled().then(|| PruningReport {
        mode: prune_mode,
        tiles_pruned: partials.iter().map(|p| p.tiles_pruned).sum(),
        tiles_total: partials.iter().map(|p| p.tiles_total).sum(),
        cells_skipped: partials.iter().map(|p| p.cells_skipped).sum(),
        // Worst final watermark lag across workers: how far the slowest
        // watermark trailed the run's true best. Always ≥ 0 — a watermark
        // only ever folds actually-observed scores.
        watermark_lag: partials
            .iter()
            .map(|p| best.score as i64 - p.watermark as i64)
            .max()
            .unwrap_or(0),
    });
    let wall = Duration::from_nanos(wall_ns);

    let devices = slabs
        .iter()
        .zip(partials)
        .enumerate()
        .map(|(s_idx, (slab, p))| {
            // Shift the envelope to the run's own epoch; the identity
            // startup + input + drain == wall − busy holds exactly for
            // single-attempt runs (recovered runs fold lost attempts into
            // `startup`).
            let stall = StallBreakdown::from_envelope(
                wall_ns,
                p.first_kernel_start_ns.saturating_sub(run_start_ns),
                p.last_kernel_end_ns.saturating_sub(run_start_ns),
                p.busy_ns,
            );
            // Phase attribution over the whole run's makespan; for a
            // recovered run the final attempt's measured phases are what
            // the survivors did, and the lost attempts land in `other`.
            let attribution = StallAttribution::from_measured(
                wall_ns,
                p.busy_ns,
                p.wait_input_ns,
                p.wait_output_ns,
                p.checkpoint_ns,
                p.prune_skip_ns,
                p.simd_rescue_ns,
            );
            DeviceReport {
                device: slab.device,
                name: platform.devices[slab.device].name.clone(),
                slab_j0: slab.j0,
                slab_width: slab.width,
                cells: p.cells,
                bytes_sent: p.bytes_sent,
                ring_out: ring_stats.get(s_idx).copied(),
                wall_busy: Some(Duration::from_nanos(p.busy_ns)),
                sim_busy: None,
                sim_utilization: None,
                stall: Some(stall),
                attribution: Some(attribution),
            }
        })
        .collect();

    let secs = wall.as_secs_f64();
    RunReport {
        best,
        total_cells,
        wall_time: Some(wall),
        gcups_wall: Some(RunReport::gcups(total_cells, secs)),
        sim_time: None,
        gcups_sim: None,
        devices,
        pruning,
        recovery,
        rebalance,
        kernel,
        simd_rescues: partials.iter().map(|p| p.simd_rescues).sum(),
    }
}

/// One worker's slice of an [`AttemptParams`].
struct WorkerParams<'e> {
    a: &'e [u8],
    b: &'e [u8],
    slab: Slab,
    s_idx: usize,
    rows: usize,
    start_row: usize,
    /// Exclusive upper bound of this attempt's block-rows (a segment
    /// boundary, or `rows` when the attempt runs to completion).
    stop_row: usize,
    config: &'e RunConfig,
    kernel: &'static dyn Kernel,
    ring_in: Option<&'e CircularBuffer<BorderMsg>>,
    ring_out: Option<&'e CircularBuffer<BorderMsg>>,
    faults: &'e FaultSchedule,
    semantics: Semantics,
    obs: &'e Recorder,
    live: Option<&'e Arc<LiveTelemetry>>,
    flight: Option<&'e Arc<FlightRecorder>>,
    resume: Option<&'e Checkpoint>,
    ckpt: Option<CkptCtx<'e>>,
    /// Shared watermark for non-adjacent devices (distributed pruning).
    global_watermark: &'e AtomicI32,
}

/// The per-device loop.
///
/// Per block-row the phases run in dataflow order — `RingPop` fault check,
/// pop, `Compute` fault check, kernels, checkpoint deposit, `RingPush`
/// fault check, push, `Transfer` fault check — so a scheduled fault kills
/// the device at a well-defined point regardless of ring topology.
fn device_worker(p: WorkerParams<'_>) -> Result<DevicePartial, WorkerFailure> {
    let WorkerParams {
        a,
        b,
        slab,
        s_idx,
        rows,
        start_row,
        stop_row,
        config,
        kernel,
        ring_in,
        ring_out,
        faults,
        semantics,
        obs,
        live,
        flight,
        resume,
        ckpt,
        global_watermark,
    } = p;
    let m = a.len();
    let n = b.len();
    let block_h = config.block_h;
    let block_w = config.block_w;
    let lane = slab.device as u32;
    let prune_mode = effective_prune_mode(config, semantics);

    // Tile columns of this slab.
    let mut cols: Vec<(usize, usize)> = Vec::new(); // (j0, width)
    let mut j = slab.j0;
    while j < slab.j_end() {
        let w = block_w.min(slab.j_end() - j);
        cols.push((j, w));
        j += w;
    }

    // Top borders: analytic at the matrix edge, or sliced out of the
    // checkpoint's exact full-width H/F lanes when resuming mid-matrix.
    let mut tops: Vec<RowBorder> = match resume {
        None => cols
            .iter()
            .map(|&(jc0, w)| match semantics {
                Semantics::Local => RowBorder::zero(w),
                Semantics::Anchored => RowBorder::anchored(w, jc0, &config.scheme),
            })
            .collect(),
        Some(ck) => cols
            .iter()
            .map(|&(jc0, w)| RowBorder {
                h: ck.h[jc0 - 1..=jc0 - 1 + w].to_vec(),
                f: ck.f[jc0 - 1..=jc0 - 1 + w].to_vec(),
            })
            .collect(),
    };
    let mut best = BestCell::ZERO;
    let mut cells: u128 = 0;
    let mut cells_skipped: u128 = 0;
    let mut tiles_pruned: u64 = 0;
    let mut tiles_total: u64 = 0;
    let mut bytes_sent: u64 = 0;
    let mut first_kernel_start_ns: Option<u64> = None;
    let mut last_kernel_end_ns: u64 = 0;
    let mut busy_ns: u64 = 0;
    // Fine-grained phase clocks (StallAttribution). Rescue time is read
    // from the kernel crate's thread-local counters — this worker owns its
    // thread, so the deltas are exactly its own rescues.
    let mut wait_input_ns: u64 = 0;
    let mut wait_output_ns: u64 = 0;
    let mut checkpoint_ns: u64 = 0;
    let mut prune_skip_ns: u64 = 0;
    let rescues_base = kernel::simd_rescues_thread();
    let rescue_ns_base = kernel::simd_rescue_ns_thread();
    // One flight-recorder append per step; ~70 ns each, only when a
    // recorder is attached.
    let fly = |kind: FlightKind, row: u64, t_ns: u64, dur_ns: u64, aux: u64| {
        if let Some(fr) = flight {
            fr.record(
                s_idx,
                FlightEvent {
                    kind,
                    device: lane,
                    row,
                    t_ns,
                    dur_ns,
                    aux,
                },
            );
        }
    };

    // The pruning watermark: the highest score this worker *knows about*.
    // It only ever grows (fold is max) and only ever folds scores that some
    // worker actually observed in a DP cell, so it never exceeds the true
    // global best — the strict bound comparison below therefore preserves
    // the unpruned run's best cell bit-for-bit. Seeded from the resume
    // checkpoint so a recovered attempt keeps the failed attempt's
    // knowledge.
    let mut watermark: Score = match prune_mode {
        PruneMode::Off => 0,
        PruneMode::Local | PruneMode::Distributed => resume.map_or(0, |ck| ck.watermark),
    };

    // Fault events carry aux 0 = injected device fault, 1 = poisoned ring
    // observed from a dead neighbour.
    let die = |cells: u128, r: usize| {
        fly(FlightKind::Fault, r as u64, obs.now_ns(), 0, 0);
        WorkerFailure {
            error: PipelineError::DeviceFault {
                device: slab.device,
                block_row: r,
            },
            cells,
        }
    };
    let poisoned = |cells: u128, r: usize| {
        fly(FlightKind::Fault, r as u64, obs.now_ns(), 0, 1);
        WorkerFailure {
            error: PipelineError::RingPoisoned {
                device: slab.device,
            },
            cells,
        }
    };

    // Per-lane checkpoint scratch: the H/F lanes are assembled here and
    // handed to the store as slices, so deposits reuse one allocation
    // across every block-row instead of building a fresh Vec pair each
    // time (the churn showed up as other/wait_input in the attribution).
    let mut ck_h: Vec<Score> = Vec::new();
    let mut ck_f: Vec<Score> = Vec::new();

    for r in start_row..stop_row {
        let i0 = r * block_h + 1;
        let i1 = ((r + 1) * block_h).min(m) + 1;
        let height = i1 - i0;
        let row = r as u32;
        fly(FlightKind::RowStart, r as u64, obs.now_ns(), 0, 0);

        if faults.fires(slab.device, r, FaultPhase::RingPop) {
            return Err(die(cells, r));
        }

        // Under distributed pruning, fold the shared global watermark once
        // per block-row — a low-frequency side channel that lets knowledge
        // from non-adjacent devices tighten this worker's bound.
        if prune_mode == PruneMode::Distributed {
            watermark = watermark.max(global_watermark.load(Ordering::Relaxed));
        }

        let mut left: ColBorder = match ring_in {
            None => match semantics {
                Semantics::Local => ColBorder::zero(height),
                Semantics::Anchored => ColBorder::anchored(height, i0, &config.scheme),
            },
            Some(ring) => {
                let wait_start = obs.now_ns();
                let popped = ring.pop();
                let wait_end = obs.now_ns().max(wait_start);
                obs.record_since(ObsKind::RingPopWait, Some(lane), Some(row), wait_start);
                wait_input_ns += wait_end - wait_start;
                if let Some(live) = live {
                    live.on_phase_ns(s_idx, StallPhase::WaitInput, wait_end - wait_start);
                }
                fly(
                    FlightKind::RingPop,
                    r as u64,
                    wait_end,
                    wait_end - wait_start,
                    0,
                );
                match popped {
                    Ok(Some(msg)) => {
                        let BorderMsg {
                            border,
                            watermark: their_mark,
                        } = msg;
                        debug_assert_eq!(border.height(), height, "border height mismatch");
                        // Fold the left neighbour's piggybacked watermark:
                        // free knowledge riding the border hand-off.
                        if prune_mode == PruneMode::Distributed {
                            watermark = watermark.max(their_mark);
                        }
                        border
                    }
                    // Closed-early and poisoned both mean a neighbour died.
                    Ok(None) | Err(RingError::Closed) | Err(RingError::Poisoned) => {
                        return Err(poisoned(cells, r));
                    }
                }
            }
        };

        if faults.fires(slab.device, r, FaultPhase::Compute) {
            return Err(die(cells, r));
        }

        let kernel_start = obs.now_ns();
        for (c, &(jc0, wc)) in cols.iter().enumerate() {
            let covered = height as u128 * wc as u128;
            tiles_total += 1;
            if prune_mode.is_enabled() {
                let incoming_max = tops[c].max_h().max(left.max_h());
                let bound = prune_bound(incoming_max, m, n, i0, jc0, &config.scheme);
                if tile_is_prunable(bound, watermark) {
                    // Skip the tile: emit the substitute zero/−∞ borders
                    // sw::prune defines. Downstream DP over those borders
                    // can only underestimate — safe under local semantics.
                    // The skip happens inside the kernel timing window, so
                    // its clock is carved out of busy_ns by the
                    // attribution, not added on top.
                    let skip_start = obs.now_ns();
                    let out = skip_block(height, wc);
                    let skip_ns = obs.now_ns().max(skip_start) - skip_start;
                    prune_skip_ns += skip_ns;
                    if let Some(live) = live {
                        live.on_phase_ns(s_idx, StallPhase::PruneSkip, skip_ns);
                    }
                    fly(
                        FlightKind::PruneSkip,
                        r as u64,
                        skip_start,
                        skip_ns,
                        jc0 as u64,
                    );
                    tops[c] = out.bottom;
                    left = out.right;
                    tiles_pruned += 1;
                    cells_skipped += covered;
                    cells += covered; // covered, not computed: coverage accounting
                    continue;
                }
                // Borders from pruned neighbours may disagree at the shared
                // corner; restore it to the max (exact when either path
                // survived) before handing both to the kernel.
                restore_corner(&mut tops[c], &mut left);
            }
            let input = BlockInput {
                a_rows: &a[i0 - 1..i1 - 1],
                b_cols: &b[jc0 - 1..jc0 - 1 + wc],
                top: &tops[c],
                left: &left,
                row_offset: i0,
                col_offset: jc0,
            };
            let out = match semantics {
                Semantics::Local => kernel.block(input, &config.scheme),
                Semantics::Anchored => kernel.block_anchored(input, &config.scheme),
            };
            best = best.merge(out.best);
            cells += out.cells as u128;
            tops[c] = out.bottom;
            left = out.right;
        }
        if prune_mode.is_enabled() {
            watermark = watermark.max(best.score);
        }
        let kernel_end = obs.now_ns().max(kernel_start);
        obs.record(ObsSpan {
            kind: ObsKind::Kernel,
            device: Some(lane),
            block_row: Some(row),
            start_ns: kernel_start,
            end_ns: kernel_end,
        });
        first_kernel_start_ns.get_or_insert(kernel_start);
        last_kernel_end_ns = kernel_end;
        busy_ns += kernel_end - kernel_start;
        fly(
            FlightKind::Compute,
            r as u64,
            kernel_end,
            kernel_end - kernel_start,
            cols.len() as u64,
        );
        if let Some(live) = live {
            live.on_row_done(
                s_idx,
                (height as u64) * (slab.width as u64),
                kernel_end - kernel_start,
            );
            if prune_mode.is_enabled() {
                live.on_prune_update(
                    s_idx,
                    watermark,
                    tiles_pruned,
                    u64::try_from(cells_skipped).unwrap_or(u64::MAX),
                );
            }
        }

        // Publish this worker's watermark for non-adjacent devices.
        if prune_mode == PruneMode::Distributed {
            global_watermark.fetch_max(watermark, Ordering::Relaxed);
        }

        // Deposit a checkpoint as soon as the wave's kernels are done, so
        // a later push/transfer fault on this very row still benefits.
        if let Some(ck) = ckpt {
            let wave = r + 1;
            if wave % ck.interval == 0 && wave < rows {
                let ckpt_start = obs.now_ns();
                ck_h.clear();
                ck_f.clear();
                ck_h.push(tops[0].h[0]);
                ck_f.push(tops[0].f[0]);
                for t in &tops {
                    ck_h.extend_from_slice(&t.h[1..]);
                    ck_f.extend_from_slice(&t.f[1..]);
                }
                ck.store
                    .record(ck.attempt, wave, s_idx, &ck_h, &ck_f, best, watermark);
                let ckpt_ns = obs.now_ns().max(ckpt_start) - ckpt_start;
                checkpoint_ns += ckpt_ns;
                if let Some(live) = live {
                    live.on_phase_ns(s_idx, StallPhase::Checkpoint, ckpt_ns);
                }
                fly(
                    FlightKind::Checkpoint,
                    r as u64,
                    ckpt_start,
                    ckpt_ns,
                    wave as u64,
                );
            }
        }

        if faults.fires(slab.device, r, FaultPhase::RingPush) {
            return Err(die(cells, r));
        }

        if let Some(ring) = ring_out {
            bytes_sent += left.transfer_bytes() as u64;
            let push_start = obs.now_ns();
            // The watermark piggybacks on the border hand-off: zero extra
            // messages, and the right neighbour folds it before its next row.
            let pushed = ring.push(BorderMsg {
                border: left,
                watermark,
            });
            let push_end = obs.now_ns().max(push_start);
            obs.record_since(ObsKind::RingPush, Some(lane), Some(row), push_start);
            wait_output_ns += push_end - push_start;
            if let Some(live) = live {
                live.on_phase_ns(s_idx, StallPhase::WaitOutput, push_end - push_start);
            }
            fly(
                FlightKind::RingPush,
                r as u64,
                push_end,
                push_end - push_start,
                0,
            );
            if pushed.is_err() {
                return Err(poisoned(cells, r));
            }
        }

        if faults.fires(slab.device, r, FaultPhase::Transfer) {
            return Err(die(cells, r));
        }
    }

    if let Some(ring) = ring_out {
        ring.close();
    }

    Ok(DevicePartial {
        best,
        cells,
        cells_skipped,
        tiles_pruned,
        tiles_total,
        watermark,
        bytes_sent,
        first_kernel_start_ns: first_kernel_start_ns.unwrap_or(0),
        last_kernel_end_ns,
        busy_ns,
        wait_input_ns,
        wait_output_ns,
        checkpoint_ns,
        prune_skip_ns,
        simd_rescue_ns: kernel::simd_rescue_ns_thread().saturating_sub(rescue_ns_base),
        simd_rescues: kernel::simd_rescues_thread().saturating_sub(rescues_base),
    })
}

#[allow(clippy::too_many_arguments)]
fn empty_report(
    m: usize,
    n: usize,
    platform: &Platform,
    slabs: &[Slab],
    prune_mode: PruneMode,
    recovery: Option<RecoveryReport>,
    rebalance: Option<RebalanceReport>,
    kernel: KernelSelection,
) -> RunReport {
    RunReport {
        best: BestCell::ZERO,
        total_cells: m as u128 * n as u128,
        wall_time: Some(std::time::Duration::ZERO),
        gcups_wall: Some(0.0),
        sim_time: None,
        gcups_sim: None,
        devices: slabs
            .iter()
            .map(|slab| DeviceReport {
                device: slab.device,
                name: platform.devices[slab.device].name.clone(),
                slab_j0: slab.j0,
                slab_width: slab.width,
                cells: 0,
                bytes_sent: 0,
                ring_out: None,
                wall_busy: None,
                sim_busy: None,
                sim_utilization: None,
                stall: None,
                attribution: None,
            })
            .collect(),
        pruning: prune_mode.is_enabled().then_some(PruningReport {
            mode: prune_mode,
            tiles_pruned: 0,
            tiles_total: 0,
            cells_skipped: 0,
            watermark_lag: 0,
        }),
        recovery,
        rebalance,
        kernel,
        simd_rescues: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointCadence, PruneMode};
    use megasw_gpusim::{catalog, Platform};
    use megasw_obs::ObsLevel;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};
    /// Scalar whole-sequence oracle via the kernel trait (the deprecated
    /// `gotoh_best` free function is being phased out).
    fn rolling_best(a: &[u8], b: &[u8], scheme: &megasw_sw::ScoreScheme) -> BestCell {
        megasw_sw::kernel::scalar().best(a, b, scheme)
    }

    fn pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::test_scale(seed + 1000).apply(&a);
        (a, b)
    }

    /// A 99%-identity pair (substitutions only): the regime where block
    /// pruning pays — the diagonal score grows steadily and prunes the
    /// off-diagonal bulk.
    fn similar_pair(len: usize, seed: u64) -> (megasw_seq::DnaSeq, megasw_seq::DnaSeq) {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, _) = DivergenceModel::snp_only(seed + 1000, 0.01).apply(&a);
        (a, b)
    }

    fn run_local(a: &[u8], b: &[u8], platform: &Platform, cfg: RunConfig) -> RunReport {
        PipelineRun::new(a, b, platform).config(cfg).run().unwrap()
    }

    #[test]
    fn two_gpu_run_matches_reference() {
        let (a, b) = pair(2_000, 1);
        let report = run_local(
            a.codes(),
            b.codes(),
            &Platform::env1(),
            RunConfig::test_default(),
        );
        assert_eq!(
            report.best,
            rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        assert_eq!(report.devices.len(), 2);
        assert!(report.gcups_wall.unwrap() > 0.0);
        assert!(report.total_bytes_transferred() > 0);
    }

    #[test]
    fn three_heterogeneous_gpus_match_reference() {
        let (a, b) = pair(3_000, 2);
        let report = run_local(
            a.codes(),
            b.codes(),
            &Platform::env2(),
            RunConfig::test_default(),
        );
        assert_eq!(
            report.best,
            rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        // Proportional split: Titan slab wider than K20 slab.
        assert!(report.devices[0].slab_width > report.devices[2].slab_width);
    }

    #[test]
    fn single_device_platform_works() {
        let (a, b) = pair(1_000, 3);
        let report = run_local(
            a.codes(),
            b.codes(),
            &Platform::single(catalog::gtx680()),
            RunConfig::test_default(),
        );
        assert_eq!(
            report.best,
            rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        assert_eq!(report.devices.len(), 1);
        assert_eq!(report.total_bytes_transferred(), 0);
    }

    #[test]
    fn capacity_one_ring_still_correct() {
        let (a, b) = pair(1_500, 4);
        let cfg = RunConfig::test_default().with_buffer_capacity(1);
        let report = run_local(a.codes(), b.codes(), &Platform::env2(), cfg.clone());
        assert_eq!(report.best, rolling_best(a.codes(), b.codes(), &cfg.scheme));
    }

    #[test]
    fn many_devices_on_small_matrix() {
        // 8 devices, matrix narrower than 8 block columns: devices dropped.
        let (a, b) = pair(200, 5);
        let p = Platform::homogeneous(catalog::m2090(), 8);
        let cfg = RunConfig::test_default(); // 32-wide blocks → ≤ 7 bcols
        let report = run_local(a.codes(), b.codes(), &p, cfg.clone());
        assert_eq!(report.best, rolling_best(a.codes(), b.codes(), &cfg.scheme));
        let bcols = b.len().div_ceil(cfg.block_w);
        assert_eq!(report.devices.len(), bcols.min(8));
    }

    #[test]
    fn empty_sequences() {
        let p = Platform::env1();
        let cfg = RunConfig::test_default();
        let r1 = run_local(&[], &[], &p, cfg.clone());
        assert_eq!(r1.best, BestCell::ZERO);
        let (a, _) = pair(100, 6);
        let r2 = run_local(a.codes(), &[], &p, cfg.clone());
        assert_eq!(r2.best, BestCell::ZERO);
        let r3 = run_local(&[], a.codes(), &p, cfg);
        assert_eq!(r3.best, BestCell::ZERO);
    }

    #[test]
    fn builder_rejects_invalid_config_with_megasw_error() {
        let (a, b) = pair(100, 7);
        let bad = RunConfig::test_default().with_buffer_capacity(0);
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(bad)
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::InvalidConfig(_))
        ));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn fault_in_middle_device_propagates_cleanly() {
        let (a, b) = pair(2_000, 8);
        let fault = FaultPlan {
            device: 1,
            fail_at_block_row: 5,
        };
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(RunConfig::test_default())
            .faults(fault)
            .run()
            .unwrap_err();
        assert_eq!(
            err.as_pipeline(),
            Some(&PipelineError::DeviceFault {
                device: 1,
                block_row: 5
            })
        );
    }

    #[test]
    fn fault_in_first_device_at_row_zero() {
        let (a, b) = pair(1_000, 9);
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .faults(FaultPlan {
                device: 0,
                fail_at_block_row: 0,
            })
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::DeviceFault { device: 0, .. })
        ));
    }

    #[test]
    fn ring_stats_show_flow() {
        let (a, b) = pair(2_000, 10);
        let cfg = RunConfig::test_default().with_buffer_capacity(2);
        let report = run_local(a.codes(), b.codes(), &Platform::env1(), cfg.clone());
        let ring = report.devices[0].ring_out.as_ref().unwrap();
        let rows = 2_000usize.div_ceil(cfg.block_h) as u64;
        assert_eq!(ring.pushed, rows);
        assert_eq!(ring.popped, rows);
        assert!(ring.max_occupancy <= 2);
    }

    #[test]
    fn pruning_is_bit_identical_across_geometries() {
        // The heart of the pruning contract: skipping tiles with substitute
        // borders must not perturb the best cell — on every platform shape,
        // at every pruning level, against the sequential reference.
        let (a, b) = similar_pair(1_500, 11);
        let truth = rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign());
        for platform in [
            Platform::single(catalog::gtx680()),
            Platform::env1(),
            Platform::env2(),
            Platform::homogeneous(catalog::m2090(), 4),
        ] {
            let off = run_local(
                a.codes(),
                b.codes(),
                &platform,
                RunConfig::test_default().with_pruning(PruneMode::Off),
            );
            assert_eq!(off.best, truth);
            assert!(off.pruning.is_none(), "Off emits no pruning report");
            for mode in [PruneMode::Local, PruneMode::Distributed] {
                let pruned = run_local(
                    a.codes(),
                    b.codes(),
                    &platform,
                    RunConfig::test_default().with_pruning(mode),
                );
                assert_eq!(pruned.best, truth, "{mode} on {platform:?}");
                assert_eq!(pruned.total_cells, off.total_cells);
                let pr = pruned.pruning.expect("enabled modes report pruning");
                assert_eq!(pr.mode, mode);
                assert!(pr.tiles_total > 0);
                assert!(pr.watermark_lag >= 0, "watermark never exceeds true best");
            }
        }
    }

    #[test]
    fn distributed_pruning_skips_cells_on_high_identity_pairs() {
        // Acceptance check: on a 99%-identity pair the distributed watermark
        // prunes a substantial share of the off-diagonal matrix.
        let (a, b) = similar_pair(4_000, 30);
        let report = run_local(
            a.codes(),
            b.codes(),
            &Platform::env2(),
            RunConfig::test_default().with_pruning(PruneMode::Distributed),
        );
        assert_eq!(
            report.best,
            rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign())
        );
        let pr = report.pruning.unwrap();
        assert!(pr.tiles_pruned > 0, "high-identity run must prune tiles");
        assert!(
            pr.cells_skipped * 5 >= report.total_cells,
            "expected ≥ 20% of cells skipped, got {} of {}",
            pr.cells_skipped,
            report.total_cells
        );
        // Covered-cell accounting holds even with skips.
        let covered: u128 = report.devices.iter().map(|d| d.cells).sum();
        assert_eq!(covered, report.total_cells);
    }

    #[test]
    fn anchored_semantics_force_pruning_off() {
        // Score underestimation is only safe under Local semantics; anchored
        // runs must silently disable pruning rather than corrupt stage 2.
        let (a, b) = similar_pair(1_000, 31);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default().with_pruning(PruneMode::Distributed))
            .semantics(Semantics::Anchored)
            .run()
            .unwrap();
        assert!(report.pruning.is_none());
    }

    #[test]
    fn pruning_composes_with_recovery_bit_identically() {
        let (a, b) = similar_pair(2_000, 32);
        let cfg = RunConfig::test_default()
            .with_pruning(PruneMode::Distributed)
            .with_checkpoint(CheckpointCadence::EveryRows(4));
        let clean = run_local(a.codes(), b.codes(), &Platform::env2(), cfg.clone());
        let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg)
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 10,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(recovered.best, clean.best);
        assert_eq!(recovered.total_cells, clean.total_cells);
        assert_eq!(recovered.recovery.unwrap().recoveries, 1);
        let pr = recovered
            .pruning
            .expect("pruned recovery run reports pruning");
        assert!(pr.watermark_lag >= 0);
    }

    #[test]
    fn threaded_stall_breakdown_sums_to_wall_minus_busy() {
        let (a, b) = pair(3_000, 12);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(RunConfig::test_default())
            .run()
            .unwrap();
        let wall_ns = report.wall_time.unwrap().as_nanos() as u64;
        assert_eq!(report.devices.len(), 3);
        for d in &report.devices {
            let bd = d.stall.expect("threaded runs report stalls");
            let busy_ns = d.wall_busy.unwrap().as_nanos() as u64;
            assert_eq!(
                bd.total().as_nanos(),
                wall_ns - busy_ns,
                "device {}: {bd}",
                d.device
            );
        }
    }

    #[test]
    fn threaded_attribution_sums_to_makespan_and_matches_live() {
        let (a, b) = pair(3_000, 12);
        let total = (a.codes().len() * b.codes().len()) as u64;
        let live = LiveTelemetry::new(3, total);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(RunConfig::test_default())
            .live(Arc::clone(&live))
            .run()
            .unwrap();
        let wall_ns = report.wall_time.unwrap().as_nanos() as u64;
        assert_eq!(report.devices.len(), 3);
        let s = live.snapshot();
        for (i, d) in report.devices.iter().enumerate() {
            let attr = d.attribution.expect("threaded runs attribute phases");
            // The defining identity: phases sum to the makespan exactly.
            assert_eq!(attr.total_ns(), wall_ns, "device {}: {attr}", d.device);
            assert!(attr.compute_ns > 0, "device {} computed", d.device);
            // No checkpointing, no pruning, scalar-or-clean dispatch in
            // this config: those phases stay zero.
            assert_eq!(attr.checkpoint_ns, 0);
            assert_eq!(attr.prune_skip_ns, 0);
            // The live handle saw the same phase clocks the report did.
            assert_eq!(s.devices[i].wait_input_ns, attr.wait_input_ns);
            assert_eq!(s.devices[i].wait_output_ns, attr.wait_output_ns);
        }
        // Chain consumers pop borders; some wait time must have been
        // attributed somewhere downstream of device 0.
        assert!(report.devices[1..].iter().all(
            |d| d.attribution.unwrap().wait_input_ns > 0 || d.attribution.unwrap().other_ns > 0
        ));
    }

    #[test]
    fn attribution_covers_checkpoint_and_prune_phases() {
        // A recovered, pruned run exercises the checkpoint and prune-skip
        // clocks; the sum-to-makespan identity must survive both.
        let (a, b) = pair(3_000, 77);
        let cfg = RunConfig::test_default()
            .with_pruning(PruneMode::Distributed)
            .with_checkpoint(CheckpointCadence::EveryRows(4));
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 12,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(report.recovery.as_ref().unwrap().recoveries, 1);
        let wall_ns = report.wall_time.unwrap().as_nanos() as u64;
        let mut checkpointed = 0u64;
        for d in &report.devices {
            let attr = d.attribution.unwrap();
            assert_eq!(attr.total_ns(), wall_ns, "device {}: {attr}", d.device);
            checkpointed += attr.checkpoint_ns;
        }
        assert!(checkpointed > 0, "checkpoint deposits take measurable time");
        assert!(
            report.pruning.unwrap().tiles_pruned == 0
                || report
                    .devices
                    .iter()
                    .any(|d| d.attribution.unwrap().prune_skip_ns > 0
                        || d.attribution.unwrap().compute_ns > 0)
        );
    }

    #[test]
    fn flight_recorder_black_boxes_a_fault() {
        let (a, b) = pair(2_000, 21);
        let flight = megasw_obs::FlightRecorder::new(2, 64);
        let dir = std::env::temp_dir().join(format!("megasw-flight-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let dump = dir.join("fault.jsonl");
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .faults(FaultPlan {
                device: 0,
                fail_at_block_row: 3,
            })
            .flight(Arc::clone(&flight))
            .flight_dump_path(&dump)
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::DeviceFault { device: 0, .. })
        ));
        // Lane 0's ring replays the last moments and ends at the fault.
        let events = flight.events(0);
        let last = events.last().expect("lane 0 recorded events");
        assert_eq!(last.kind, megasw_obs::FlightKind::Fault);
        assert_eq!(last.row, 3);
        assert!(events
            .iter()
            .any(|e| e.kind == megasw_obs::FlightKind::Compute));
        // Lane 1 observed the poisoned ring (fault with aux 1).
        assert!(flight
            .events(1)
            .iter()
            .any(|e| e.kind == megasw_obs::FlightKind::Fault && e.aux == 1));
        // The builder dumped the black box as JSONL automatically.
        let text = std::fs::read_to_string(&dump).expect("dump file written on fault");
        assert!(text.contains("\"fault\""), "{text}");
        for line in text.lines() {
            megasw_obs::json::parse(line).expect("dump lines are valid JSON");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_recorder_wraps_and_survives_a_clean_run() {
        let (a, b) = pair(2_000, 22);
        let flight = megasw_obs::FlightRecorder::new(2, 8);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .flight(Arc::clone(&flight))
            .run()
            .unwrap();
        assert!(report.best.score > 0);
        // Capacity 8: the ring holds only the tail of the run, and every
        // retained event is well-formed.
        for lane in 0..2 {
            let events = flight.events(lane);
            assert!(!events.is_empty() && events.len() <= 8, "lane {lane}");
            assert!(events
                .iter()
                .all(|e| e.kind != megasw_obs::FlightKind::Fault));
        }
    }

    #[test]
    fn observer_collects_kernel_and_ring_spans() {
        let (a, b) = pair(2_000, 13);
        let obs = Recorder::new(ObsLevel::Full);
        let cfg = RunConfig::test_default();
        let rows = 2_000usize.div_ceil(cfg.block_h);
        PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .observer(obs.clone())
            .run()
            .unwrap();
        let spans = obs.spans();
        let kernels = spans.iter().filter(|s| s.kind == ObsKind::Kernel).count();
        // Two devices, one kernel span per device per block-row.
        assert_eq!(kernels, 2 * rows);
        assert!(spans.iter().any(|s| s.kind == ObsKind::RingPush));
        assert!(spans.iter().any(|s| s.kind == ObsKind::RingPopWait));
        // Device attribution covers both lanes.
        assert!(spans.iter().any(|s| s.device == Some(0)));
        assert!(spans.iter().any(|s| s.device == Some(1)));
        // Kernel spans on the consumer lane carry block-row attribution.
        assert!(spans
            .iter()
            .filter(|s| s.device == Some(1) && s.kind == ObsKind::Kernel)
            .all(|s| s.block_row.is_some()));
    }

    #[test]
    fn live_telemetry_reports_exact_totals() {
        let (a, b) = pair(2_000, 15);
        let cfg = RunConfig::test_default();
        let rows = 2_000usize.div_ceil(cfg.block_h) as u64;
        let total = (a.codes().len() * b.codes().len()) as u64;
        let live = LiveTelemetry::new(2, total);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .live(Arc::clone(&live))
            .run()
            .unwrap();
        let s = live.snapshot();
        assert_eq!(s.cells_done() as u128, report.total_cells);
        assert!((s.fraction_done() - 1.0).abs() < 1e-12);
        for d in &s.devices {
            assert_eq!(d.rows_total, rows);
            assert_eq!(d.rows_done, rows);
            assert_eq!(d.ring_occupancy, 0, "rings drain by the end");
            assert!(d.busy_ns > 0);
        }
    }

    #[test]
    fn live_handle_sized_for_platform_tolerates_dropped_slabs() {
        // 8-device platform, matrix too narrow for 8 slabs: the extra live
        // slots just stay at zero.
        let (a, b) = pair(200, 16);
        let p = Platform::homogeneous(catalog::m2090(), 8);
        let cfg = RunConfig::test_default();
        let total = (a.codes().len() * b.codes().len()) as u64;
        let live = LiveTelemetry::new(8, total);
        PipelineRun::new(a.codes(), b.codes(), &p)
            .config(cfg)
            .live(Arc::clone(&live))
            .run()
            .unwrap();
        let s = live.snapshot();
        assert_eq!(s.cells_done(), total);
        assert!(s.devices.iter().any(|d| d.rows_total == 0));
        assert!((s.fraction_done() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_schedule_parses_and_round_trips() {
        let s: FaultSchedule = "1:5,2:9:ring-push".parse().unwrap();
        assert_eq!(
            s.faults,
            vec![
                ScheduledFault {
                    device: 1,
                    block_row: 5,
                    phase: FaultPhase::Compute,
                },
                ScheduledFault {
                    device: 2,
                    block_row: 9,
                    phase: FaultPhase::RingPush,
                },
            ]
        );
        // Display always writes the explicit three-part form.
        assert_eq!(s.to_string(), "1:5:compute,2:9:ring-push");
        assert_eq!(s.to_string().parse::<FaultSchedule>().unwrap(), s);
        // Legacy FaultPlan converts to a compute-phase fault.
        let from_plan = FaultSchedule::from(FaultPlan {
            device: 1,
            fail_at_block_row: 5,
        });
        assert_eq!(from_plan.faults[0].phase, FaultPhase::Compute);
        assert!("x:1".parse::<FaultSchedule>().is_err());
        assert!("1:2:warp".parse::<FaultSchedule>().is_err());
        assert!("".parse::<FaultSchedule>().is_err());
        assert!("1:2:compute:extra".parse::<FaultSchedule>().is_err());
    }

    #[test]
    fn recovery_is_bit_identical_to_fault_free_run() {
        let (a, b) = pair(2_000, 20);
        let cfg = RunConfig::test_default();
        let clean = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg)
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 5,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(recovered.best, clean.best);
        assert_eq!(recovered.total_cells, clean.total_cells);
        let rec = recovered.recovery.expect("recovering runs report recovery");
        assert_eq!(rec.recoveries, 1);
        assert_eq!(rec.failed_devices, vec![1]);
        assert!(rec.checkpoints_taken > 0);
        assert!(rec.rewound_cells > 0);
        assert!(rec.rewound_cells <= recovered.total_cells);
        // The failed device holds no slab in the final report.
        assert!(recovered.devices.iter().all(|d| d.device != 1));
        // Fault-free runs don't grow a recovery report unless asked.
        assert!(clean.recovery.is_none());
    }

    #[test]
    fn recovery_is_bit_identical_in_every_fault_phase() {
        let (a, b) = pair(1_500, 21);
        let cfg = RunConfig::test_default();
        let clean = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg.clone())
            .run()
            .unwrap();
        for phase in [
            FaultPhase::RingPop,
            FaultPhase::Compute,
            FaultPhase::RingPush,
            FaultPhase::Transfer,
        ] {
            let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .faults(ScheduledFault {
                    device: 1,
                    block_row: 7,
                    phase,
                })
                .recover(RecoveryPolicy::default())
                .run()
                .unwrap();
            assert_eq!(recovered.best, clean.best, "phase {phase}");
            assert_eq!(recovered.recovery.unwrap().recoveries, 1, "phase {phase}");
        }
    }

    #[test]
    fn recovery_survives_multiple_faults_and_anchored_semantics() {
        let (a, b) = pair(2_000, 22);
        let cfg = RunConfig::test_default();
        for semantics in [Semantics::Local, Semantics::Anchored] {
            let clean = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone())
                .semantics(semantics)
                .run()
                .unwrap();
            let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
                .config(cfg.clone().with_checkpoint(CheckpointCadence::EveryRows(4)))
                .semantics(semantics)
                .faults("1:5,2:20:transfer".parse::<FaultSchedule>().unwrap())
                .recover(RecoveryPolicy {
                    max_device_failures: 2,
                })
                .run()
                .unwrap();
            assert_eq!(recovered.best, clean.best, "{semantics:?}");
            let rec = recovered.recovery.unwrap();
            assert_eq!(rec.recoveries, 2);
            assert_eq!(rec.failed_devices, vec![1, 2]);
            // Only device 0 survives.
            assert_eq!(recovered.devices.len(), 1);
            assert_eq!(recovered.devices[0].device, 0);
        }
    }

    #[test]
    fn recovery_from_fault_at_row_zero_restarts_from_scratch() {
        let (a, b) = pair(1_000, 23);
        let clean = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .run()
            .unwrap();
        let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .faults(FaultPlan {
                device: 0,
                fail_at_block_row: 0,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(recovered.best, clean.best);
        let rec = recovered.recovery.unwrap();
        assert_eq!(rec.resumed_from_rows, vec![0]);
    }

    #[test]
    fn recovery_budget_exhaustion_surfaces_the_fault() {
        let (a, b) = pair(1_500, 24);
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(RunConfig::test_default().with_checkpoint(CheckpointCadence::EveryRows(8)))
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 5,
            })
            .recover(RecoveryPolicy {
                max_device_failures: 0,
            })
            .run()
            .unwrap_err();
        assert_eq!(
            err.as_pipeline(),
            Some(&PipelineError::DeviceFault {
                device: 1,
                block_row: 5
            })
        );
    }

    #[test]
    fn recovery_rejects_bad_checkpoint_cadence() {
        let (a, b) = pair(500, 25);
        // A zero-row interval never validates, recovery or not.
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default().with_checkpoint(CheckpointCadence::EveryRows(0)))
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::InvalidConfig(_))
        ));
        // Recovery needs checkpoints: a disabled cadence is rejected.
        let err = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default().with_checkpoint(CheckpointCadence::Disabled))
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap_err();
        assert!(matches!(
            err.as_pipeline(),
            Some(PipelineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn recovery_rewind_accounting_matches_checkpoint_interval() {
        // Fault at block-row 10 with interval 4: every slab checkpointed
        // wave 8 before row 10 started (the wavefront skew is ≤ chain
        // depth, but the store only serves *complete* waves — so we assert
        // the resume row is a multiple of 4 no later than the fault row).
        let (a, b) = pair(2_000, 26);
        let recovered = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default().with_checkpoint(CheckpointCadence::EveryRows(4)))
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 10,
            })
            .recover(RecoveryPolicy {
                max_device_failures: 1,
            })
            .run()
            .unwrap();
        let rec = recovered.recovery.unwrap();
        let resumed = rec.resumed_from_rows[0];
        assert_eq!(resumed % 4, 0);
        assert!(resumed <= 10, "resume row {resumed} past the fault row");
        assert!(resumed > 0, "a wave before row 10 must be complete");
    }

    #[test]
    fn rebalance_stays_bit_identical_and_reports_evaluations() {
        use crate::config::RebalanceMode;
        let (a, b) = pair(3_000, 40);
        let truth = rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign());
        let cfg = RunConfig::test_default()
            .with_checkpoint(CheckpointCadence::EveryRows(2))
            .with_rebalance(RebalanceMode::On {
                threshold: 0.0,
                window_waves: 2,
            });
        let report = run_local(a.codes(), b.codes(), &Platform::env2(), cfg);
        assert_eq!(report.best, truth, "rebalance must not perturb the score");
        let rb = report.rebalance.expect("enabled rebalance reports");
        assert!(rb.evaluations > 0, "segment boundaries were evaluated");
        assert_eq!(rb.migrations as usize, rb.applied_at_rows.len());
        // Coverage accounting: checkpointed base + final segment == total.
        assert_eq!(report.total_cells, 3_000u128 * b.len() as u128);
        // Off runs don't grow a rebalance report.
        let off = run_local(
            a.codes(),
            b.codes(),
            &Platform::env2(),
            RunConfig::test_default(),
        );
        assert!(off.rebalance.is_none());
    }

    #[test]
    fn rebalance_composes_with_pruning_and_recovery_bit_identically() {
        use crate::config::RebalanceMode;
        let (a, b) = similar_pair(2_000, 41);
        let truth = rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign());
        let cfg = RunConfig::test_default()
            .with_pruning(PruneMode::Distributed)
            .with_checkpoint(CheckpointCadence::EveryRows(2))
            .with_rebalance(RebalanceMode::On {
                threshold: 0.0,
                window_waves: 2,
            });
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
            .config(cfg)
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 9,
            })
            .recover(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(report.best, truth);
        assert_eq!(report.recovery.as_ref().unwrap().recoveries, 1);
        let rb = report.rebalance.expect("rebalance report present");
        assert!(rb.evaluations > 0);
        // The failed device holds no slab after recovery, and later
        // rebalances never resurrect it.
        assert!(report.devices.iter().all(|d| d.device != 1));
    }

    #[test]
    fn rebalance_migration_shifts_columns_and_records_flight_events() {
        use crate::config::{PartitionPolicy, RebalanceMode};
        let (a, b) = pair(3_000, 42);
        let truth = rolling_best(a.codes(), b.codes(), &megasw_sw::ScoreScheme::cudalign());
        // Start from a deliberately lopsided split on a homogeneous pair of
        // devices: measured throughput is ~equal, so the first boundary
        // must migrate columns toward the starved device.
        let cfg = RunConfig::test_default()
            .with_partition(PartitionPolicy::Explicit(vec![9.0, 1.0]))
            .with_checkpoint(CheckpointCadence::EveryRows(2))
            .with_rebalance(RebalanceMode::On {
                threshold: 0.0,
                window_waves: 2,
            });
        let flight = megasw_obs::FlightRecorder::new(2, 256);
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(cfg)
            .flight(Arc::clone(&flight))
            .run()
            .unwrap();
        assert_eq!(report.best, truth);
        let rb = report.rebalance.expect("rebalance report present");
        assert!(rb.migrations > 0, "lopsided split must trigger a migration");
        assert!(rb.moved_columns > 0);
        assert!(rb.applied_at_rows.iter().all(|&r| r % 2 == 0));
        // Every migration logged a flight event carrying the new width.
        let rebalances: Vec<_> = (0..2)
            .flat_map(|lane| flight.events(lane))
            .filter(|e| e.kind == megasw_obs::FlightKind::Rebalance)
            .collect();
        assert!(!rebalances.is_empty());
        assert!(rebalances.iter().all(|e| e.aux > 0 && e.dur_ns == 0));
    }

    #[test]
    fn disabled_observer_records_nothing_but_stalls_still_computed() {
        let (a, b) = pair(1_000, 14);
        let obs = Recorder::disabled();
        let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
            .config(RunConfig::test_default())
            .observer(obs.clone())
            .run()
            .unwrap();
        assert!(obs.is_empty());
        assert!(report.devices.iter().all(|d| d.stall.is_some()));
    }
}
