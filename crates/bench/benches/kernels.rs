//! K1 — the DP kernel zoo: per-kernel cell rates that anchor every other
//! number in the evaluation, plus the block-pruning and traceback
//! ablations. Throughput unit = DP cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::prelude::*;
use megasw::sw::antidiag::antidiag_best;
use megasw::sw::banded::banded_best;
use megasw::sw::block::{compute_block, BlockInput};
use megasw::sw::border::{ColBorder, RowBorder};
use megasw::sw::grid::{run_sequential, BlockGrid};
use megasw::sw::prune::run_pruned;
use megasw_bench::cached_pair_exact;
use std::time::Duration;

fn bench_block_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("k1_block_kernel");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));

    let (a, b) = cached_pair_exact(4_096, 601);
    let scheme = ScoreScheme::cudalign();
    for side in [64usize, 256, 1_024, 4_096] {
        let top = RowBorder::zero(side);
        let left = ColBorder::zero(side);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::new("side", side), &side, |bench, &side| {
            bench.iter(|| {
                compute_block(
                    BlockInput {
                        a_rows: &a.codes()[..side],
                        b_cols: &b.codes()[..side],
                        top: &top,
                        left: &left,
                        row_offset: 1,
                        col_offset: 1,
                    },
                    &scheme,
                )
                .best
            })
        });
    }
    group.finish();
}

fn bench_whole_matrix_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("k1_whole_matrix");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair_exact(4_096, 601);
    let scheme = ScoreScheme::cudalign();
    let cells = (a.len() * b.len()) as u64;
    group.throughput(Throughput::Elements(cells));

    group.bench_function("gotoh_serial", |bench| {
        bench.iter(|| gotoh_best(a.codes(), b.codes(), &scheme))
    });
    group.bench_function("antidiagonal_serial", |bench| {
        bench.iter(|| antidiag_best(a.codes(), b.codes(), &scheme))
    });
    let grid = BlockGrid::new(a.len(), b.len(), 512, 512);
    group.bench_function("blocked_grid_512", |bench| {
        bench.iter(|| run_sequential(a.codes(), b.codes(), &grid, &scheme).best)
    });
    group.bench_function("blocked_grid_512_pruned", |bench| {
        bench.iter(|| run_pruned(a.codes(), b.codes(), &grid, &scheme).best)
    });
    group.bench_function("banded_w64", |bench| {
        bench.iter(|| banded_best(a.codes(), b.codes(), &scheme, 64).best)
    });
    group.finish();
}

fn bench_traceback(c: &mut Criterion) {
    let mut group = c.benchmark_group("k1_traceback");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair_exact(4_096, 602);
    let scheme = ScoreScheme::cudalign();
    group.bench_function("local_align_4k", |bench| {
        bench.iter(|| local_align(a.codes(), b.codes(), &scheme).score)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block_kernel,
    bench_whole_matrix_kernels,
    bench_traceback
);
criterion_main!(benches);
