//! The unified kernel surface: one trait, many engines, runtime dispatch.
//!
//! Historically each DP entry point was a free function in its own module
//! (`block::compute_block`, `gotoh::gotoh_best`, `banded::banded_best`),
//! which made it impossible to swap the inner loop without touching every
//! caller. This module collapses them behind the [`Kernel`] trait: the
//! threaded pipeline, the DES model, the baselines and the tests all ask
//! for a kernel once and invoke every DP primitive through it.
//!
//! Three engines implement the trait:
//!
//! * **scalar** — the original portable inner loops; always available and
//!   the ground truth the vector engines are tested against;
//! * **sse41** — anti-diagonal wavefront with 8 × i16 lanes (SSE4.1);
//! * **avx2** — the same wavefront with 16 × i16 lanes (AVX2).
//!
//! The vector engines use saturating i16 arithmetic on **bias-rebased**
//! scores (every value is stored relative to the tile's corner, so absolute
//! scores far beyond `i16::MAX` still vectorize) and fall back to the
//! scalar i32 kernel whenever a tile's dynamic range could leave the safe
//! band — the *overflow rescue* protocol described in DESIGN.md §11. Every
//! engine is **bit-identical**: same scores, same borders, same
//! deterministic best-cell tie-break.
//!
//! [`KernelDispatch`] picks the engine: [`KernelDispatch::Auto`] probes the
//! CPU at runtime (AVX2 → SSE4.1 → scalar, overridable with the
//! `MEGASW_KERNEL` environment variable); the `Force*` variants insist on
//! one engine and error when the host cannot run it.
//!
//! ```
//! use megasw_sw::kernel::{auto, scalar};
//! use megasw_sw::ScoreScheme;
//! use megasw_seq::DnaSeq;
//!
//! let a = DnaSeq::from_str_unwrap("TTTACGTACGT");
//! let b = DnaSeq::from_str_unwrap("GGACGTACGTGG");
//! let scheme = ScoreScheme::cudalign();
//! let best = auto().best(a.codes(), b.codes(), &scheme);
//! assert_eq!(best, scalar().best(a.codes(), b.codes(), &scheme));
//! assert_eq!(best.score, 8);
//! ```

use crate::banded::{self, BandedResult};
use crate::block::{self, BlockInput, BlockOutput};
use crate::border::{ColBorder, RowBorder};
use crate::cell::BestCell;
use crate::grid::BlockGrid;
use crate::scoring::ScoreScheme;

/// How a run picks its DP engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelDispatch {
    /// Probe the CPU: AVX2 if available, else SSE4.1, else scalar. The
    /// `MEGASW_KERNEL` environment variable (`scalar|sse41|avx2`) overrides
    /// the probe — useful for CI sweeps — but never a `Force*` request.
    #[default]
    Auto,
    /// Always use the scalar i32 engine.
    ForceScalar,
    /// Require the SSE4.1 engine; [`select`] errors if unsupported.
    ForceSse41,
    /// Require the AVX2 engine; [`select`] errors if unsupported.
    ForceAvx2,
}

impl KernelDispatch {
    /// Canonical lowercase name, matching the CLI `--kernel` syntax.
    pub fn name(self) -> &'static str {
        match self {
            KernelDispatch::Auto => "auto",
            KernelDispatch::ForceScalar => "scalar",
            KernelDispatch::ForceSse41 => "sse41",
            KernelDispatch::ForceAvx2 => "avx2",
        }
    }

    /// Parse a CLI / environment spelling.
    pub fn parse(s: &str) -> Result<KernelDispatch, String> {
        match s {
            "auto" => Ok(KernelDispatch::Auto),
            "scalar" => Ok(KernelDispatch::ForceScalar),
            "sse41" => Ok(KernelDispatch::ForceSse41),
            "avx2" => Ok(KernelDispatch::ForceAvx2),
            other => Err(format!(
                "unknown kernel dispatch `{other}` (expected auto|scalar|sse41|avx2)"
            )),
        }
    }

    /// The engine a *model* (e.g. the DES backend, which computes no real
    /// cells) should report: `Force*` maps straight to its engine —
    /// a simulated device does not need host support — and `Auto` maps to
    /// what the probe on this host would pick.
    pub fn modeled_id(self) -> KernelId {
        match self {
            KernelDispatch::Auto => detected_best(),
            KernelDispatch::ForceScalar => KernelId::Scalar,
            KernelDispatch::ForceSse41 => KernelId::Sse41,
            KernelDispatch::ForceAvx2 => KernelId::Avx2,
        }
    }
}

impl std::fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelDispatch {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelDispatch::parse(s)
    }
}

/// The engine a dispatch request actually resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    Scalar,
    Sse41,
    Avx2,
}

impl KernelId {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Scalar => "scalar",
            KernelId::Sse41 => "sse41",
            KernelId::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dispatch request together with the engine it resolved to — what a run
/// records in its report so an artifact says which inner loop produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelSelection {
    /// What was asked for.
    pub dispatch: KernelDispatch,
    /// What actually ran (or, for analytic models, was modeled).
    pub resolved: KernelId,
}

impl KernelSelection {
    /// Selection for an analytic model (see [`KernelDispatch::modeled_id`]).
    pub fn modeled(dispatch: KernelDispatch) -> KernelSelection {
        KernelSelection {
            dispatch,
            resolved: dispatch.modeled_id(),
        }
    }
}

impl Default for KernelSelection {
    fn default() -> Self {
        KernelSelection::modeled(KernelDispatch::Auto)
    }
}

impl std::fmt::Display for KernelSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dispatch {
            KernelDispatch::Auto => write!(f, "auto({})", self.resolved),
            _ => write!(f, "{}", self.resolved),
        }
    }
}

/// One DP engine: every kernel primitive of the workspace behind a single
/// object-safe surface.
///
/// ## Contract
///
/// Implementations must be **bit-identical** to the scalar engine (and thus
/// to [`crate::reference`]): identical `H`/`E`/`F` border values, identical
/// best cell under the deterministic `(score, i, j)` order of
/// [`BestCell::beats`], identical cell counts. An engine may internally
/// fall back to scalar execution for any tile (degenerate geometry,
/// overflow rescue) — callers cannot observe the difference.
///
/// Implementations are stateless and `Send + Sync`: one `&'static dyn
/// Kernel` is resolved per run and shared by every worker thread.
pub trait Kernel: Send + Sync {
    /// Which engine this is.
    fn id(&self) -> KernelId;

    /// Border-to-border tile kernel, local (Smith-Waterman) semantics.
    /// See [`crate::block`] for the dataflow contract.
    fn block(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput;

    /// Border-to-border tile kernel, anchored semantics (no zero floor).
    fn block_anchored(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput;

    /// Best local-alignment cell over whole sequences in `O(n)` memory —
    /// the unified replacement for `gotoh_best`. The default implementation
    /// strip-mines the matrix through [`Kernel::block`], so vector engines
    /// accelerate it without a dedicated scan.
    fn best(&self, a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
        const STRIP: usize = 512;
        let grid = BlockGrid::new(a.len(), b.len(), STRIP, STRIP);
        let rows = grid.rows();
        let cols = grid.cols();
        let mut best = BestCell::ZERO;
        let mut tops: Vec<RowBorder> = (0..cols)
            .map(|c| RowBorder::zero(grid.col_width(c)))
            .collect();
        for r in 0..rows {
            let (i0, i1) = grid.row_range(r);
            let mut left = ColBorder::zero(i1 - i0);
            for (c, top) in tops.iter_mut().enumerate() {
                let (j0, j1) = grid.col_range(c);
                let out = self.block(
                    BlockInput {
                        a_rows: &a[i0 - 1..i1 - 1],
                        b_cols: &b[j0 - 1..j1 - 1],
                        top,
                        left: &left,
                        row_offset: i0,
                        col_offset: j0,
                    },
                    scheme,
                );
                best = best.merge(out.best);
                *top = out.bottom;
                left = out.right;
            }
        }
        best
    }

    /// Banded local alignment with half-width `width`. The band scan is
    /// control-flow-irregular and not worth vectorizing at current sizes,
    /// so the default (scalar) implementation is shared by every engine;
    /// routing it through the trait keeps one call surface.
    fn banded(&self, a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
        banded::banded_best_impl(a, b, scheme, width)
    }

    /// Adaptive band doubling until convergence (see [`crate::banded`]).
    fn banded_adaptive(
        &self,
        a: &[u8],
        b: &[u8],
        scheme: &ScoreScheme,
        initial_width: usize,
    ) -> BandedResult {
        banded::banded_adaptive_impl(a, b, scheme, initial_width)
    }
}

/// The portable scalar engine — the original i32 inner loops.
#[derive(Debug, Clone, Copy)]
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn id(&self) -> KernelId {
        KernelId::Scalar
    }

    fn block(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        block::scalar_block(input, scheme)
    }

    fn block_anchored(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        block::scalar_block_anchored(input, scheme)
    }

    fn best(&self, a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
        // The rolling-row scan beats strip-mining for the scalar engine
        // (no border bookkeeping) and is bit-identical to it.
        crate::gotoh::rolling_best(a, b, scheme)
    }
}

static SCALAR_KERNEL: ScalarKernel = ScalarKernel;

/// The always-available scalar engine.
pub fn scalar() -> &'static dyn Kernel {
    &SCALAR_KERNEL
}

#[cfg(target_arch = "x86_64")]
fn detected_best() -> KernelId {
    if std::arch::is_x86_feature_detected!("avx2") {
        KernelId::Avx2
    } else if std::arch::is_x86_feature_detected!("sse4.1") {
        KernelId::Sse41
    } else {
        KernelId::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detected_best() -> KernelId {
    KernelId::Scalar
}

/// Engines the current host can run, best first.
pub fn available() -> Vec<KernelId> {
    let mut out = Vec::with_capacity(3);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(KernelId::Avx2);
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            out.push(KernelId::Sse41);
        }
    }
    out.push(KernelId::Scalar);
    out
}

fn env_override() -> Option<KernelDispatch> {
    let raw = std::env::var("MEGASW_KERNEL").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    KernelDispatch::parse(trimmed).ok()
}

/// Resolve a dispatch request to an engine. `Auto` probes the CPU (after
/// honouring a `MEGASW_KERNEL` override); `Force*` errors with a
/// description when the host lacks the instruction set.
pub fn select(dispatch: KernelDispatch) -> Result<&'static dyn Kernel, String> {
    let effective = match dispatch {
        KernelDispatch::Auto => env_override().unwrap_or(KernelDispatch::Auto),
        forced => forced,
    };
    match effective {
        KernelDispatch::Auto => Ok(match detected_best() {
            KernelId::Scalar => scalar(),
            #[cfg(target_arch = "x86_64")]
            KernelId::Sse41 => crate::simd::sse41_kernel(),
            #[cfg(target_arch = "x86_64")]
            KernelId::Avx2 => crate::simd::avx2_kernel(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar(),
        }),
        KernelDispatch::ForceScalar => Ok(scalar()),
        KernelDispatch::ForceSse41 => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("sse4.1") {
                    return Ok(crate::simd::sse41_kernel());
                }
            }
            Err("kernel dispatch `sse41` requested but this CPU does not support SSE4.1".into())
        }
        KernelDispatch::ForceAvx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    return Ok(crate::simd::avx2_kernel());
                }
            }
            Err("kernel dispatch `avx2` requested but this CPU does not support AVX2".into())
        }
    }
}

/// The engine `Auto` dispatch resolves to on this host (ignoring any
/// `MEGASW_KERNEL` override is deliberate here: this is the probe result).
pub fn auto() -> &'static dyn Kernel {
    select(match env_override() {
        Some(d) => d,
        None => KernelDispatch::Auto,
    })
    .unwrap_or_else(|_| scalar())
}

/// Number of tiles the vector engines have re-run through the scalar i32
/// path because the i16 band could not hold them (the overflow-rescue
/// protocol). Diagnostic; monotone over the process lifetime.
pub fn simd_rescues() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        crate::simd::rescue_count()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// Wall-clock nanoseconds the overflow-rescue protocol has spent re-running
/// tiles through the scalar path. Like [`simd_rescues`], process-global and
/// monotone; phase attribution samples it before and after a run to bill
/// rescue time as its own phase.
pub fn simd_rescue_ns() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        crate::simd::rescue_ns()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// [`simd_rescues`] restricted to the calling thread. A pipeline worker
/// samples this before and after its run to get exact per-device rescue
/// counts even with other workers (or tests) rescuing concurrently.
pub fn simd_rescues_thread() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        crate::simd::rescue_count_thread()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// [`simd_rescue_ns`] restricted to the calling thread; see
/// [`simd_rescues_thread`].
pub fn simd_rescue_ns_thread() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        crate::simd::rescue_ns_thread()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    #[test]
    fn dispatch_parse_roundtrip() {
        for d in [
            KernelDispatch::Auto,
            KernelDispatch::ForceScalar,
            KernelDispatch::ForceSse41,
            KernelDispatch::ForceAvx2,
        ] {
            assert_eq!(KernelDispatch::parse(d.name()).unwrap(), d);
            assert_eq!(d.name().parse::<KernelDispatch>().unwrap(), d);
        }
        assert!(KernelDispatch::parse("sse42").is_err());
        assert!(KernelDispatch::parse("").is_err());
    }

    #[test]
    fn selection_display_distinguishes_auto_from_forced() {
        let auto_sel = KernelSelection {
            dispatch: KernelDispatch::Auto,
            resolved: KernelId::Avx2,
        };
        assert_eq!(auto_sel.to_string(), "auto(avx2)");
        let forced = KernelSelection {
            dispatch: KernelDispatch::ForceScalar,
            resolved: KernelId::Scalar,
        };
        assert_eq!(forced.to_string(), "scalar");
    }

    #[test]
    fn scalar_is_always_selectable_and_auto_never_fails() {
        assert_eq!(
            select(KernelDispatch::ForceScalar).unwrap().id(),
            KernelId::Scalar
        );
        let k = select(KernelDispatch::Auto).unwrap();
        assert!(available().contains(&k.id()));
        assert_eq!(available().last(), Some(&KernelId::Scalar));
    }

    #[test]
    fn forced_engines_match_host_support() {
        for (dispatch, id) in [
            (KernelDispatch::ForceSse41, KernelId::Sse41),
            (KernelDispatch::ForceAvx2, KernelId::Avx2),
        ] {
            match select(dispatch) {
                Ok(k) => {
                    assert_eq!(k.id(), id);
                    assert!(available().contains(&id));
                }
                Err(msg) => {
                    assert!(!available().contains(&id));
                    assert!(msg.contains(dispatch.name()));
                }
            }
        }
    }

    #[test]
    fn every_available_engine_matches_scalar_best() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::sized(1_500, 0x5E_01)).generate();
        let (b, _) = DivergenceModel::test_scale(0x5E_02).apply(&a);
        let want = scalar().best(a.codes(), b.codes(), &scheme);
        for id in available() {
            let k = select(match id {
                KernelId::Scalar => KernelDispatch::ForceScalar,
                KernelId::Sse41 => KernelDispatch::ForceSse41,
                KernelId::Avx2 => KernelDispatch::ForceAvx2,
            })
            .unwrap();
            assert_eq!(k.best(a.codes(), b.codes(), &scheme), want, "{id}");
        }
    }

    #[test]
    fn trait_banded_matches_free_standing_scan() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::sized(800, 0x5E_03)).generate();
        let (b, _) = DivergenceModel::snp_only(0x5E_04, 0.02).apply(&a);
        let via_trait = scalar().banded(a.codes(), b.codes(), &scheme, 8);
        let direct = crate::banded::banded_best_impl(a.codes(), b.codes(), &scheme, 8);
        assert_eq!(via_trait, direct);
        let adaptive = scalar().banded_adaptive(a.codes(), b.codes(), &scheme, 4);
        assert_eq!(adaptive.best, scalar().best(a.codes(), b.codes(), &scheme));
    }

    #[test]
    fn default_strip_mined_best_equals_rolling_best() {
        // The default trait implementation (strip-mined through block())
        // must agree with the scalar rolling scan — this is what makes the
        // vector engines' `best` exact.
        struct StripScalar;
        impl Kernel for StripScalar {
            fn id(&self) -> KernelId {
                KernelId::Scalar
            }
            fn block(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
                crate::block::compute_block_impl::<true>(input, scheme)
            }
            fn block_anchored(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
                crate::block::compute_block_impl::<false>(input, scheme)
            }
            // `best` left as the default strip-mined implementation.
        }
        let scheme = ScoreScheme::cudalign();
        for (len, seed) in [(0usize, 1u64), (1, 2), (511, 3), (512, 4), (1_300, 5)] {
            let a = ChromosomeGenerator::new(GenerateConfig::sized(len.max(1), seed)).generate();
            let (b, _) = DivergenceModel::test_scale(seed + 50).apply(&a);
            let (a, b) = if len == 0 {
                (&[][..], b.codes())
            } else {
                (a.codes(), b.codes())
            };
            assert_eq!(
                StripScalar.best(a, b, &scheme),
                scalar().best(a, b, &scheme),
                "len {len}"
            );
        }
    }

    #[test]
    fn modeled_id_maps_forced_variants_without_host_probe() {
        assert_eq!(KernelDispatch::ForceScalar.modeled_id(), KernelId::Scalar);
        assert_eq!(KernelDispatch::ForceSse41.modeled_id(), KernelId::Sse41);
        assert_eq!(KernelDispatch::ForceAvx2.modeled_id(), KernelId::Avx2);
        assert!(available().contains(&KernelDispatch::Auto.modeled_id()));
    }
}
