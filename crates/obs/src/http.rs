//! A std-only HTTP/1.1 endpoint serving live run telemetry.
//!
//! Post-hoc exports (`--metrics`, `--trace-out`) require the run to
//! finish; a multi-hour megabase comparison deserves a scrape target
//! *while it executes*. This module provides one with zero dependencies:
//! a [`MetricsHub`] that the pipeline publishes snapshots into, and a
//! [`MetricsServer`] — a `TcpListener` accept loop on a background thread
//! answering three routes:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   hub's current registry, straight from [`crate::prom::prometheus`].
//! * `GET /health` — a tiny JSON liveness document:
//!   `{"healthy": true, "state": "running"}`.
//! * `GET /flight` — the flight-recorder rings as JSONL (empty body when
//!   no recorder is attached).
//!
//! Everything else is `404`; non-GET methods are `405`. The server is
//! deliberately minimal — one connection at a time, bounded request
//! reads, no keep-alive — because its job is a scrape every few seconds,
//! not traffic. The accept socket is non-blocking and the loop polls a
//! stop flag every ~25 ms, so [`MetricsServer::shutdown`] returns
//! promptly without needing a self-connect to unblock `accept`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::flight::FlightRecorder;
use crate::metrics::MetricsRegistry;
use crate::prom::prometheus;

/// Shared state between a running pipeline (writer) and the HTTP server
/// (reader). The pipeline publishes registry snapshots at row-ish
/// cadence; scrapes serve whatever the latest snapshot says.
#[derive(Debug)]
pub struct MetricsHub {
    registry: Mutex<MetricsRegistry>,
    healthy: AtomicBool,
    state: Mutex<String>,
    flight: Mutex<Option<Arc<FlightRecorder>>>,
}

impl MetricsHub {
    pub fn new() -> Arc<MetricsHub> {
        Arc::new(MetricsHub {
            registry: Mutex::new(MetricsRegistry::new()),
            healthy: AtomicBool::new(true),
            state: Mutex::new("starting".to_string()),
            flight: Mutex::new(None),
        })
    }

    /// Replace the served registry with `registry`. Cheap enough to call
    /// per sampling tick: the registry is counters plus small histograms.
    pub fn publish(&self, registry: MetricsRegistry) {
        *self.registry.lock().unwrap() = registry;
    }

    /// Current snapshot (clone) of the served registry.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.lock().unwrap().clone()
    }

    /// Attach the run's flight recorder so `/flight` serves live rings.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        *self.flight.lock().unwrap() = Some(flight);
    }

    /// Update the `/health` document: liveness plus a free-form state
    /// label ("running", "recovering", "done", …).
    pub fn set_health(&self, healthy: bool, state: &str) {
        self.healthy.store(healthy, Ordering::Relaxed);
        *self.state.lock().unwrap() = state.to_string();
    }

    fn health_json(&self) -> String {
        let healthy = self.healthy.load(Ordering::Relaxed);
        let state = self.state.lock().unwrap().clone();
        format!(
            "{{\"healthy\": {}, \"state\": \"{}\"}}\n",
            healthy,
            state.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }

    fn flight_jsonl(&self) -> String {
        match self.flight.lock().unwrap().as_ref() {
            Some(fr) => fr.dump_jsonl(),
            None => String::new(),
        }
    }
}

/// The background scrape endpoint. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins it.
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port — see [`MetricsServer::local_addr`]) and start serving `hub`.
    pub fn bind(addr: &str, hub: Arc<MetricsHub>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("megasw-metrics-http".to_string())
            .spawn(move || serve_loop(listener, hub, stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — the actual port when bound with port `0`.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: TcpListener, hub: Arc<MetricsHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrape traffic is tiny; a failed connection only loses
                // that one scrape.
                let _ = handle_connection(stream, &hub);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, hub: &MetricsHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = read_request_head(&mut stream)?;
    let (status, content_type, body) = route(&request, hub);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read until the end of the request head (`\r\n\r\n`), bounded at 8 KiB.
/// We never read a body: all routes are GET.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Dispatch a raw request head to `(status, content-type, body)`.
fn route(request: &str, hub: &MetricsHub) -> (&'static str, &'static str, String) {
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Ignore any query string: scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus(&hub.registry.lock().unwrap()),
        ),
        "/health" => ("200 OK", "application/json", hub.health_json()),
        "/flight" => ("200 OK", "application/x-ndjson", hub.flight_jsonl()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /health or /flight\n".to_string(),
        ),
    }
}

/// Minimal scrape client: `GET path` against `addr`, returning
/// `(status_line, body)`. Shared by the CLI's `metrics_scrape` binary and
/// the tests so CI exercises the same code path.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = match raw.find("\r\n\r\n") {
        Some(i) => raw[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightEvent, FlightKind, FlightRecorder};
    use crate::json;
    use crate::prom::validate_exposition;

    fn hub_with_data() -> Arc<MetricsHub> {
        let hub = MetricsHub::new();
        let mut reg = MetricsRegistry::new();
        reg.incr("stall.startup_ns", 123);
        reg.incr("attr.d0.wait_input_ns", 456);
        reg.observe("gcups.device", 17.5);
        hub.publish(reg);
        hub.set_health(true, "running");
        hub
    }

    #[test]
    fn metrics_endpoint_serves_valid_exposition() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        let summary = validate_exposition(&body).expect("served exposition must validate");
        assert!(summary.families >= 3, "{summary:?}");
        assert!(body.contains("megasw_stall_startup_ns"), "{body}");
        server.shutdown();
    }

    #[test]
    fn health_endpoint_reflects_hub_state() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/health").unwrap();
        assert!(status.contains("200"), "{status}");
        let v = json::parse(body.trim()).unwrap();
        assert_eq!(v.get("healthy"), Some(&json::Value::Bool(true)));
        assert_eq!(v.get("state").unwrap().as_str(), Some("running"));
        hub.set_health(false, "recovering");
        let (_, body) = http_get(&addr, "/health").unwrap();
        let v = json::parse(body.trim()).unwrap();
        assert_eq!(v.get("healthy"), Some(&json::Value::Bool(false)));
        assert_eq!(v.get("state").unwrap().as_str(), Some("recovering"));
        server.shutdown();
    }

    #[test]
    fn flight_endpoint_serves_the_rings_and_unknown_paths_404() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        // No recorder attached yet: empty body, still 200.
        let (status, body) = http_get(&addr, "/flight").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.is_empty(), "{body}");
        let fr = FlightRecorder::new(1, 8);
        fr.record(
            0,
            FlightEvent {
                kind: FlightKind::Fault,
                device: 2,
                row: 40,
                t_ns: 99,
                dur_ns: 0,
                aux: 0,
            },
        );
        hub.attach_flight(Arc::clone(&fr));
        let (_, body) = http_get(&addr, "/flight").unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(json::parse(body.trim()).is_ok(), "{body}");
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let hub = MetricsHub::new();
        let server = MetricsServer::bind("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.shutdown();
    }
}
