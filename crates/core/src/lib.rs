//! # megasw — fine-grain parallel megabase Smith-Waterman on (simulated)
//! heterogeneous multi-GPU platforms
//!
//! `megasw` reproduces, in pure Rust, the system of *"Fine-grain parallel
//! megabase sequence comparison with multiple heterogeneous GPUs"* (PPoPP
//! 2014): the exact Smith-Waterman algorithm with affine gaps executed over
//! one huge DP matrix whose columns are spread across a chain of GPUs,
//! with border elements streamed to each right-hand neighbour through a
//! circular buffer that hides communication behind computation, and slab
//! widths sized to each GPU's compute power.
//!
//! Having no CUDA hardware, the workspace substitutes a **simulated GPU
//! platform** with two coupled backends (see `DESIGN.md`):
//!
//! * the **threaded runtime** executes the real kernels with real
//!   synchronization (one thread per device, real rings) and produces
//!   bit-exact Smith-Waterman results;
//! * the **discrete-event simulator** times the identical schedule on a
//!   calibrated 2012-era device catalog and produces the paper-comparable
//!   GCUPS picture.
//!
//! ## Quickstart
//!
//! ```
//! use megasw::prelude::*;
//!
//! // A synthetic homologous pair (ancestor + human–chimp-like divergence).
//! let human = ChromosomeGenerator::new(GenerateConfig::sized(20_000, 42)).generate();
//! let (chimp, _) = DivergenceModel::human_chimp(7).apply(&human);
//!
//! // Compare them on the paper's heterogeneous 3-GPU environment, with an
//! // observer collecting spans for a Chrome trace.
//! let platform = Platform::env2();
//! let config = RunConfig::paper_default().with_block(256);
//! let obs = Recorder::new(ObsLevel::Full);
//! let report = PipelineRun::new(human.codes(), chimp.codes(), &platform)
//!     .config(config.clone())
//!     .observer(obs.clone())
//!     .run()
//!     .unwrap();
//!
//! // The best cell is bit-identical to the sequential reference…
//! let oracle = kernel::scalar().best(human.codes(), chimp.codes(), &config.scheme);
//! assert_eq!(report.best, oracle);
//!
//! // …every device reports where its idle time went…
//! assert!(report.devices.iter().all(|d| d.stall.is_some()));
//!
//! // …the spans export as a chrome://tracing document…
//! let names: Vec<String> = platform.devices.iter().map(|d| d.name.clone()).collect();
//! let trace = chrome_trace(&obs.spans(), &names);
//! assert!(trace.contains("traceEvents"));
//!
//! // …and the same schedule can be timed on the simulated hardware.
//! let sim = DesSim::new(human.len(), chimp.len(), &platform).config(config).run();
//! assert!(sim.report.gcups_sim.unwrap() > 0.0);
//! ```
//!
//! The five crates re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`seq`] | sequences: generation, divergence, FASTA, benchmark pairs |
//! | [`sw`] | DP kernels: reference, Gotoh, block kernel, SIMD wavefront + dispatch, pruning, traceback |
//! | [`gpusim`] | simulated hardware: device catalog, links, schedule engine |
//! | [`multigpu`] | the paper's system: partitioning, rings, pipeline, DES runs |

pub use megasw_gpusim as gpusim;
pub use megasw_multigpu as multigpu;
pub use megasw_obs as obs;
pub use megasw_seq as seq;
pub use megasw_sw as sw;

/// The commonly used names in one import.
pub mod prelude {
    pub use megasw_gpusim::{catalog, ClockDrift, DeviceSpec, LinkSpec, Platform, SimTime};
    pub use megasw_multigpu::autotune::{autotune, TuneResult};
    pub use megasw_multigpu::baseline::{cpu_parallel, cpu_serial};
    #[allow(deprecated)]
    pub use megasw_multigpu::batch::PairOutcome;
    pub use megasw_multigpu::batch::{
        jobs_from_fasta_pair, jobs_from_manifest, BatchConfig, BatchFault, BatchJob, BatchPlan,
        BatchReport, BatchRun, BatchSim, BatchSimReport, BatchSpec,
    };
    pub use megasw_multigpu::checkpoint::{Checkpoint, CheckpointStore, RecoveryPolicy};
    pub use megasw_multigpu::desrun::DeviceLossEvent;
    pub use megasw_multigpu::desrun::{run_des, run_des_bulk, DesRun, DesSim};
    pub use megasw_multigpu::error::MegaswError;
    pub use megasw_multigpu::job::{JobKind, JobOutcome, JobReport, JobSpec};
    pub use megasw_multigpu::memory::{check_platform, plan_for, DeviceMemoryPlan};
    pub use megasw_multigpu::pipeline::{
        FaultPhase, FaultPlan, FaultSchedule, PipelineRun, ScheduledFault, Semantics,
    };
    pub use megasw_multigpu::service::{AlignService, JobState, JobStatus, ServiceConfig};
    pub use megasw_multigpu::stages::{
        multigpu_local_align, multigpu_local_align_live, multigpu_local_align_observed, StageTimes,
    };
    pub use megasw_multigpu::stats::{
        DeviceReport, PruningReport, RebalanceReport, RecoveryReport, StallAttribution,
        StallBreakdown,
    };
    pub use megasw_multigpu::{
        make_slabs, BorderMsg, CheckpointCadence, KernelPolicy, PartitionPolicy, PruneMode,
        RebalanceMode, RunConfig, RunReport, Slab,
    };
    pub use megasw_obs::{
        chrome_trace, http_delete, http_get, http_post, http_request, metrics_json, prometheus,
        render_progress_line, validate as validate_trace, DeviceSnapshot, FlightEvent, FlightKind,
        FlightRecorder, Handler, LiveSnapshot, LiveTelemetry, MetricsHub, MetricsRegistry,
        MetricsServer, ObsKind, ObsLevel, ObsSpan, ProgressSampler, Recorder, Request, Response,
        RingGauge, StallPhase,
    };
    pub use megasw_seq::{
        ChromosomeGenerator, ChromosomePair, DivergenceModel, DnaSeq, GenerateConfig, Nucleotide,
        PairCatalog, PairSpec,
    };
    pub use megasw_sw::kernel;
    pub use megasw_sw::render::render_alignment;
    pub use megasw_sw::traceback::{local_align, AlignOp, LocalAlignment};
    pub use megasw_sw::{
        BestCell, Kernel, KernelDispatch, KernelId, KernelSelection, Score, ScoreScheme,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_sufficient_for_the_headline_flow() {
        let human = ChromosomeGenerator::new(GenerateConfig::sized(5_000, 1)).generate();
        let (chimp, _) = DivergenceModel::test_scale(2).apply(&human);
        let config = RunConfig::paper_default().with_block(128);
        let report = PipelineRun::new(human.codes(), chimp.codes(), &Platform::env2())
            .config(config.clone())
            .run()
            .unwrap();
        assert_eq!(
            report.best,
            kernel::scalar().best(human.codes(), chimp.codes(), &config.scheme)
        );
        assert!(report.devices.iter().all(|d| d.stall.is_some()));
    }
}
