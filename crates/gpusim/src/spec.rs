//! Device specifications.

use crate::link::LinkSpec;

/// Static description of one simulated GPU.
///
/// The compute model is deliberately coarse — what matters for the paper's
/// claims is each device's *sustained Smith-Waterman cell rate* and how it
/// degrades when the wavefront offers fewer blocks than the device has SMs.
/// `cells_per_cycle_per_sm` is therefore calibrated per board (see
/// [`crate::catalog`]) so that `peak_gcups()` lands on the GCUPS that
/// CUDAlign-class kernels sustained on the real silicon, rather than being
/// derived from core counts (which would require modeling instruction mixes
/// we have no way to validate offline).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name ("GeForce GTX 680").
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Shader clock in MHz.
    pub clock_mhz: u32,
    /// Calibrated sustained DP-cell throughput per SM per clock cycle.
    pub cells_per_cycle_per_sm: f64,
    /// Device memory in MiB (slab residency checks).
    pub mem_mib: u64,
    /// Host link (PCIe) characteristics.
    pub link: LinkSpec,
    /// Fixed kernel-launch overhead in nanoseconds.
    pub launch_overhead_ns: u64,
}

impl DeviceSpec {
    /// Peak sustained cell rate in cells/second (all SMs busy).
    pub fn peak_cells_per_sec(&self) -> f64 {
        self.sms as f64 * self.clock_mhz as f64 * 1e6 * self.cells_per_cycle_per_sm
    }

    /// Peak sustained GCUPS (billions of cells updated per second).
    pub fn peak_gcups(&self) -> f64 {
        self.peak_cells_per_sec() / 1e9
    }

    /// Device memory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_mib * 1024 * 1024
    }

    /// Relative compute power against another device (used by the
    /// performance-proportional partitioner).
    pub fn relative_power(&self, other: &DeviceSpec) -> f64 {
        self.peak_cells_per_sec() / other.peak_cells_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec {
            name: "TestBoard".into(),
            sms: 8,
            clock_mhz: 1_000,
            cells_per_cycle_per_sm: 5.0,
            mem_mib: 2048,
            link: LinkSpec::pcie2_x16(),
            launch_overhead_ns: 5_000,
        }
    }

    #[test]
    fn peak_rates() {
        let s = spec();
        // 8 SMs · 1 GHz · 5 cells = 40 Gcells/s.
        assert!((s.peak_gcups() - 40.0).abs() < 1e-9);
        assert!((s.peak_cells_per_sec() - 40e9).abs() < 1.0);
    }

    #[test]
    fn memory_in_bytes() {
        assert_eq!(spec().mem_bytes(), 2048 * 1024 * 1024);
    }

    #[test]
    fn relative_power() {
        let a = spec();
        let mut b = spec();
        b.sms = 4;
        assert!((a.relative_power(&b) - 2.0).abs() < 1e-12);
        assert!((b.relative_power(&a) - 0.5).abs() < 1e-12);
    }
}
